//! # spike
//!
//! A Rust reproduction of **Spike**, Digital's post-link-time optimizer
//! for Alpha/NT executables, as described in David W. Goodwin,
//! *Interprocedural Dataflow Analysis in an Executable Optimizer*,
//! PLDI 1997.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `spike-isa` | registers, calling standard, instructions, binary encoding |
//! | [`program`] | `spike-program` | routines, jump tables, executable images, relinking rewriter |
//! | [`cfg`](mod@cfg) | `spike-cfg` | basic blocks, CFG construction, whole-program supergraph |
//! | [`callgraph`] | `spike-callgraph` | call graph, Tarjan SCCs, bottom-up ordering |
//! | [`asm`] | `spike-asm` | textual assembly: parser and writer with exact round-tripping |
//! | [`core`] | `spike-core` | the Program Summary Graph and the two-phase interprocedural dataflow |
//! | [`baseline`] | `spike-baseline` | the same analysis over the full CFG (comparison oracle) |
//! | [`opt`] | `spike-opt` | the Figure 1 summary-driven optimizations |
//! | [`lint`] | `spike-lint` | interprocedural static checks with a simulator-backed oracle |
//! | [`sim`] | `spike-sim` | an interpreter used as a soundness oracle |
//! | [`profile`] | `spike-profile` | versioned on-disk execution profiles: collect, merge, verify |
//! | [`synth`] | `spike-synth` | paper-calibrated synthetic benchmark generators |
//!
//! # Quick start
//!
//! ```
//! use spike::isa::Reg;
//! use spike::program::ProgramBuilder;
//!
//! // Assemble a two-routine program, as a linker would lay it out.
//! let mut b = ProgramBuilder::new();
//! b.routine("main").def(Reg::A0).call("double").put_int().halt();
//! b.routine("double")
//!     .op(spike::isa::AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
//!     .ret();
//! let program = b.build()?;
//!
//! // Run Spike's interprocedural dataflow analysis.
//! let analysis = spike::core::analyze(&program);
//! let double = program.routine_by_name("double").unwrap();
//! let summary = analysis.summary.routine(double);
//! assert!(summary.call_used[0].contains(Reg::A0));
//! assert!(summary.call_defined[0].contains(Reg::V0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: the worked
//! example from the paper, the Figure 1 optimizations, image round-trips,
//! and the PSG-vs-CFG comparison.

pub use spike_asm as asm;
pub use spike_baseline as baseline;
pub use spike_callgraph as callgraph;
pub use spike_cfg as cfg;
pub use spike_core as core;
pub use spike_isa as isa;
pub use spike_lint as lint;
pub use spike_opt as opt;
pub use spike_profile as profile;
pub use spike_program as program;
pub use spike_sim as sim;
pub use spike_synth as synth;
