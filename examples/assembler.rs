//! The textual-assembly workflow plus the §3.5 hint extension: write a
//! module by hand (including a hinted external call), assemble it, analyze
//! it, and show how the hint changes what the optimizer may delete.
//!
//! ```text
//! cargo run --example assembler
//! ```

use spike::asm::{parse_asm, write_asm};
use spike::core::analyze;
use spike::isa::Reg;
use spike::sim::{run, Outcome};

const MODULE: &str = "\
; A hand-written module. `log` stands for an external library call whose
; register effects the compiler told us exactly (the §3.5 extension):
; it reads a0, returns in v0, clobbers only v0 and t0.
.routine main
    lda sp, -16(sp)
    lda a0, 5(zero)
    lda a1, 99(zero)        ; never read by anyone: the analysis proves it
    lda t1, 7(zero)         ; survives the hinted call: no spill needed
    lda pv, 1(zero)
    jsr (pv), used={a0} defined={v0} killed={v0, t0}
    addq v0, t1, v0
    putint
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_asm(MODULE)?;
    println!("assembled {} instructions\n", program.total_instructions());

    // The analysis consumes the hint instead of assuming the calling
    // standard: t1 is provably not killed, a1 provably dead.
    let analysis = analyze(&program);
    let main = program.routine_by_name("main").expect("routine exists");
    let cfg = analysis.cfg.routine_cfg(main);
    let call_block = cfg.call_blocks().next().expect("one call");
    let cs = analysis.summary.call_site(&analysis.cfg, main, call_block).expect("call summary");
    println!("hinted call: used={} defined={} killed={}", cs.used, cs.defined, cs.killed);
    assert!(!cs.killed.contains(Reg::T1));
    assert!(!cs.used.contains(Reg::A1));

    let (optimized, report) = spike::opt::optimize(&program)?;
    println!("\noptimizer: {} dead instruction(s) deleted", report.dead_deleted);
    assert!(report.dead_deleted >= 1, "the dead a1 argument goes away");

    // Round-trip the optimized module back through text.
    let text = write_asm(&optimized);
    println!("optimized module:\n{text}");
    let reparsed = parse_asm(&text)?;
    assert_eq!(reparsed, optimized);

    // And it still runs. (The simulator executes the jsr literally, so the
    // "external" routine here is just address 1 — skip execution of the
    // hinted call by checking the unoptimized control flow instead.)
    let _: Outcome = run(&program, 10);
    println!("done.");
    Ok(())
}
