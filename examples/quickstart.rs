//! Quickstart: assemble a small program, run the interprocedural dataflow
//! analysis, and inspect the per-routine summaries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spike::core::analyze;
use spike::isa::{AluOp, Reg};
use spike::program::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble a tiny linked executable: main computes 21*2 through a
    // helper routine and prints it.
    let mut b = ProgramBuilder::new();
    b.routine("main").lda(Reg::A0, Reg::ZERO, 21).call("double").put_int().halt();
    b.routine("double").op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0).ret();
    let program = b.build()?;

    println!("program:\n{program}");

    // Run Spike's two-phase interprocedural dataflow analysis.
    let analysis = analyze(&program);

    for (rid, routine) in program.iter() {
        let s = analysis.summary.routine(rid);
        println!("routine {}:", routine.name());
        println!("  call-used    = {}", s.call_used[0]);
        println!("  call-defined = {}", s.call_defined[0]);
        println!("  call-killed  = {}", s.call_killed[0]);
        println!("  live-at-entry = {}", s.live_at_entry[0]);
        for (i, live) in s.live_at_exit.iter().enumerate() {
            println!("  live-at-exit[{i}] = {live}");
        }
    }

    // The summaries drive optimization decisions: `double` reads a0 and
    // writes v0, so a caller may delete dead argument setup for any other
    // register and rely on v0 being defined.
    let double = program.routine_by_name("double").expect("routine exists");
    let s = analysis.summary.routine(double);
    assert!(s.call_used[0].contains(Reg::A0));
    assert!(s.call_defined[0].contains(Reg::V0));

    println!(
        "\nanalysis: {} PSG nodes, {} PSG edges, {:?} total",
        analysis.psg.stats().nodes,
        analysis.psg.stats().edges,
        analysis.stats.total(),
    );
    Ok(())
}
