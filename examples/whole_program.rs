//! Post-link-time flow on a large synthetic application: generate an
//! excel-like benchmark, serialize it to an executable image, load the
//! image back (decoding every instruction word), analyze it, and print
//! Table-2-style statistics with the Figure-13 stage breakdown.
//!
//! ```text
//! cargo run --release --example whole_program [scale]
//! ```

use spike::core::analyze;
use spike::program::Program;
use spike::synth::{generate, profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0.05);

    let p = profile("excel").expect("known benchmark");
    println!("generating {} at scale {scale} ...", p.name);
    let program = generate(&p, scale, 42);

    // Round-trip through the executable image, as Spike would consume it.
    let image = program.to_image();
    println!(
        "image: {} bytes for {} instructions in {} routines",
        image.len(),
        program.total_instructions(),
        program.routines().len()
    );
    let loaded = Program::from_image(&image)?;
    assert_eq!(loaded, program, "loader reproduces the program exactly");

    let analysis = analyze(&loaded);
    let stats = &analysis.stats;
    let psg = analysis.psg.stats();

    println!("\nTable-2 style row:");
    println!(
        "  routines {}  basic blocks {}  instructions {:.1}k  time {:?}  memory {:.2} MB",
        loaded.routines().len(),
        analysis.cfg.total_blocks(),
        loaded.total_instructions() as f64 / 1e3,
        stats.total(),
        stats.memory_bytes as f64 / 1e6,
    );

    println!("\nFigure-13 stage breakdown:");
    let total = stats.total().as_secs_f64().max(1e-12);
    for (name, d) in [
        ("cfg build", stats.cfg_build),
        ("initialization", stats.init),
        ("psg build", stats.psg_build),
        ("phase 1", stats.phase1),
        ("phase 2", stats.phase2),
    ] {
        println!("  {name:<15} {:>6.1}%  ({d:?})", 100.0 * d.as_secs_f64() / total);
    }

    println!(
        "\nPSG: {} nodes, {} edges ({} flow, {} call-return, {} branch nodes)",
        psg.nodes, psg.edges, psg.flow_edges, psg.call_return_edges, psg.branch_nodes
    );

    let counts = analysis.cfg.counts();
    println!(
        "CFG: {} blocks, {} arcs  →  nodes/blocks = {:.2}, edges/arcs = {:.2}",
        counts.basic_blocks,
        counts.total_arcs(),
        psg.nodes as f64 / counts.basic_blocks as f64,
        psg.edges as f64 / counts.total_arcs() as f64,
    );
    Ok(())
}
