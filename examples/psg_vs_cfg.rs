//! The paper's headline comparison: the compact Program Summary Graph
//! versus dataflow over the whole-program CFG. Both compute identical
//! summaries; the PSG is smaller and faster.
//!
//! ```text
//! cargo run --release --example psg_vs_cfg [benchmark] [scale]
//! ```

use spike::baseline::analyze_baseline;
use spike::core::analyze;
use spike::synth::{generate, profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let scale: f64 = std::env::args().nth(2).map(|s| s.parse()).transpose()?.unwrap_or(0.1);

    let p = profile(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = generate(&p, scale, 7);
    println!(
        "{name} at scale {scale}: {} routines, {} instructions",
        program.routines().len(),
        program.total_instructions()
    );

    let psg = analyze(&program);
    let full = analyze_baseline(&program);

    // Identical answers, routine by routine.
    for (rid, r) in program.iter() {
        assert_eq!(
            psg.summary.routine(rid),
            &full.summaries[rid.index()],
            "mismatch for {}",
            r.name()
        );
    }
    println!("✓ PSG and full-CFG analyses computed identical summaries\n");

    let s = psg.psg.stats();
    let c = full.counts;
    println!("{:<22} {:>12} {:>12}", "", "PSG", "full CFG");
    println!("{:<22} {:>12} {:>12}", "graph nodes", s.nodes, c.basic_blocks);
    println!("{:<22} {:>12} {:>12}", "graph edges", s.edges, c.total_arcs());
    println!("{:<22} {:>12.3?} {:>12.3?}", "analysis time", psg.stats.total(), full.stats.total());
    println!(
        "{:<22} {:>10.2}MB {:>10.2}MB",
        "analysis memory",
        psg.stats.memory_bytes as f64 / 1e6,
        full.stats.memory_bytes as f64 / 1e6
    );
    println!(
        "\nPSG has {:.0}% fewer nodes and {:.0}% fewer edges than the CFG",
        100.0 * (1.0 - s.nodes as f64 / c.basic_blocks as f64),
        100.0 * (1.0 - s.edges as f64 / c.total_arcs() as f64),
    );
    Ok(())
}
