//! Brute-force sweep of the CFG/PSG structural invariants over the
//! synthetic generator, far past the 16 cases the property tests run.
//!
//! Usage: `cargo run --release --example invariant_sweep [seeds-per-profile]`
//!
//! Prints the first failing (profile, seed) pair and panics, or reports a
//! clean sweep. Used to hunt generator-shape-dependent construction bugs.

use spike::cfg::{BlockId, ProgramCfg, TermKind};
use spike::core::{analyze_with, AnalysisOptions, EdgeId, EdgeKind, NodeId, NodeKind};
use spike::program::Program;

fn check_cfg(program: &Program) {
    let pcfg = ProgramCfg::build(program);
    for (rid, routine) in program.iter() {
        let cfg = pcfg.routine_cfg(rid);
        let mut expected = routine.addr();
        for b in cfg.blocks() {
            assert_eq!(b.start(), expected, "blocks tile {}", routine.name());
            assert!(!b.is_empty());
            expected = b.end();
        }
        assert_eq!(expected, routine.end_addr());
        for (bi, b) in cfg.blocks().iter().enumerate() {
            let me = BlockId::from_index(bi);
            for &s in b.succs() {
                assert!(cfg.block(s).preds().contains(&me));
            }
            for &p in b.preds() {
                assert!(cfg.block(p).succs().contains(&me));
            }
            match b.term() {
                TermKind::Call { return_to, .. } => {
                    assert!(b.succs().is_empty());
                    assert!(return_to.is_some());
                }
                TermKind::Ret | TermKind::Halt | TermKind::UnknownJump => {
                    assert!(b.succs().is_empty());
                }
                TermKind::Branch | TermKind::FallThrough => assert_eq!(b.succs().len(), 1),
                TermKind::CondBranch => {
                    assert!(!b.succs().is_empty() && b.succs().len() <= 2);
                }
                TermKind::MultiwayJump => assert!(!b.succs().is_empty()),
            }
        }
        let rets: Vec<_> = cfg
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.term(), TermKind::Ret))
            .map(|(i, _)| BlockId::from_index(i))
            .collect();
        assert_eq!(cfg.exits(), &rets[..]);
    }
}

fn check_psg(program: &Program) {
    let analysis = analyze_with(program, &AnalysisOptions::default());
    let psg = &analysis.psg;
    for (ei, edge) in psg.edges().iter().enumerate() {
        let e = EdgeId::from_index(ei);
        let from = psg.node(edge.from());
        let to = psg.node(edge.to());
        assert_eq!(from.routine(), to.routine(), "edges are intraprocedural");
        assert!(psg.out_edges(edge.from()).contains(&e));
        assert!(psg.in_edges(edge.to()).contains(&e));
        match edge.kind() {
            EdgeKind::CallReturn => {
                assert!(
                    matches!(from, NodeKind::Call { .. }) && matches!(to, NodeKind::Return { .. }),
                    "call-return endpoints {from:?} -> {to:?}"
                );
            }
            EdgeKind::FlowSummary => {
                assert!(!matches!(from, NodeKind::Exit { .. }), "exits are sinks");
            }
        }
    }
    for (ni, kind) in psg.nodes().iter().enumerate() {
        let n = NodeId::from_index(ni);
        if matches!(kind, NodeKind::Call { .. }) {
            assert_eq!(psg.out_edges(n).len(), 1, "call node out-degree");
            assert_eq!(psg.edge(psg.out_edges(n)[0]).kind(), EdgeKind::CallReturn);
        }
    }
    for (rid, _) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        let rn = psg.routine_nodes(rid);
        assert_eq!(rn.entries().len(), cfg.entries().len());
        assert_eq!(rn.exits().len(), cfg.exits().len());
        assert_eq!(rn.calls().len(), cfg.call_count());
    }
    let caller_saved = analysis.summary.calling_standard().caller_saved();
    for (rid, r) in program.iter() {
        let s = analysis.summary.routine(rid);
        for (d, k) in s.call_defined.iter().zip(&s.call_killed) {
            assert!(
                d.is_subset(*k) || caller_saved.is_subset(*d),
                "{}: must-def ⊄ may-def and not vacuous: {} vs {}",
                r.name(),
                d,
                k
            );
        }
    }
}

fn main() {
    let per_profile: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(500);
    for name in ["li", "perl", "vortex", "sqlservr"] {
        let p = spike::synth::profile(name).expect("known benchmark");
        let scale = 20.0 / p.routines as f64;
        for seed in 0..per_profile {
            let program = std::panic::catch_unwind(|| spike::synth::generate(&p, scale, seed))
                .unwrap_or_else(|_| panic!("GENERATE PANIC at profile={name} seed={seed}"));
            let r = std::panic::catch_unwind(|| {
                check_cfg(&program);
                check_psg(&program);
            });
            if r.is_err() {
                eprintln!("FAILURE at profile={name} seed={seed}");
                std::process::exit(1);
            }
        }
        println!("profile {name}: {per_profile} seeds clean");
    }
    println!("sweep clean");
}
