//! The paper's worked example (Figures 2, 3, 9 and 11): routines P1, P2
//! and P3, reproducing the exact dataflow sets printed in §2 and §3.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use spike::core::analyze;
use spike::isa::{BranchCond, Reg, RegSet};
use spike::program::ProgramBuilder;

// The paper's abstract registers R0–R3 mapped onto the ISA.
const R0: Reg = Reg::V0;
const R1: Reg = Reg::T0;
const R2: Reg = Reg::T1;
const R3: Reg = Reg::T2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2: P1 defines R0 and R1, calls P2, then uses R0.
    // P2 uses R1 and defines R2 on both arms of a branch, R3 on one.
    // P3 defines R1 and calls P2.
    let mut b = ProgramBuilder::new();
    b.routine("p1").def(R0).def(R1).call("p2").use_reg(R0).ret();
    b.routine("p2")
        .cond(BranchCond::Eq, R1, "else")
        .def(R2)
        .def(R3)
        .br("join")
        .label("else")
        .def(R2)
        .label("join")
        .ret();
    b.routine("p3").def(R1).call("p2").ret();
    let program = b.build()?;

    let analysis = analyze(&program);
    let universe = RegSet::of(&[R0, R1, R2, R3]);

    println!("paper register mapping: R0={R0} R1={R1} R2={R2} R3={R3}\n");
    println!("§3.2 phase-1 results (paper values in brackets):");
    for (name, used, defined, killed) in [
        ("p1", "{}", "{R0,R1,R2}", "{R0,R1,R2,R3}"),
        ("p2", "{R1}", "{R2}", "{R2,R3}"),
        ("p3", "{}", "{R1,R2}", "{R1,R2,R3}"),
    ] {
        let rid = program.routine_by_name(name).expect("routine exists");
        let s = analysis.summary.routine(rid);
        println!(
            "  {name}: call-used={} [{used}]  call-defined={} [{defined}]  call-killed={} [{killed}]",
            s.call_used[0] & universe,
            s.call_defined[0] & universe,
            s.call_killed[0] & universe,
        );
    }

    let p2 = program.routine_by_name("p2").expect("routine exists");
    let s2 = analysis.summary.routine(p2);
    println!("\n§2 phase-2 results for P2 (paper: entry {{R0,R1}}, exit {{R0}}):");
    println!("  live-at-entry = {}", s2.live_at_entry[0] & universe);
    println!("  live-at-exit  = {}", s2.live_at_exit[0] & universe);

    assert_eq!(s2.live_at_entry[0] & universe, RegSet::of(&[R0, R1]));
    assert_eq!(s2.live_at_exit[0] & universe, RegSet::of(&[R0]));
    assert_eq!(s2.call_used[0] & universe, RegSet::of(&[R1]));
    assert_eq!(s2.call_defined[0] & universe, RegSet::of(&[R2]));
    assert_eq!(s2.call_killed[0] & universe, RegSet::of(&[R2, R3]));
    println!("\nall sets match the paper.");
    Ok(())
}
