//! The Figure 1 optimizations end to end: build an executable exhibiting
//! all four patterns, optimize it, and execute both versions to show
//! identical output with fewer instructions.
//!
//! ```text
//! cargo run --example optimize_binary
//! ```

use spike::isa::{AluOp, Reg};
use spike::opt::optimize;
use spike::program::ProgramBuilder;
use spike::sim::{run, Outcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ProgramBuilder::new();
    // main: passes two arguments (one dead — Figure 1(b)), spills a
    // temporary around a call that doesn't kill it (Figure 1(c)).
    b.routine("main")
        .lda(Reg::SP, Reg::SP, -16)
        .lda(Reg::A0, Reg::ZERO, 40)
        .lda(Reg::A1, Reg::ZERO, 99) // dead argument: compute never reads a1
        .lda(Reg::T0, Reg::ZERO, 2)
        .store(Reg::T0, Reg::SP, 0) // spill t0 around the call...
        .call("compute")
        .load(Reg::T0, Reg::SP, 0) // ...though compute never kills t0
        .op(AluOp::Add, Reg::V0, Reg::T0, Reg::V0)
        .put_int()
        .halt();
    // compute: saves s0 although a quiet temporary would do (Figure 1(d)),
    // and defines a scratch value nobody reads (Figure 1(a)).
    b.routine("compute")
        .lda(Reg::SP, Reg::SP, -16)
        .store(Reg::RA, Reg::SP, 8)
        .store(Reg::S0, Reg::SP, 0)
        .copy(Reg::A0, Reg::S0)
        .call("noise")
        .copy(Reg::S0, Reg::V0)
        .lda(Reg::T1, Reg::ZERO, 123) // dead result
        .load(Reg::S0, Reg::SP, 0)
        .load(Reg::RA, Reg::SP, 8)
        .lda(Reg::SP, Reg::SP, 16)
        .ret();
    b.routine("noise").lda(Reg::int(6), Reg::ZERO, 7).ret();
    let program = b.build()?;

    let (optimized, report) = optimize(&program)?;

    println!("optimization report: {report:#?}\n");
    println!("before ({} instructions):\n{program}", program.total_instructions());
    println!("after  ({} instructions):\n{optimized}", optimized.total_instructions());

    let (before, after) = (run(&program, 1_000_000), run(&optimized, 1_000_000));
    let (Outcome::Halted { output: o0, steps: s0 }, Outcome::Halted { output: o1, steps: s1 }) =
        (&before, &after)
    else {
        panic!("programs must halt: {before:?} / {after:?}");
    };
    println!("output before: {o0:?} in {s0} steps");
    println!("output after:  {o1:?} in {s1} steps");
    assert_eq!(o0, o1, "optimization must preserve behaviour");
    assert!(s1 < s0);
    println!(
        "\nsame output, {:.0}% fewer executed instructions",
        100.0 * (s0 - s1) as f64 / *s0 as f64
    );
    Ok(())
}
