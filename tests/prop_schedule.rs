//! Equivalence and effort properties of the SCC-wave scheduled fixpoint
//! engine ([`spike::core::Scheduler::SccWave`]) against the chaotic FIFO
//! reference it replaces as the default.
//!
//! The scheduler is pure strategy: the least fixpoint of the monotone
//! phase-1/phase-2 systems is unique, so every observable — summaries,
//! the PSG values and labels, the deterministic `memory_bytes` — must be
//! bit-identical whichever engine ran and however many workers the wave
//! solver used. What the scheduler *is* allowed to change is effort, and
//! only downward: these properties also pin the visit counts as never
//! exceeding the FIFO engine's.

use proptest::prelude::*;

use spike::core::{analyze_with, AnalysisCache, AnalysisOptions, Representation, Scheduler};
use spike::program::{Program, Rewriter};

fn arb_program() -> impl Strategy<Value = Program> {
    (
        any::<u64>(),
        prop_oneof![
            Just("compress"),
            Just("li"),
            Just("perl"),
            Just("vortex"),
            Just("sqlservr"),
            Just("gcc")
        ],
        1usize..=60,
    )
        .prop_map(|(seed, name, routines)| {
            let p = spike::synth::profile(name).expect("known benchmark");
            spike::synth::generate(&p, routines as f64 / p.routines as f64, seed)
        })
}

fn with(scheduler: Scheduler, threads: usize) -> AnalysisOptions {
    AnalysisOptions { scheduler, threads, ..AnalysisOptions::default() }
}

fn with_repr(representation: Representation, threads: usize) -> AnalysisOptions {
    AnalysisOptions {
        scheduler: Scheduler::SccWave,
        threads,
        representation,
        ..AnalysisOptions::default()
    }
}

/// Asserts every observable output of two analyses is bit-identical:
/// per-routine summaries, the full PSG (values and labels), and the
/// deterministic `memory_bytes`.
fn assert_identical(program: &Program, a: &spike::core::Analysis, b: &spike::core::Analysis) {
    for (rid, r) in program.iter() {
        assert_eq!(
            a.summary.routine(rid),
            b.summary.routine(rid),
            "summary mismatch for {}",
            r.name()
        );
    }
    assert_eq!(&a.psg, &b.psg);
    assert_eq!(a.stats.memory_bytes, b.stats.memory_bytes);
}

/// The sparse chain engine is pure representation: on every one of the
/// paper's 16 benchmark profiles it reaches exactly the dense engine's
/// fixpoint, serial and wide.
#[test]
fn sparse_matches_dense_on_all_profiles() {
    for p in spike::synth::profiles() {
        let program = spike::synth::generate(&p, 30.0 / p.routines as f64, 1);
        let dense = analyze_with(&program, &with_repr(Representation::Dense, 1));
        let sparse1 = analyze_with(&program, &with_repr(Representation::Sparse, 1));
        let sparse8 = analyze_with(&program, &with_repr(Representation::Sparse, 8));
        assert_identical(&program, &dense, &sparse1);
        assert_identical(&program, &dense, &sparse8);
        assert_eq!(sparse1.stats.representation, Representation::Sparse, "{}", p.name);
        assert_eq!(dense.stats.representation, Representation::Dense, "{}", p.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Both engines, and the scheduled engine at every worker count,
    /// agree on every observable output — and the scheduled engine's
    /// effort is identical at every worker count, since the wave solvers
    /// partition the work rather than race for it.
    #[test]
    fn scheduled_matches_fifo_bit_for_bit(program in arb_program()) {
        let fifo = analyze_with(&program, &with(Scheduler::Fifo, 1));
        let serial = analyze_with(&program, &with(Scheduler::SccWave, 1));
        let wide = analyze_with(&program, &with(Scheduler::SccWave, 8));

        for (rid, r) in program.iter() {
            prop_assert_eq!(
                fifo.summary.routine(rid),
                serial.summary.routine(rid),
                "summary mismatch for {}",
                r.name()
            );
        }
        prop_assert_eq!(&fifo.psg, &serial.psg);
        prop_assert_eq!(&fifo.psg, &wide.psg);
        prop_assert_eq!(fifo.stats.memory_bytes, serial.stats.memory_bytes);
        prop_assert_eq!(fifo.stats.memory_bytes, wide.stats.memory_bytes);

        prop_assert_eq!(serial.stats.phase1_visits, wide.stats.phase1_visits);
        prop_assert_eq!(serial.stats.phase2_visits, wide.stats.phase2_visits);
        prop_assert_eq!(serial.stats.waves, wide.stats.waves);
        prop_assert!(wide.stats.phase_workers >= 1);
    }

    /// The scheduled engine never evaluates more nodes than the FIFO
    /// reference: waves stop converged components from being revisited,
    /// priority order and warm seeding keep most values settled on first
    /// touch, and the absorption filters drop every push that provably
    /// cannot move a value.
    #[test]
    fn scheduled_never_visits_more(program in arb_program()) {
        let fifo = analyze_with(&program, &with(Scheduler::Fifo, 1));
        let sched = analyze_with(&program, &with(Scheduler::SccWave, 1));
        prop_assert!(
            sched.stats.phase1_visits + sched.stats.phase2_visits
                <= fifo.stats.phase1_visits + fifo.stats.phase2_visits,
            "scheduled {} + {} vs fifo {} + {}",
            sched.stats.phase1_visits,
            sched.stats.phase2_visits,
            fifo.stats.phase1_visits,
            fifo.stats.phase2_visits
        );
    }

    /// The scheduled engine composes with the incremental reset masks:
    /// a cached re-analysis under the default scheduler reaches exactly
    /// the solution a from-scratch FIFO analysis of the edited program
    /// computes. (The reset closures are SCC-saturated, so the seeded
    /// run solves exactly the components containing reset nodes.)
    #[test]
    fn incremental_scheduled_matches_scratch_fifo(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 6);
        let mut cache = AnalysisCache::new(with(Scheduler::SccWave, 2));
        cache.analyze(&program);

        let victim = program
            .iter()
            .flat_map(|(_, r)| {
                (0..r.len() as u32).map(move |i| (r.addr() + i, &r.insns()[i as usize]))
            })
            .filter(|(addr, insn)| {
                !insn.is_terminator() && !program.relocations().contains_key(addr)
            })
            .last()
            .map(|(addr, _)| addr);
        prop_assert!(victim.is_some(), "generated executables have deletable instructions");
        let (edited, changed) = Rewriter::new(&program)
            .delete(victim.unwrap())
            .finish()
            .expect("delete relinks");

        let incremental = cache.reanalyze(&edited, &changed);
        let scratch = analyze_with(&edited, &with(Scheduler::Fifo, 1));
        for (rid, r) in edited.iter() {
            prop_assert_eq!(
                incremental.summary.routine(rid),
                scratch.summary.routine(rid),
                "summary mismatch for {}",
                r.name()
            );
        }
        prop_assert_eq!(&incremental.psg, &scratch.psg);
        prop_assert_eq!(incremental.stats.memory_bytes, scratch.stats.memory_bytes);
    }

    /// Sparse and dense are the same analysis in different clothes: every
    /// observable — summaries, PSG, `memory_bytes` — is bit-identical at
    /// 1 and at 8 workers, whatever program the generator draws.
    #[test]
    fn sparse_matches_dense_bit_for_bit(program in arb_program()) {
        let dense = analyze_with(&program, &with_repr(Representation::Dense, 1));
        let sparse1 = analyze_with(&program, &with_repr(Representation::Sparse, 1));
        let sparse8 = analyze_with(&program, &with_repr(Representation::Sparse, 8));
        assert_identical(&program, &dense, &sparse1);
        assert_identical(&program, &dense, &sparse8);
        prop_assert_eq!(sparse1.stats.phase1_visits, sparse8.stats.phase1_visits);
        prop_assert_eq!(sparse1.stats.phase2_visits, sparse8.stats.phase2_visits);
    }

    /// Chain contraction only ever removes work: the sparse engine's
    /// chain evaluations never exceed the dense engine's node visits
    /// under the same SCC-wave schedule, because every contracted
    /// pass-through node the dense engine would sweep is folded into a
    /// label composition the sparse engine never revisits.
    #[test]
    fn chains_never_visit_more(program in arb_program()) {
        let dense = analyze_with(&program, &with_repr(Representation::Dense, 1));
        let sparse = analyze_with(&program, &with_repr(Representation::Sparse, 1));
        prop_assert!(
            sparse.stats.phase1_visits + sparse.stats.phase2_visits
                <= dense.stats.phase1_visits + dense.stats.phase2_visits,
            "sparse {} + {} vs dense {} + {}",
            sparse.stats.phase1_visits,
            sparse.stats.phase2_visits,
            dense.stats.phase1_visits,
            dense.stats.phase2_visits
        );
    }

    /// The sparse engine composes with incremental invalidation: a warm
    /// cache re-analysis under the sparse default — which rebuilds chains
    /// only for the dirtied routines and reuses the rest — reaches
    /// exactly the solution a from-scratch dense FIFO analysis of the
    /// edited program computes. (In debug builds the cache additionally
    /// asserts the partial chain rebuild equals a from-scratch chain
    /// build.)
    #[test]
    fn incremental_sparse_matches_scratch(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 6);
        let mut cache = AnalysisCache::new(with_repr(Representation::Sparse, 2));
        cache.analyze(&program);

        let victim = program
            .iter()
            .flat_map(|(_, r)| {
                (0..r.len() as u32).map(move |i| (r.addr() + i, &r.insns()[i as usize]))
            })
            .filter(|(addr, insn)| {
                !insn.is_terminator() && !program.relocations().contains_key(addr)
            })
            .last()
            .map(|(addr, _)| addr);
        prop_assert!(victim.is_some(), "generated executables have deletable instructions");
        let (edited, changed) = Rewriter::new(&program)
            .delete(victim.unwrap())
            .finish()
            .expect("delete relinks");

        let incremental = cache.reanalyze(&edited, &changed);
        prop_assert_eq!(incremental.stats.representation, Representation::Sparse);
        let scratch = analyze_with(&edited, &with(Scheduler::Fifo, 1));
        assert_identical(&edited, incremental, &scratch);
    }
}
