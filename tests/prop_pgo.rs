//! Workspace-level properties for the profiling + loop-optimization
//! subsystem: profiled execution is observationally identical to plain
//! execution, the on-disk profile container round-trips losslessly and
//! rejects stale or corrupt inputs without panicking, and loop-invariant
//! code motion — static or profile-guided — preserves simulated
//! behaviour and shadow-oracle cleanliness on every paper-calibrated
//! benchmark profile.

use proptest::prelude::*;

use spike::opt::{optimize_with, OptOptions};
use spike::profile::{Profile, ProfileError};
use spike::sim::{run, run_profiled, run_shadow, run_shadow_slots, Outcome};
use spike::synth::generate_executable;

const FUEL: u64 = 10_000_000;

/// Fuel for the benchmark-profile programs, which are not built to halt.
const PROFILE_FUEL: u64 = 200_000;

fn licm_only(profile: Option<Profile>) -> OptOptions {
    OptOptions {
        dead_code: false,
        spills: false,
        realloc: false,
        stack: false,
        licm: true,
        profile,
        ..OptOptions::default()
    }
}

/// Two runs under the same fuel agree observationally: equal outcomes
/// when both complete, and an agreeing output prefix when the shorter
/// (optimized) trace is cut off by fuel differently.
fn assert_equivalent(name: &str, before: &Outcome, after: &Outcome) {
    match (before, after) {
        (Outcome::Halted { output: a, steps: sa }, Outcome::Halted { output: b, steps: sb }) => {
            assert_eq!(a, b, "{name}: output changed");
            assert!(sb <= sa, "{name}: optimization executed more instructions");
        }
        // The optimized program does the same work in fewer steps, so
        // under equal fuel it gets at least as far: the original's
        // output must be a prefix of the optimized run's.
        (Outcome::OutOfFuel { output: a, .. }, Outcome::Halted { output: b, .. })
        | (Outcome::OutOfFuel { output: a, .. }, Outcome::OutOfFuel { output: b, .. }) => {
            assert!(b.starts_with(a), "{name}: output diverged");
        }
        // The optimized run can reach a fault the original's fuel did
        // not; a fault must stay the same kind of fault.
        (Outcome::OutOfFuel { .. }, Outcome::Fault(_)) => {}
        (Outcome::Fault(a), Outcome::Fault(b)) => {
            assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "{name}: fault kind changed: {a:?} vs {b:?}"
            );
        }
        (a, b) => panic!("{name}: behaviour changed: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Instrumentation is invisible: `run_profiled` returns exactly the
    /// outcome of `run` — same output, same step count, same fuel
    /// boundary — while gathering counts that add up to the run itself.
    #[test]
    fn profiled_execution_matches_plain_execution(
        seed in any::<u64>(),
        size in 1usize..8,
        fuel in prop_oneof![Just(50u64), Just(500), Just(FUEL)],
    ) {
        let p = generate_executable(seed, size);
        let plain = run(&p, fuel);
        let (outcome, exec) = run_profiled(&p, fuel);
        prop_assert_eq!(&outcome, &plain, "instrumentation changed the run");
        // The counters account for every executed instruction.
        prop_assert_eq!(Some(exec.total_steps), outcome.steps());
        prop_assert_eq!(exec.insn_counts.iter().sum::<u64>(), exec.total_steps);
        prop_assert_eq!(
            exec.steps_per_routine.iter().sum::<u64>(),
            exec.total_steps,
            "every step belongs to a routine"
        );
    }

    /// The container round-trips losslessly through bytes and survives
    /// a merge with itself (counts double, the binding stays).
    #[test]
    fn profile_container_round_trips(seed in any::<u64>(), size in 1usize..6) {
        let p = generate_executable(seed, size);
        let (_, exec) = run_profiled(&p, FUEL);
        let prof = Profile::collect(&p, &exec);
        let back = Profile::from_bytes(&prof.to_bytes()).expect("round trip");
        prop_assert_eq!(&back, &prof);
        prop_assert!(back.matches(&p.to_image()));

        let mut merged = prof.clone();
        merged.merge(&back).expect("same image merges");
        prop_assert_eq!(merged.runs, 2);
        prop_assert_eq!(merged.total_steps, prof.total_steps * 2);
    }

    /// A profile of one program is cleanly rejected for another: a typed
    /// error from the verifying API, never a panic, and the optimizer
    /// silently falls back to static weighting.
    #[test]
    fn stale_profile_is_rejected_not_trusted(seed in any::<u64>()) {
        let p = generate_executable(seed, 4);
        let q = generate_executable(seed.wrapping_add(1), 4);
        let (_, exec) = run_profiled(&p, FUEL);
        let prof = Profile::collect(&p, &exec);
        prop_assert!(!prof.matches(&q.to_image()), "distinct programs share a fingerprint");
        let mut other = Profile::collect(&q, &run_profiled(&q, FUEL).1);
        prop_assert!(matches!(other.merge(&prof), Err(ProfileError::FingerprintMismatch)));

        // Optimizing `q` with `p`'s profile must behave exactly like
        // optimizing without one: the counts are address-nonsense for
        // `q` and must not be consulted.
        let with = optimize_with(&q, &licm_only(Some(prof))).expect("optimizes");
        let without = optimize_with(&q, &licm_only(None)).expect("optimizes");
        prop_assert_eq!(with.0, without.0);
    }

    /// LICM (with every other pass, as shipped) preserves behaviour and
    /// shadow cleanliness on executables.
    #[test]
    fn full_optimizer_with_licm_preserves_executables(seed in any::<u64>(), size in 1usize..8) {
        let p = generate_executable(seed, size);
        let (_, exec) = run_profiled(&p, FUEL);
        let prof = Profile::collect(&p, &exec);
        let options = OptOptions { profile: Some(prof), ..OptOptions::default() };
        let (q, _) = optimize_with(&p, &options).expect("optimizes");
        let Outcome::Halted { output: before, .. } = run(&p, FUEL) else {
            panic!("generated executables must halt");
        };
        match run_shadow(&q, FUEL) {
            Outcome::Halted { output, .. } => prop_assert_eq!(output, before),
            other => prop_assert!(false, "register shadow diverged: {other:?}"),
        }
        match run_shadow_slots(&q, FUEL) {
            Outcome::Halted { output, .. } => prop_assert_eq!(output, before),
            other => prop_assert!(false, "slot shadow diverged: {other:?}"),
        }
    }
}

/// The acceptance sweep: on all 16 paper benchmarks, profile-guided LICM
/// fires (hoisting at least one load), preserves simulated behaviour
/// against the unoptimized program, and leaves both shadow oracles
/// clean. The profile-guided run must also hoist strictly more than the
/// static run somewhere — the planted guarded loads are invisible to
/// static weighting.
#[test]
fn licm_preserves_behaviour_and_shadows_on_all_profiles() {
    let mut static_hoists = 0usize;
    let mut pgo_hoists = 0usize;
    for p in spike::synth::profiles() {
        let program = spike::synth::generate(&p, 20.0 / p.routines as f64, 1);
        let before = run(&program, PROFILE_FUEL);
        let (profiled_outcome, exec) = run_profiled(&program, PROFILE_FUEL);
        assert_eq!(profiled_outcome, before, "{}: instrumentation changed the run", p.name);
        let prof = Profile::collect(&program, &exec);

        let (stat, stat_report) = optimize_with(&program, &licm_only(None)).unwrap();
        let (pgo, pgo_report) = optimize_with(&program, &licm_only(Some(prof))).unwrap();
        assert!(stat_report.loads_hoisted > 0, "{}: static LICM found no invariant loads", p.name);
        assert!(
            pgo_report.loads_hoisted >= stat_report.loads_hoisted,
            "{}: profile weighting lost hoists ({} vs {})",
            p.name,
            pgo_report.loads_hoisted,
            stat_report.loads_hoisted
        );
        static_hoists += stat_report.loads_hoisted;
        pgo_hoists += pgo_report.loads_hoisted;

        for (name, optimized) in [("static", &stat), ("pgo", &pgo)] {
            let tag = format!("{} ({name})", p.name);
            assert_equivalent(&tag, &before, &run(optimized, PROFILE_FUEL));
            assert_equivalent(&tag, &before, &run_shadow(optimized, PROFILE_FUEL));
            assert_equivalent(&tag, &before, &run_shadow_slots(optimized, PROFILE_FUEL));
        }
    }
    assert!(
        pgo_hoists > static_hoists,
        "profiles unlocked no guarded hoists ({pgo_hoists} vs {static_hoists})"
    );
}
