// Shared Debug-text parser for the recorded proptest counterexample.
// Included via include!() by tests/regression_seed.rs and examples/.

struct Cursor<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor { s, i: 0 }
    }

    fn skip_ws(&mut self) {
        while self.s[self.i..].starts_with([' ', '\n', '\t']) {
            self.i += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.s[self.i..].starts_with(tok) {
            self.i += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) {
        assert!(
            self.eat(tok),
            "expected `{tok}` at …`{}`…",
            &self.s[self.i..(self.i + 60).min(self.s.len())]
        );
    }

    fn ident(&mut self) -> &'a str {
        self.skip_ws();
        let rest = &self.s[self.i..];
        let end = rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        assert!(end > 0, "expected identifier at …`{}`…", &rest[..60.min(rest.len())]);
        self.i += end;
        &rest[..end]
    }

    fn int(&mut self) -> i64 {
        self.skip_ws();
        let rest = &self.s[self.i..];
        let neg = rest.starts_with('-');
        let digits = &rest[neg as usize..];
        let end = digits.find(|c: char| !c.is_ascii_digit()).unwrap_or(digits.len());
        assert!(end > 0, "expected integer at …`{}`…", &rest[..60.min(rest.len())]);
        self.i += neg as usize + end;
        let v: i64 = digits[..end].parse().expect("integer literal");
        if neg {
            -v
        } else {
            v
        }
    }

    fn quoted(&mut self) -> String {
        self.expect("\"");
        let rest = &self.s[self.i..];
        let end = rest.find('"').expect("closing quote");
        self.i += end + 1;
        rest[..end].to_string()
    }

    fn reg(&mut self) -> Reg {
        self.expect("Reg(");
        let name = self.ident().to_string();
        self.expect(")");
        Reg::all()
            .find(|r| format!("{r}") == name)
            .unwrap_or_else(|| panic!("unknown register name {name}"))
    }

    fn field_reg(&mut self, name: &str) -> Reg {
        self.expect(name);
        self.expect(":");
        let r = self.reg();
        self.eat(",");
        r
    }

    fn field_int(&mut self, name: &str) -> i64 {
        self.expect(name);
        self.expect(":");
        let v = self.int();
        self.eat(",");
        v
    }

    fn field_ident(&mut self, name: &str) -> &'a str {
        self.expect(name);
        self.expect(":");
        let v = self.ident();
        self.eat(",");
        v
    }

    fn int_list(&mut self) -> Vec<i64> {
        self.expect("[");
        let mut v = Vec::new();
        while !self.eat("]") {
            v.push(self.int());
            self.eat(",");
        }
        v
    }
}

fn alu_op(name: &str) -> AluOp {
    match name {
        "Add" => AluOp::Add,
        "Sub" => AluOp::Sub,
        "Mul" => AluOp::Mul,
        "And" => AluOp::And,
        "Or" => AluOp::Or,
        "Xor" => AluOp::Xor,
        "Sll" => AluOp::Sll,
        "Srl" => AluOp::Srl,
        "Sra" => AluOp::Sra,
        "CmpEq" => AluOp::CmpEq,
        "CmpLt" => AluOp::CmpLt,
        "CmpLe" => AluOp::CmpLe,
        "CmpUlt" => AluOp::CmpUlt,
        "CmovEq" => AluOp::CmovEq,
        "CmovNe" => AluOp::CmovNe,
        other => panic!("unknown AluOp {other}"),
    }
}

fn branch_cond(name: &str) -> BranchCond {
    match name {
        "Eq" => BranchCond::Eq,
        "Ne" => BranchCond::Ne,
        "Lt" => BranchCond::Lt,
        "Le" => BranchCond::Le,
        "Ge" => BranchCond::Ge,
        "Gt" => BranchCond::Gt,
        "Lbc" => BranchCond::Lbc,
        "Lbs" => BranchCond::Lbs,
        other => panic!("unknown BranchCond {other}"),
    }
}

fn mem_width(name: &str) -> MemWidth {
    match name {
        "L" => MemWidth::L,
        "Q" => MemWidth::Q,
        "T" => MemWidth::T,
        other => panic!("unknown MemWidth {other}"),
    }
}

fn parse_insn(c: &mut Cursor) -> Instruction {
    let variant = c.ident().to_string();
    match variant.as_str() {
        "Halt" => return Instruction::Halt,
        "PutInt" => return Instruction::PutInt,
        _ => {}
    }
    c.expect("{");
    let insn = match variant.as_str() {
        "Lda" => Instruction::Lda {
            rd: c.field_reg("rd"),
            base: c.field_reg("base"),
            disp: c.field_int("disp") as i16,
        },
        "Ldah" => Instruction::Ldah {
            rd: c.field_reg("rd"),
            base: c.field_reg("base"),
            disp: c.field_int("disp") as i16,
        },
        "Load" => Instruction::Load {
            width: mem_width(c.field_ident("width")),
            rd: c.field_reg("rd"),
            base: c.field_reg("base"),
            disp: c.field_int("disp") as i16,
        },
        "Store" => Instruction::Store {
            width: mem_width(c.field_ident("width")),
            rs: c.field_reg("rs"),
            base: c.field_reg("base"),
            disp: c.field_int("disp") as i16,
        },
        "Operate" => Instruction::Operate {
            op: alu_op(c.field_ident("op")),
            ra: c.field_reg("ra"),
            rb: c.field_reg("rb"),
            rc: c.field_reg("rc"),
        },
        "OperateImm" => Instruction::OperateImm {
            op: alu_op(c.field_ident("op")),
            ra: c.field_reg("ra"),
            imm: c.field_int("imm") as u8,
            rc: c.field_reg("rc"),
        },
        "Br" => Instruction::Br { disp: c.field_int("disp") as i32 },
        "Bsr" => Instruction::Bsr { disp: c.field_int("disp") as i32 },
        "CondBranch" => Instruction::CondBranch {
            cond: branch_cond(c.field_ident("cond")),
            ra: c.field_reg("ra"),
            disp: c.field_int("disp") as i32,
        },
        "Jmp" => Instruction::Jmp { base: c.field_reg("base") },
        "Jsr" => Instruction::Jsr { base: c.field_reg("base") },
        "Ret" => Instruction::Ret { base: c.field_reg("base") },
        other => panic!("unknown instruction variant {other}"),
    };
    c.expect("}");
    insn
}

fn parse_routine(c: &mut Cursor) -> Routine {
    c.expect("Routine {");
    c.expect("name:");
    let name = c.quoted();
    c.expect(",");
    let addr = c.field_int("addr") as u32;
    c.expect("insns:");
    c.expect("[");
    let mut insns = Vec::new();
    while !c.eat("]") {
        insns.push(parse_insn(c));
        c.eat(",");
    }
    c.eat(",");
    c.expect("entry_offsets:");
    let entry_offsets: Vec<u32> = c.int_list().into_iter().map(|v| v as u32).collect();
    c.eat(",");
    let exported = c.field_ident("exported") == "true";
    c.expect("}");
    Routine::new(name, addr, insns, entry_offsets, exported)
}

fn parse_program(text: &str) -> Program {
    let mut c = Cursor::new(text);
    c.expect("Program {");
    c.expect("routines:");
    c.expect("[");
    let mut routines = Vec::new();
    while !c.eat("]") {
        routines.push(parse_routine(&mut c));
        c.eat(",");
    }
    c.eat(",");

    c.expect("jump_tables:");
    c.expect("{");
    let mut jump_tables = BTreeMap::new();
    while !c.eat("}") {
        let addr = c.int() as u32;
        c.expect(":");
        let targets = c.int_list().into_iter().map(|v| v as u32).collect();
        jump_tables.insert(addr, targets);
        c.eat(",");
    }
    c.eat(",");

    c.expect("indirect_calls:");
    c.expect("{");
    let mut indirect_calls = BTreeMap::new();
    while !c.eat("}") {
        let addr = c.int() as u32;
        c.expect(":");
        let targets = match c.ident() {
            "Unknown" => IndirectTargets::Unknown,
            "Known" => {
                c.expect("(");
                let list = c.int_list().into_iter().map(|v| v as u32).collect();
                c.expect(")");
                IndirectTargets::Known(list)
            }
            other => panic!("unsupported IndirectTargets variant {other}"),
        };
        indirect_calls.insert(addr, targets);
        c.eat(",");
    }
    c.eat(",");

    // The recorded counterexample has no jump hints or relocations; the
    // remaining fields (`entry`, `entry_index`) are rebuilt by
    // `Program::new`, so only `entry` needs parsing.
    c.expect("jump_hints:");
    c.expect("{");
    c.expect("}");
    c.eat(",");
    c.expect("relocations:");
    c.expect("{");
    c.expect("}");
    c.eat(",");
    c.expect("entry:");
    c.expect("RoutineId(");
    let entry = RoutineId::from_index(c.int() as usize);
    c.expect(")");

    Program::new(
        routines,
        jump_tables,
        indirect_calls,
        BTreeMap::new(),
        BTreeMap::new(),
        entry,
    )
    .expect("recorded counterexample must still validate")
}

