//! Workspace-level properties for the interprocedural stack-slot layer:
//! the lint checks, the per-slot shadow oracle, dead-stack-store
//! elimination, and the incremental re-analysis of slot summaries.
//!
//! The contract mirrors the register story one level down the memory
//! hierarchy: the static checks must be grounded by the per-slot shadow
//! simulator (clean programs never trap, seeded defects are flagged at
//! the exact routine and slot the generator reports), and the optimizer
//! pass the analysis feeds must preserve simulated behaviour on the
//! paper-calibrated benchmark profiles.

use proptest::prelude::*;

use spike::core::{analyze_with, AnalysisCache, AnalysisOptions};
use spike::lint::{lint, Check, Severity};
use spike::opt::{optimize_with, OptOptions};
use spike::program::{Program, Rewriter};
use spike::sim::{run, run_shadow_slots, Fault, Outcome};
use spike::synth::{generate_executable, generate_executable_with_defect, DefectKind};

const FUEL: u64 = 10_000_000;

/// Fuel for the profile programs, which are not built to halt: enough to
/// execute well past every routine at the small scale used here.
const PROFILE_FUEL: u64 = 200_000;

fn stack_only() -> OptOptions {
    OptOptions {
        dead_code: false,
        spills: false,
        realloc: false,
        stack: true,
        ..OptOptions::default()
    }
}

fn arb_profile_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), prop_oneof![Just("compress"), Just("gcc"), Just("sqlservr"), Just("vortex")])
        .prop_map(|(seed, name)| {
            let p = spike::synth::profile(name).expect("known benchmark");
            spike::synth::generate(&p, 20.0 / p.routines as f64, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness of the error-severity stack checks, grounded end to
    /// end: generated executables carry no stack lint errors, and the
    /// per-slot shadow simulator agrees — it runs them to completion
    /// with exactly the plain interpreter's output and step count.
    #[test]
    fn stack_lint_clean_implies_slot_shadow_clean(seed in any::<u64>(), size in 1usize..9) {
        let p = generate_executable(seed, size);
        let report = lint(&p);
        let errors: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "not lint-clean: {}", errors[0]);

        let Outcome::Halted { output: plain, steps: plain_steps } = run(&p, FUEL) else {
            panic!("generated executables must halt");
        };
        match run_shadow_slots(&p, FUEL) {
            Outcome::Halted { output, steps } => {
                prop_assert_eq!(output, plain);
                prop_assert_eq!(steps, plain_steps);
            }
            other => prop_assert!(false, "slot shadow diverged: {other:?}"),
        }
    }

    /// A planted uninitialized-slot read is flagged by the checker at the
    /// seeded routine and slot, with a witness path, and the shadow
    /// oracle confirms the fault at the same slot offset.
    #[test]
    fn injected_uninit_slot_read_is_flagged(seed in any::<u64>(), size in 1usize..7) {
        let (p, d) =
            generate_executable_with_defect(seed, size, DefectKind::UninitStackSlotRead);
        let report = lint(&p);
        let hit = report.diagnostics().iter().find(|f| {
            f.check == Check::UninitStackRead && f.routine == d.routine && f.slot == d.slot
        });
        prop_assert!(
            hit.is_some(),
            "uninit slot read in {} at {:?} not flagged; got {:?}",
            d.routine, d.slot,
            report.diagnostics().iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
        prop_assert!(!hit.unwrap().witness.is_empty(), "no witness path");

        match run_shadow_slots(&p, FUEL) {
            Outcome::Fault(Fault::UninitStackRead { routine, offset, .. }) => {
                prop_assert_eq!(routine, d.routine);
                prop_assert_eq!(Some(offset), d.slot);
            }
            other => prop_assert!(false, "shadow oracle missed the defect: {other:?}"),
        }
    }

    /// A planted store above the entry SP is flagged as out-of-frame at
    /// the seeded routine and slot, and the shadow oracle faults in the
    /// same routine.
    #[test]
    fn injected_out_of_frame_store_is_flagged(seed in any::<u64>(), size in 1usize..7) {
        let (p, d) = generate_executable_with_defect(seed, size, DefectKind::OutOfFrameStore);
        let report = lint(&p);
        let hit = report.diagnostics().iter().any(|f| {
            f.check == Check::OutOfFrameAccess && f.routine == d.routine && f.slot == d.slot
        });
        prop_assert!(
            hit,
            "out-of-frame store in {} at {:?} not flagged; got {:?}",
            d.routine, d.slot,
            report.diagnostics().iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );

        match run_shadow_slots(&p, FUEL) {
            Outcome::Fault(Fault::OutOfFrame { routine, .. }) => {
                prop_assert_eq!(routine, d.routine);
            }
            other => prop_assert!(false, "shadow oracle missed the defect: {other:?}"),
        }
    }

    /// Dead-stack-store elimination alone preserves the behaviour of
    /// runnable executables — and the slot shadow still passes on the
    /// optimized program, so the pass never manufactures an
    /// uninitialized read by deleting a store the shadow needed.
    #[test]
    fn stack_dse_preserves_executable_behaviour(seed in any::<u64>(), size in 1usize..9) {
        let p = generate_executable(seed, size);
        let Outcome::Halted { output: before, steps: before_steps } = run(&p, FUEL) else {
            panic!("generated executables must halt");
        };
        let (q, _) = optimize_with(&p, &stack_only()).expect("optimization succeeds");
        match run_shadow_slots(&q, FUEL) {
            Outcome::Halted { output, steps } => {
                prop_assert_eq!(output, before);
                prop_assert!(steps <= before_steps, "executed more instructions");
            }
            other => prop_assert!(false, "optimized program misbehaved: {other:?}"),
        }
    }

    /// [`AnalysisCache::reanalyze`] reproduces the from-scratch slot
    /// analysis bit for bit on the benchmark profiles — frame models,
    /// summaries, per-block slot sets and memory accounting — on both
    /// the clean path (no routine dirty) and after a real edit.
    #[test]
    fn reanalyze_stack_matches_scratch(program in arb_profile_program()) {
        let options = AnalysisOptions::default();
        let mut cache = AnalysisCache::new(options.clone());
        cache.analyze(&program);

        // Clean path: nothing dirty, the cached result must still match
        // a from-scratch run exactly.
        let clean = cache.reanalyze(&program, &[]).stack.clone();
        let scratch = analyze_with(&program, &options);
        prop_assert_eq!(&clean, &scratch.stack);

        // Dirty path: delete the last deletable instruction and compare
        // the seeded re-solve against scratch on the edited program.
        let victim = program
            .iter()
            .flat_map(|(_, r)| {
                (0..r.len() as u32).map(move |i| (r.addr() + i, &r.insns()[i as usize]))
            })
            .filter(|(addr, insn)| {
                !insn.is_terminator() && !program.relocations().contains_key(addr)
            })
            .last()
            .map(|(addr, _)| addr);
        prop_assert!(victim.is_some(), "profile programs have deletable instructions");
        let (edited, changed) =
            Rewriter::new(&program).delete(victim.unwrap()).finish().expect("delete relinks");

        let incremental = cache.reanalyze(&edited, &changed);
        let scratch = analyze_with(&edited, &options);
        prop_assert_eq!(&incremental.stack, &scratch.stack);
        prop_assert_eq!(incremental.stats.memory_bytes, scratch.stats.memory_bytes);
    }
}

/// Dead-stack-store elimination across every generator profile: the
/// pass must fire (delete at least one store) on at least half of them,
/// and the optimized program must preserve simulated behaviour.
///
/// The profiles are not built to halt, so behaviour is compared
/// structurally: where both runs carry output it must agree (the
/// optimized program executes the same trace minus deleted stores, so
/// an out-of-fuel original's output is a prefix of the optimized run's),
/// and a faulting original must fault the same way after optimization.
#[test]
fn stack_dse_fires_and_preserves_behaviour_on_profiles() {
    let profiles = spike::synth::profiles();
    let mut fired = Vec::new();
    for p in &profiles {
        let program = spike::synth::generate(p, 20.0 / p.routines as f64, 1);
        let before = run(&program, PROFILE_FUEL);
        let (optimized, report) = optimize_with(&program, &stack_only())
            .unwrap_or_else(|e| panic!("{}: optimization failed: {e}", p.name));
        if report.stack_stores_deleted > 0 {
            fired.push(p.name);
        }
        let after = run(&optimized, PROFILE_FUEL);
        match (&before, &after) {
            (
                Outcome::Halted { output: a, steps: sa },
                Outcome::Halted { output: b, steps: sb },
            ) => {
                assert_eq!(a, b, "{}: output changed", p.name);
                assert!(sb <= sa, "{}: executed more instructions", p.name);
            }
            // The optimized program executes the original trace minus
            // deleted stores, so with the same fuel it gets at least as
            // far: the original's output must be a prefix of whatever
            // the optimized run produced before halting, fuelling out,
            // or reaching a fault further along the trace.
            (Outcome::OutOfFuel { output: a, .. }, Outcome::Halted { output: b, .. })
            | (Outcome::OutOfFuel { output: a, .. }, Outcome::OutOfFuel { output: b, .. }) => {
                assert!(b.starts_with(a), "{}: output diverged", p.name);
            }
            (Outcome::OutOfFuel { .. }, Outcome::Fault(_)) => {}
            (Outcome::Fault(a), Outcome::Fault(b)) => {
                assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{}: fault kind changed: {a:?} vs {b:?}",
                    p.name
                );
            }
            (a, b) => panic!("{}: behaviour changed: {a:?} vs {b:?}", p.name),
        }
    }
    assert!(
        fired.len() * 2 >= profiles.len(),
        "dead stack stores deleted on only {}/{} profiles: {fired:?}",
        fired.len(),
        profiles.len()
    );
}
