//! Optimizer soundness: on arbitrary terminating programs, the Figure 1
//! passes must preserve the observable output stream, never increase
//! static size, and never increase executed instructions.

use proptest::prelude::*;

use spike::opt::{optimize, optimize_with, OptOptions};
use spike::sim::{run, Outcome};
use spike::synth::generate_executable;

const FUEL: u64 = 10_000_000;

fn halted(outcome: Outcome) -> (Vec<i64>, u64) {
    match outcome {
        Outcome::Halted { output, steps } => (output, steps),
        other => panic!("program did not halt: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimization_preserves_behaviour(seed in any::<u64>(), size in 1usize..9) {
        let p = generate_executable(seed, size);
        let (before_out, before_steps) = halted(run(&p, FUEL));
        let (q, report) = optimize(&p).expect("optimization succeeds");
        let (after_out, after_steps) = halted(run(&q, FUEL));

        prop_assert_eq!(&before_out, &after_out, "output changed: {:?}", report);
        prop_assert!(after_steps <= before_steps, "executed more instructions");
        prop_assert!(report.instructions_after <= report.instructions_before);
        prop_assert_eq!(q.total_instructions(), report.instructions_after);
    }

    /// Every single pass is independently sound.
    #[test]
    fn each_pass_is_independently_sound(seed in any::<u64>(), pass in 0usize..4) {
        let p = generate_executable(seed, 6);
        let options = OptOptions {
            dead_code: pass == 0,
            spills: pass == 1,
            realloc: pass == 2,
            stack: pass == 3,
            ..OptOptions::default()
        };
        let (before_out, _) = halted(run(&p, FUEL));
        let (q, _) = optimize_with(&p, &options).expect("optimization succeeds");
        let (after_out, _) = halted(run(&q, FUEL));
        prop_assert_eq!(before_out, after_out);
    }

    /// Optimizing twice reaches a fixpoint quickly: the second round may
    /// shrink further, never grow, and still behaves identically.
    #[test]
    fn optimization_is_shrinking_and_idempotent_in_behaviour(seed in any::<u64>()) {
        let p = generate_executable(seed, 5);
        let (q, _) = optimize(&p).expect("first round");
        let (r, rep2) = optimize(&q).expect("second round");
        prop_assert!(rep2.instructions_after <= rep2.instructions_before);
        let (o0, _) = halted(run(&p, FUEL));
        let (o2, _) = halted(run(&r, FUEL));
        prop_assert_eq!(o0, o2);
    }

    /// The optimized binary survives an image round-trip and re-analysis.
    #[test]
    fn optimized_binary_round_trips(seed in any::<u64>()) {
        let p = generate_executable(seed, 5);
        let (q, _) = optimize(&p).expect("optimization succeeds");
        let image = q.to_image();
        let loaded = spike::program::Program::from_image(&image).expect("loads");
        prop_assert_eq!(&loaded, &q);
        let _ = spike::core::analyze(&loaded);
    }
}
