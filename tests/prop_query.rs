//! Equivalence of demand-driven queries with the whole-program fixpoint.
//!
//! The query engine ([`spike::core::AnalysisCache::query`]) solves only
//! the SCC cone a question depends on. These properties pin down its
//! contract: every answer is the bit-identical slice of the dense
//! whole-program solution, on every paper profile; memoized components
//! are never re-solved; the contract survives an incremental
//! `reanalyze`; and the scoped `uninit` check agrees with the full lint
//! pass routine by routine.

use std::collections::HashSet;

use proptest::prelude::*;

use spike::core::{analyze_with, AnalysisCache, AnalysisOptions, Query, QueryAnswer};
use spike::program::{Program, Rewriter, RoutineId};

/// All sixteen Table-2 profiles, scaled to ~20 routines so that 16 cases
/// sweep every profile shape without analysis dominating the suite.
const PROFILES: [&str; 16] = [
    "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex", "acad", "excel", "maxeda",
    "sqlservr", "texim", "ustation", "vc", "winword",
];

fn arb_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), 0usize..PROFILES.len()).prop_map(|(seed, i)| {
        let p = spike::synth::profile(PROFILES[i]).expect("known benchmark");
        spike::synth::generate(&p, 20.0 / p.routines as f64, seed)
    })
}

/// A deterministic spread of routine ids across the program.
fn sample_routines(program: &Program) -> Vec<RoutineId> {
    let n = program.routines().len();
    let mut picks: Vec<usize> = vec![0, n / 3, (2 * n) / 3, n - 1, program.entry().index()];
    picks.sort_unstable();
    picks.dedup();
    picks.into_iter().map(RoutineId::from_index).collect()
}

/// Routine-level call-graph reachability (≥ 1 call edge), the ground
/// truth for `Query::Reaches`, computed independently of the engine.
fn reaches_by_dfs(
    program: &Program,
    cfg: &spike::cfg::ProgramCfg,
    from: RoutineId,
) -> HashSet<usize> {
    let graph = spike::callgraph::CallGraph::build(program, cfg);
    let mut seen = HashSet::new();
    let mut stack: Vec<RoutineId> = graph.callees(from).to_vec();
    while let Some(r) = stack.pop() {
        if seen.insert(r.index()) {
            stack.extend(graph.callees(r).iter().copied());
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every query answer equals the corresponding slice of the dense
    /// whole-program solution, bit for bit, and repeating a query never
    /// re-solves a memoized component.
    #[test]
    fn queries_match_the_whole_program_slice(program in arb_program()) {
        let options = AnalysisOptions::default();
        let scratch = analyze_with(&program, &options);
        let mut cache = AnalysisCache::new(options);
        for rid in sample_routines(&program) {
            let s = scratch.summary.routine(rid);
            let (answer, _) = cache.query(&program, &Query::Summary(rid));
            let QueryAnswer::Summary { call_used, call_defined, call_killed, saved_restored } =
                answer
            else {
                panic!("summary query must return a summary answer");
            };
            prop_assert_eq!(&call_used, &s.call_used);
            prop_assert_eq!(&call_defined, &s.call_defined);
            prop_assert_eq!(&call_killed, &s.call_killed);
            prop_assert_eq!(saved_restored, s.saved_restored);

            let (answer, _) = cache.query(&program, &Query::LiveAtEntry(rid));
            let QueryAnswer::LiveAtEntry { live_at_entry, live_at_exit } = answer else {
                panic!("liveness query must return a liveness answer");
            };
            prop_assert_eq!(&live_at_entry, &s.live_at_entry);
            prop_assert_eq!(&live_at_exit, &s.live_at_exit);

            // Asking again re-solves nothing: the cone is memoized.
            let (_, stats) = cache.query(&program, &Query::LiveAtEntry(rid));
            prop_assert_eq!(stats.phase1_components_solved, 0);
            prop_assert_eq!(stats.phase2_components_solved, 0);
            prop_assert_eq!(stats.visits, 0);
        }
    }

    /// `Query::Reaches` agrees with an independent DFS over the call
    /// graph, including the self-reach-only-via-a-cycle case.
    #[test]
    fn reaches_matches_call_graph_reachability(program in arb_program()) {
        let options = AnalysisOptions::default();
        let scratch = analyze_with(&program, &options);
        let mut cache = AnalysisCache::new(options);
        for caller in sample_routines(&program) {
            let truth = reaches_by_dfs(&program, &scratch.cfg, caller);
            for callee in sample_routines(&program) {
                let (answer, _) =
                    cache.query(&program, &Query::Reaches { caller, callee });
                prop_assert_eq!(
                    answer,
                    QueryAnswer::Reaches(truth.contains(&callee.index())),
                    "reaches({}, {})",
                    caller.index(),
                    callee.index()
                );
            }
        }
    }

    /// A cache that has served queries survives an incremental
    /// `reanalyze` — the demand engine is promoted and patched to exactly
    /// the from-scratch solution of the edited program — and later
    /// queries slice that full state.
    #[test]
    fn queries_then_reanalyze_matches_scratch(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 8);
        let options = AnalysisOptions::default();
        let mut cache = AnalysisCache::new(options.clone());
        let entry = program.entry();
        let (_, warm) = cache.query(&program, &Query::LiveAtEntry(entry));
        prop_assert!(!warm.answered_from_full, "a cold cache must answer by demand");

        // Delete the last deletable instruction (not a terminator, not a
        // relocated constant); the rewriter reports the dirty routines.
        let victim = program
            .iter()
            .flat_map(|(_, r)| {
                (0..r.len() as u32).map(move |i| (r.addr() + i, &r.insns()[i as usize]))
            })
            .filter(|(addr, insn)| {
                !insn.is_terminator() && !program.relocations().contains_key(addr)
            })
            .last()
            .map(|(addr, _)| addr);
        prop_assert!(victim.is_some(), "generated executables have deletable instructions");
        let (edited, changed) = Rewriter::new(&program)
            .delete(victim.unwrap())
            .finish()
            .expect("delete relinks");

        let scratch = analyze_with(&edited, &options);
        {
            let incremental = cache.reanalyze(&edited, &changed);
            for (rid, r) in edited.iter() {
                prop_assert_eq!(
                    incremental.summary.routine(rid),
                    scratch.summary.routine(rid),
                    "summary mismatch for {}",
                    r.name()
                );
            }
            prop_assert_eq!(&incremental.psg, &scratch.psg);
            prop_assert_eq!(incremental.stats.memory_bytes, scratch.stats.memory_bytes);
        }

        let (answer, stats) = cache.query(&edited, &Query::Summary(entry));
        prop_assert!(stats.answered_from_full, "after reanalyze the cache holds full state");
        let QueryAnswer::Summary { call_used, .. } = answer else {
            panic!("summary query must return a summary answer");
        };
        prop_assert_eq!(&call_used, &scratch.summary.routine(entry).call_used);
    }

    /// The scoped `uninit` query finds exactly the full lint pass's
    /// uninit findings for the queried routine — on programs with a
    /// planted defect, so the equality is about real findings, not just
    /// mutual emptiness.
    #[test]
    fn uninit_query_matches_the_full_check(seed in any::<u64>()) {
        let (program, _) = spike::synth::generate_executable_with_defect(
            seed,
            6,
            spike::synth::DefectKind::UninitRead,
        );
        let options = AnalysisOptions::default();
        let full = spike::lint::lint_with(
            &program,
            &analyze_with(&program, &options),
            &spike::lint::LintOptions {
                uninit: true,
                clobber: false,
                dead: false,
                reach: false,
                tables: false,
                stack: false,
            },
        );
        for (rid, r) in program.iter() {
            let mut cache = AnalysisCache::new(options.clone());
            let (solo, _) = cache.with_uninit_facts(&program, rid, |cfg, summary| {
                spike::lint::uninit_routine(&program, cfg, summary, rid)
            });
            let expected: Vec<_> =
                full.diagnostics().iter().filter(|d| d.routine == r.name()).collect();
            prop_assert_eq!(
                solo.diagnostics().iter().collect::<Vec<_>>(),
                expected,
                "routine {}",
                r.name()
            );
        }
    }
}
