//! The full post-link pipeline, end to end: generate a program, write the
//! executable image, load it back (decoding every word), analyze, optimize,
//! re-serialize, reload, and execute — exactly the life cycle of a binary
//! passing through Spike.

use spike::core::analyze;
use spike::opt::optimize;
use spike::program::Program;
use spike::sim::{run, Outcome};
use spike::synth::{generate, generate_executable, profile};

fn output_of(p: &Program) -> Vec<i64> {
    match run(p, 10_000_000) {
        Outcome::Halted { output, .. } => output,
        other => panic!("program did not halt: {other:?}"),
    }
}

#[test]
fn executable_pipeline_preserves_behaviour() {
    for seed in 0..10 {
        let original = generate_executable(seed, 6);
        let expected = output_of(&original);

        // Ship as an image; load as Spike would.
        let loaded = Program::from_image(&original.to_image()).expect("valid image");
        assert_eq!(loaded, original);

        // Analyze and optimize the loaded binary.
        let analysis = analyze(&loaded);
        assert_eq!(analysis.summary.routines().len(), loaded.routines().len());
        let (optimized, report) = optimize(&loaded).expect("optimizes");
        assert!(report.instructions_after <= report.instructions_before);

        // Ship the optimized binary and run it.
        let reshipped =
            Program::from_image(&optimized.to_image()).expect("optimized image is valid");
        assert_eq!(output_of(&reshipped), expected, "seed {seed}");
    }
}

#[test]
fn profile_benchmark_pipeline_is_stable() {
    let p = profile("vortex").expect("known benchmark");
    let program = generate(&p, 30.0 / p.routines as f64, 77);

    let image = program.to_image();
    let loaded = Program::from_image(&image).expect("valid image");
    assert_eq!(loaded, program);

    // Analysis of the loaded image matches analysis of the original.
    let a1 = analyze(&program);
    let a2 = analyze(&loaded);
    for (rid, _) in program.iter() {
        assert_eq!(a1.summary.routine(rid), a2.summary.routine(rid));
    }

    // Optimization keeps the image loadable and analyzable.
    let (optimized, _) = optimize(&loaded).expect("optimizes");
    let reshipped = Program::from_image(&optimized.to_image()).expect("valid");
    let _ = analyze(&reshipped);
}

#[test]
fn analysis_stats_are_populated() {
    let p = profile("m88ksim").expect("known benchmark");
    let program = generate(&p, 30.0 / p.routines as f64, 3);
    let analysis = analyze(&program);
    let s = &analysis.stats;
    assert!(s.memory_bytes > 0);
    assert!(s.phase1_visits > 0);
    assert!(s.phase2_visits > 0);
    assert!(s.stack_forward_visits > 0);
    assert!(s.stack_backward_visits > 0);
    // Stage timers measure disjoint work; the sum is the total.
    assert_eq!(s.total(), s.cfg_build + s.init + s.psg_build + s.phase1 + s.phase2 + s.stack_build);
    // Memory accounting is deterministic.
    let again = analyze(&program);
    assert_eq!(s.memory_bytes, again.stats.memory_bytes);
}
