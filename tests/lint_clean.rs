//! False-positive audit: every default generator profile must lint with
//! zero error-severity findings. The paper-calibrated profiles are the
//! closest thing the repo has to "real programs that are known-good";
//! an error finding on any of them is a lint bug by definition.
//!
//! The small-scale sweep runs in tier-1; the full scale-1 sweep (the
//! acceptance bar) is `#[ignore]`d here and run by the CI dogfood job.

use spike::lint::{lint, Severity};

fn assert_profile_clean(name: &str, scale: f64) {
    let p = spike::synth::profile(name).expect("known benchmark");
    for seed in [1, 2] {
        let program = spike::synth::generate(&p, scale, seed);
        let report = lint(&program);
        let errors: Vec<_> =
            report.diagnostics().iter().filter(|d| d.severity == Severity::Error).collect();
        assert!(
            errors.is_empty(),
            "{name} (scale {scale}, seed {seed}): {} error finding(s), e.g. {}",
            errors.len(),
            errors[0]
        );
    }
}

#[test]
fn all_profiles_lint_clean_at_small_scale() {
    for p in spike::synth::profiles() {
        assert_profile_clean(p.name, 20.0 / p.routines as f64);
    }
}

#[test]
#[ignore = "full-scale acceptance sweep; run in CI with --ignored"]
fn all_profiles_lint_clean_at_full_scale() {
    for p in spike::synth::profiles() {
        assert_profile_clean(p.name, 1.0);
    }
}
