//! The central correctness property: the compact PSG analysis computes
//! exactly the same meet-over-all-valid-paths summaries as dataflow over
//! the whole-program CFG, on arbitrary generated programs.

use proptest::prelude::*;

use spike::baseline::analyze_baseline_with;
use spike::core::{analyze_with, AnalysisOptions};
use spike::program::Program;

fn assert_equivalent(program: &Program, options: &AnalysisOptions) {
    let psg = analyze_with(program, options);
    let full = analyze_baseline_with(program, options);
    for (rid, r) in program.iter() {
        assert_eq!(
            psg.summary.routine(rid),
            &full.summaries[rid.index()],
            "summary mismatch for {}",
            r.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executable-style programs (DAG call graphs, loops, switches,
    /// indirect calls).
    #[test]
    fn psg_equals_full_cfg_on_executables(seed in any::<u64>(), size in 1usize..8) {
        let program = spike::synth::generate_executable(seed, size);
        assert_equivalent(&program, &AnalysisOptions::default());
    }

    /// Profile-shaped programs (recursion, multiway dispatch, exports,
    /// unknown indirect calls, callee-saved traffic).
    #[test]
    fn psg_equals_full_cfg_on_profiles(
        seed in any::<u64>(),
        which in 0usize..16,
    ) {
        let profiles = spike::synth::profiles();
        let p = &profiles[which];
        let scale = 25.0 / p.routines as f64;
        let program = spike::synth::generate(p, scale, seed);
        assert_equivalent(&program, &AnalysisOptions::default());
    }

    /// The equivalence must hold under every analysis configuration.
    #[test]
    fn psg_equals_full_cfg_under_option_matrix(
        seed in any::<u64>(),
        branch_nodes in any::<bool>(),
        callee_saved_filter in any::<bool>(),
    ) {
        let p = spike::synth::profile("perl").expect("known benchmark");
        let program = spike::synth::generate(&p, 25.0 / p.routines as f64, seed);
        let options = AnalysisOptions {
            branch_nodes,
            callee_saved_filter,
            ..AnalysisOptions::default()
        };
        assert_equivalent(&program, &options);
    }
}

/// Branch nodes are a pure representation choice: toggling them must not
/// change a single summary set, only the graph size.
#[test]
fn branch_nodes_do_not_change_results() {
    for name in ["sqlservr", "perl", "vc", "winword"] {
        let p = spike::synth::profile(name).expect("known benchmark");
        let program = spike::synth::generate(&p, 40.0 / p.routines as f64, 9);
        let with = analyze_with(&program, &AnalysisOptions::default());
        let without = analyze_with(
            &program,
            &AnalysisOptions { branch_nodes: false, ..AnalysisOptions::default() },
        );
        for (rid, r) in program.iter() {
            assert_eq!(
                with.summary.routine(rid),
                without.summary.routine(rid),
                "{name}/{} differs",
                r.name()
            );
        }
        assert!(with.psg.stats().branch_nodes > 0, "{name} has branch nodes");
    }
}

/// Disabling the §3.4 callee-saved filter can only make summaries more
/// conservative: larger call-used/killed sets, never smaller.
#[test]
fn callee_saved_filter_only_sharpens() {
    let p = spike::synth::profile("li").expect("known benchmark");
    let program = spike::synth::generate(&p, 40.0 / p.routines as f64, 4);
    let filtered = analyze_with(&program, &AnalysisOptions::default());
    let raw = analyze_with(
        &program,
        &AnalysisOptions { callee_saved_filter: false, ..AnalysisOptions::default() },
    );
    for (rid, r) in program.iter() {
        let f = filtered.summary.routine(rid);
        let u = raw.summary.routine(rid);
        for (a, b) in f.call_used.iter().zip(&u.call_used) {
            assert!(a.is_subset(*b), "{}: filtered used must shrink", r.name());
        }
        for (a, b) in f.call_killed.iter().zip(&u.call_killed) {
            assert!(a.is_subset(*b), "{}: filtered killed must shrink", r.name());
        }
    }
}
