//! Structural invariants of the CFG and PSG, property-tested over the
//! synthetic generators.

use proptest::prelude::*;

use spike::cfg::{ProgramCfg, TermKind};
use spike::core::{analyze_with, AnalysisOptions, EdgeKind, NodeKind};
use spike::program::Program;

fn arb_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), prop_oneof![Just("li"), Just("perl"), Just("vortex"), Just("sqlservr")])
        .prop_map(|(seed, name)| {
            let p = spike::synth::profile(name).expect("known benchmark");
            spike::synth::generate(&p, 20.0 / p.routines as f64, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Blocks tile each routine exactly; successor and predecessor lists
    /// are duals; terminator kinds imply the right successor shapes.
    #[test]
    fn cfg_structure_is_consistent(program in arb_program()) {
        let pcfg = ProgramCfg::build(&program);
        for (rid, routine) in program.iter() {
            let cfg = pcfg.routine_cfg(rid);

            // Partition: blocks cover [addr, end) contiguously.
            let mut expected = routine.addr();
            for b in cfg.blocks() {
                prop_assert_eq!(b.start(), expected);
                prop_assert!(!b.is_empty());
                expected = b.end();
            }
            prop_assert_eq!(expected, routine.end_addr());

            // Duality: a ∈ succs(b) ⇔ b ∈ preds(a).
            for (bi, b) in cfg.blocks().iter().enumerate() {
                let me = spike::cfg::BlockId::from_index(bi);
                for &s in b.succs() {
                    prop_assert!(cfg.block(s).preds().contains(&me));
                }
                for &p in b.preds() {
                    prop_assert!(cfg.block(p).succs().contains(&me));
                }

                // Terminator shape.
                match b.term() {
                    TermKind::Call { return_to, .. } => {
                        prop_assert!(b.succs().is_empty());
                        prop_assert!(return_to.is_some());
                    }
                    TermKind::Ret | TermKind::Halt | TermKind::UnknownJump => {
                        prop_assert!(b.succs().is_empty());
                    }
                    TermKind::Branch | TermKind::FallThrough => {
                        prop_assert_eq!(b.succs().len(), 1);
                    }
                    TermKind::CondBranch => {
                        prop_assert!(!b.succs().is_empty() && b.succs().len() <= 2);
                    }
                    TermKind::MultiwayJump => {
                        prop_assert!(!b.succs().is_empty());
                    }
                }
            }

            // Exits are exactly the Ret blocks.
            let rets: Vec<_> = cfg
                .blocks()
                .iter()
                .enumerate()
                .filter(|(_, b)| matches!(b.term(), TermKind::Ret))
                .map(|(i, _)| spike::cfg::BlockId::from_index(i))
                .collect();
            prop_assert_eq!(cfg.exits(), &rets[..]);
        }
    }

    /// PSG wiring: flow edges stay within one routine, call-return edges
    /// connect a call node to its own return node, adjacency lists are
    /// duals, and node inventories match the CFG.
    #[test]
    fn psg_structure_is_consistent(program in arb_program()) {
        let analysis = analyze_with(&program, &AnalysisOptions::default());
        let psg = &analysis.psg;

        for (ei, edge) in psg.edges().iter().enumerate() {
            let e = spike::core::EdgeId::from_index(ei);
            let from = psg.node(edge.from());
            let to = psg.node(edge.to());
            prop_assert_eq!(from.routine(), to.routine(), "edges are intraprocedural");
            prop_assert!(psg.out_edges(edge.from()).contains(&e));
            prop_assert!(psg.in_edges(edge.to()).contains(&e));
            match edge.kind() {
                EdgeKind::CallReturn => {
                    let ok = matches!(from, NodeKind::Call { .. })
                        && matches!(to, NodeKind::Return { .. });
                    prop_assert!(ok, "call-return edge endpoints: {from:?} -> {to:?}");
                }
                EdgeKind::FlowSummary => {
                    prop_assert!(!matches!(from, NodeKind::Exit { .. }),
                        "exits are sinks");
                }
            }
        }

        // Each call node has exactly one outgoing edge: its call-return
        // edge (§3.1).
        for (ni, kind) in psg.nodes().iter().enumerate() {
            let n = spike::core::NodeId::from_index(ni);
            if matches!(kind, NodeKind::Call { .. }) {
                prop_assert_eq!(psg.out_edges(n).len(), 1);
                let e = psg.edge(psg.out_edges(n)[0]);
                prop_assert_eq!(e.kind(), EdgeKind::CallReturn);
            }
        }

        // Node inventory matches the CFG.
        for (rid, _) in program.iter() {
            let cfg = analysis.cfg.routine_cfg(rid);
            let rn = psg.routine_nodes(rid);
            prop_assert_eq!(rn.entries().len(), cfg.entries().len());
            prop_assert_eq!(rn.exits().len(), cfg.exits().len());
            prop_assert_eq!(rn.calls().len(), cfg.call_count());
        }

        // Summary sanity: call-defined ⊆ call-killed (must ⊆ may) — except
        // for routines with no returning path, whose MUST-DEF is vacuously
        // ⊤ (see DESIGN.md on halt/diverge sinks). The vacuous case is
        // recognizable: it contains every caller-saved register at once.
        let caller_saved = analysis.summary.calling_standard().caller_saved();
        for (rid, r) in program.iter() {
            let s = analysis.summary.routine(rid);
            for (d, k) in s.call_defined.iter().zip(&s.call_killed) {
                prop_assert!(
                    d.is_subset(*k) || caller_saved.is_subset(*d),
                    "{}: must-def ⊄ may-def and not vacuous: {} vs {}",
                    r.name(),
                    d,
                    k
                );
            }
        }
    }

    /// The whole analysis is deterministic: same program, same results.
    #[test]
    fn analysis_is_deterministic(seed in any::<u64>()) {
        let p = spike::synth::profile("go").expect("known benchmark");
        let program = spike::synth::generate(&p, 15.0 / p.routines as f64, seed);
        let a = analyze_with(&program, &AnalysisOptions::default());
        let b = analyze_with(&program, &AnalysisOptions::default());
        for (rid, _) in program.iter() {
            prop_assert_eq!(a.summary.routine(rid), b.summary.routine(rid));
        }
        prop_assert_eq!(a.stats.memory_bytes, b.stats.memory_bytes);
        prop_assert_eq!(a.psg.stats().edges, b.psg.stats().edges);
    }
}
