//! Determinism of the parallel analysis front-end: any worker count must
//! produce bit-identical results.
//!
//! The front-end fans per-routine work (CFG structure, `DEF`/`UBD`
//! initialization, callee-saved scans, Figure-6 edge labeling) across
//! scoped threads and merges in routine-id order. These properties pin
//! the contract down hard: not just equal summaries, but identical PSG
//! node/edge sequences and an identical deterministic `memory_bytes` —
//! the latter is capacity-sensitive, so it fails if the merge deviates
//! from the serial push sequence by even one `Vec` growth step.

use proptest::prelude::*;

use spike::core::{analyze_with, AnalysisOptions};
use spike::program::Program;

fn arb_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), prop_oneof![Just("li"), Just("perl"), Just("vortex"), Just("sqlservr")])
        .prop_map(|(seed, name)| {
            let p = spike::synth::profile(name).expect("known benchmark");
            spike::synth::generate(&p, 20.0 / p.routines as f64, seed)
        })
}

fn with_threads(threads: usize) -> AnalysisOptions {
    AnalysisOptions { threads, ..AnalysisOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `threads = 1` and `threads = 8` agree on every observable output:
    /// per-routine summaries, the exact PSG node and edge sequences (ids
    /// included, since both are dense index orders), the stage statistics'
    /// visit counts, and the deterministic memory accounting.
    #[test]
    fn eight_workers_match_serial_exactly(program in arb_program()) {
        let serial = analyze_with(&program, &with_threads(1));
        let parallel = analyze_with(&program, &with_threads(8));

        for (rid, r) in program.iter() {
            prop_assert_eq!(
                serial.summary.routine(rid),
                parallel.summary.routine(rid),
                "summary mismatch for {}",
                r.name()
            );
        }
        prop_assert_eq!(serial.psg.nodes(), parallel.psg.nodes());
        prop_assert_eq!(serial.psg.edges(), parallel.psg.edges());
        prop_assert_eq!(serial.psg.stats(), parallel.psg.stats());
        prop_assert_eq!(serial.stats.phase1_visits, parallel.stats.phase1_visits);
        prop_assert_eq!(serial.stats.phase2_visits, parallel.stats.phase2_visits);
        prop_assert_eq!(serial.stats.memory_bytes, parallel.stats.memory_bytes);
    }

    /// The default (`threads = 0`, all available hardware threads) and an
    /// oversubscribed setting agree with serial too — worker count never
    /// leaks into results, only into the recorded stats.
    #[test]
    fn worker_count_only_affects_stats(seed in any::<u64>()) {
        let p = spike::synth::profile("go").expect("known benchmark");
        let program = spike::synth::generate(&p, 15.0 / p.routines as f64, seed);
        let serial = analyze_with(&program, &with_threads(1));
        for threads in [0usize, 3, 17] {
            let other = analyze_with(&program, &with_threads(threads));
            for (rid, _) in program.iter() {
                prop_assert_eq!(serial.summary.routine(rid), other.summary.routine(rid));
            }
            prop_assert_eq!(serial.psg.edges(), other.psg.edges());
            prop_assert_eq!(serial.stats.memory_bytes, other.stats.memory_bytes);
        }
    }

    /// The baseline mirrors the same plumbing: its parallel CFG fan-out
    /// must not change summaries or its memory accounting either.
    #[test]
    fn baseline_parallel_cfg_build_is_deterministic(seed in any::<u64>()) {
        let p = spike::synth::profile("li").expect("known benchmark");
        let program = spike::synth::generate(&p, 20.0 / p.routines as f64, seed);
        let serial = spike::baseline::analyze_baseline_with(&program, &with_threads(1));
        let parallel = spike::baseline::analyze_baseline_with(&program, &with_threads(8));
        prop_assert_eq!(&serial.summaries, &parallel.summaries);
        prop_assert_eq!(serial.counts, parallel.counts);
        prop_assert_eq!(serial.stats.memory_bytes, parallel.stats.memory_bytes);
    }
}
