//! Equivalence of incremental re-analysis with from-scratch analysis.
//!
//! The optimizer's pass manager threads one [`spike::core::AnalysisCache`]
//! through its passes, re-running the analysis front-end only for routines
//! the previous pass edited. These properties pin the contract down hard:
//! the cached pipeline must emit bit-identical programs, summaries, PSGs
//! and deterministic `memory_bytes` — the latter is capacity-sensitive, so
//! it fails if the in-place PSG patching deviates from the from-scratch
//! push sequence by even one `Vec` growth step.

use proptest::prelude::*;

use spike::core::{analyze_with, AnalysisCache, AnalysisOptions};
use spike::opt::{optimize_with, OptOptions};
use spike::program::{Program, Rewriter};
use spike::sim::Outcome;

fn arb_program() -> impl Strategy<Value = Program> {
    (any::<u64>(), prop_oneof![Just("compress"), Just("li"), Just("perl"), Just("vortex")])
        .prop_map(|(seed, name)| {
            let p = spike::synth::profile(name).expect("known benchmark");
            spike::synth::generate(&p, 20.0 / p.routines as f64, seed)
        })
}

fn with_incremental(incremental: bool) -> OptOptions {
    OptOptions { incremental, ..OptOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The cached pass manager and the from-scratch pass manager agree on
    /// every observable output for the synthetic benchmark profiles: the
    /// optimized program bit-for-bit and every optimization count.
    #[test]
    fn incremental_optimize_matches_scratch_on_profiles(program in arb_program()) {
        let (scratch, srep) = optimize_with(&program, &with_incremental(false))
            .expect("optimization succeeds");
        let (incremental, irep) = optimize_with(&program, &with_incremental(true))
            .expect("optimization succeeds");

        prop_assert_eq!(&scratch, &incremental);
        prop_assert_eq!(srep.instructions_after, irep.instructions_after);
        prop_assert_eq!(srep.dead_deleted, irep.dead_deleted);
        prop_assert_eq!(srep.spill_pairs_removed, irep.spill_pairs_removed);
        prop_assert_eq!(srep.registers_reallocated, irep.registers_reallocated);
        prop_assert_eq!(srep.save_restores_deleted, irep.save_restores_deleted);
        prop_assert_eq!(srep.rounds, irep.rounds);
        // Scratch mode never reuses; incremental mode accounts for every
        // routine in every analysis run, one way or the other.
        prop_assert_eq!(srep.routines_reused, 0);
        prop_assert_eq!(
            (irep.routines_reanalyzed + irep.routines_reused)
                % program.routines().len().max(1),
            0
        );
    }

    /// On runnable executables the two modes also agree, and both preserve
    /// the simulated behaviour of the original program.
    #[test]
    fn incremental_optimize_matches_scratch_on_executables(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 10);
        let (scratch, _) = optimize_with(&program, &with_incremental(false))
            .expect("optimization succeeds");
        let (incremental, irep) = optimize_with(&program, &with_incremental(true))
            .expect("optimization succeeds");
        prop_assert_eq!(&scratch, &incremental);

        let Outcome::Halted { output: before, .. } = spike::sim::run(&program, 10_000_000) else {
            panic!("generated executables must halt");
        };
        let Outcome::Halted { output: after, .. } = spike::sim::run(&incremental, 10_000_000)
        else {
            panic!("optimized executables must halt");
        };
        prop_assert_eq!(before, after);
        prop_assert!(irep.rounds >= 1);
    }

    /// `iterate` mode (bounded fixpoint) removes at least as much as a
    /// single round and still preserves simulated behaviour, in both
    /// re-analysis modes.
    #[test]
    fn iterate_mode_preserves_behaviour(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 8);
        let (_, single) = optimize_with(&program, &with_incremental(true))
            .expect("optimization succeeds");
        for incremental in [false, true] {
            let options = OptOptions { iterate: true, ..with_incremental(incremental) };
            let (optimized, report) = optimize_with(&program, &options)
                .expect("optimization succeeds");
            prop_assert!(report.removed() >= single.removed());

            let Outcome::Halted { output: before, .. } = spike::sim::run(&program, 10_000_000)
            else {
                panic!("generated executables must halt");
            };
            let Outcome::Halted { output: after, .. } = spike::sim::run(&optimized, 10_000_000)
            else {
                panic!("optimized executables must halt");
            };
            prop_assert_eq!(before, after);
        }
    }

    /// Direct contract of [`AnalysisCache::reanalyze`]: after an edit, the
    /// seeded re-run over the dirty routines reaches exactly the solution
    /// a from-scratch analysis of the edited program computes — the same
    /// summaries, the same PSG node/edge sequences and labels, and the
    /// same deterministic memory accounting.
    #[test]
    fn cache_reanalyze_matches_scratch(seed in any::<u64>()) {
        let program = spike::synth::generate_executable(seed, 6);
        let options = AnalysisOptions::default();
        let mut cache = AnalysisCache::new(options.clone());
        cache.analyze(&program);

        // Delete the last deletable instruction in the program (not a
        // terminator, not a relocated constant) and let the rewriter
        // report which routines changed.
        let victim = program
            .iter()
            .flat_map(|(_, r)| {
                (0..r.len() as u32).map(move |i| (r.addr() + i, &r.insns()[i as usize]))
            })
            .filter(|(addr, insn)| {
                !insn.is_terminator() && !program.relocations().contains_key(addr)
            })
            .last()
            .map(|(addr, _)| addr);
        prop_assert!(victim.is_some(), "generated executables have deletable instructions");
        let (edited, changed) = Rewriter::new(&program)
            .delete(victim.unwrap())
            .finish()
            .expect("delete relinks");

        let incremental = cache.reanalyze(&edited, &changed);
        let scratch = analyze_with(&edited, &options);
        for (rid, r) in edited.iter() {
            prop_assert_eq!(
                incremental.summary.routine(rid),
                scratch.summary.routine(rid),
                "summary mismatch for {}",
                r.name()
            );
        }
        prop_assert_eq!(&incremental.psg, &scratch.psg);
        prop_assert_eq!(incremental.stats.memory_bytes, scratch.stats.memory_bytes);
        prop_assert_eq!(
            incremental.stats.routines_reanalyzed + incremental.stats.routines_reused,
            edited.routines().len()
        );
    }
}
