//! Replays the `Program` counterexample recorded in
//! `prop_invariants.proptest-regressions`.
//!
//! The regression file's comment embeds the complete `Debug` rendering of
//! the shrunken failing program. This test parses that text back into a
//! validated [`Program`] and checks the same CFG/PSG structural invariants
//! as `prop_invariants.rs`, so the recorded counterexample keeps running
//! even under test harnesses that do not replay proptest seed files.

use std::collections::BTreeMap;

use spike::cfg::{BlockId, ProgramCfg, TermKind};
use spike::core::{analyze_with, AnalysisOptions, EdgeId, EdgeKind, NodeId, NodeKind};
use spike::isa::{AluOp, BranchCond, Instruction, MemWidth, Reg};
use spike::program::{IndirectTargets, Program, Routine, RoutineId};

// The Debug-format parser lives in common/ so the forensic example can
// reuse it.
include!("common/regression_parse.rs");

fn recorded_program() -> Program {
    let text = include_str!("prop_invariants.proptest-regressions");
    let marker = "shrinks to program = ";
    let start = text.find(marker).expect("regression file records a program") + marker.len();
    parse_program(text[start..].trim_end())
}

// ---------------------------------------------------------------------------
// The invariants from prop_invariants.rs, as plain assertions
// ---------------------------------------------------------------------------

fn check_cfg_invariants(program: &Program) {
    let pcfg = ProgramCfg::build(program);
    for (rid, routine) in program.iter() {
        let cfg = pcfg.routine_cfg(rid);

        let mut expected = routine.addr();
        for b in cfg.blocks() {
            assert_eq!(b.start(), expected, "{}: blocks tile the routine", routine.name());
            assert!(!b.is_empty());
            expected = b.end();
        }
        assert_eq!(expected, routine.end_addr());

        for (bi, b) in cfg.blocks().iter().enumerate() {
            let me = BlockId::from_index(bi);
            for &s in b.succs() {
                assert!(cfg.block(s).preds().contains(&me), "succ/pred duality");
            }
            for &p in b.preds() {
                assert!(cfg.block(p).succs().contains(&me), "pred/succ duality");
            }
            match b.term() {
                TermKind::Call { return_to, .. } => {
                    assert!(b.succs().is_empty());
                    assert!(return_to.is_some());
                }
                TermKind::Ret | TermKind::Halt | TermKind::UnknownJump => {
                    assert!(b.succs().is_empty());
                }
                TermKind::Branch | TermKind::FallThrough => {
                    assert_eq!(b.succs().len(), 1);
                }
                TermKind::CondBranch => {
                    assert!(!b.succs().is_empty() && b.succs().len() <= 2);
                }
                TermKind::MultiwayJump => {
                    assert!(!b.succs().is_empty());
                }
            }
        }

        let rets: Vec<_> = cfg
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.term(), TermKind::Ret))
            .map(|(i, _)| BlockId::from_index(i))
            .collect();
        assert_eq!(cfg.exits(), &rets[..]);
    }
}

fn check_psg_invariants(program: &Program) {
    let analysis = analyze_with(program, &AnalysisOptions::default());
    let psg = &analysis.psg;

    for (ei, edge) in psg.edges().iter().enumerate() {
        let e = EdgeId::from_index(ei);
        let from = psg.node(edge.from());
        let to = psg.node(edge.to());
        assert_eq!(from.routine(), to.routine(), "edges are intraprocedural");
        assert!(psg.out_edges(edge.from()).contains(&e));
        assert!(psg.in_edges(edge.to()).contains(&e));
        match edge.kind() {
            EdgeKind::CallReturn => {
                assert!(
                    matches!(from, NodeKind::Call { .. }) && matches!(to, NodeKind::Return { .. }),
                    "call-return edge endpoints: {from:?} -> {to:?}"
                );
            }
            EdgeKind::FlowSummary => {
                assert!(!matches!(from, NodeKind::Exit { .. }), "exits are sinks");
            }
        }
    }

    for (ni, kind) in psg.nodes().iter().enumerate() {
        let n = NodeId::from_index(ni);
        if matches!(kind, NodeKind::Call { .. }) {
            assert_eq!(psg.out_edges(n).len(), 1, "call nodes have exactly one out-edge");
            assert_eq!(psg.edge(psg.out_edges(n)[0]).kind(), EdgeKind::CallReturn);
        }
    }

    for (rid, _) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        let rn = psg.routine_nodes(rid);
        assert_eq!(rn.entries().len(), cfg.entries().len());
        assert_eq!(rn.exits().len(), cfg.exits().len());
        assert_eq!(rn.calls().len(), cfg.call_count());
    }

    let caller_saved = analysis.summary.calling_standard().caller_saved();
    for (rid, r) in program.iter() {
        let s = analysis.summary.routine(rid);
        for (d, k) in s.call_defined.iter().zip(&s.call_killed) {
            assert!(
                d.is_subset(*k) || caller_saved.is_subset(*d),
                "{}: must-def ⊄ may-def and not vacuous: {} vs {}",
                r.name(),
                d,
                k
            );
        }
    }
}

#[test]
fn recorded_counterexample_parses_to_twenty_routines() {
    let program = recorded_program();
    assert_eq!(program.routines().len(), 20);
    assert_eq!(program.entry(), RoutineId::from_index(0));
}

#[test]
fn recorded_counterexample_satisfies_cfg_invariants() {
    check_cfg_invariants(&recorded_program());
}

#[test]
fn recorded_counterexample_satisfies_psg_invariants() {
    check_psg_invariants(&recorded_program());
}

#[test]
fn recorded_counterexample_round_trips_through_debug() {
    let text = include_str!("prop_invariants.proptest-regressions");
    let marker = "shrinks to program = ";
    let start = text.find(marker).expect("regression file records a program") + marker.len();
    let recorded = text[start..].trim_end();
    let reparsed = format!("{:?}", recorded_program());
    assert_eq!(reparsed, recorded, "parser must reconstruct the recorded program exactly");
}
