//! The lint soundness oracle: `spike-lint`'s error-severity checks are
//! validated against the shadow simulator and against seeded defects.
//!
//! Three properties tie the static checker to ground truth:
//!
//! 1. *No false negatives the simulator can see*: a lint-clean runnable
//!    program never trips the shadow simulator's uninitialized-read
//!    detector, and shadow execution matches plain execution.
//! 2. *Injected defects are found*: every program the generator seeds
//!    with a defect is flagged — in the defective routine, on the
//!    defective register.
//! 3. *No error-severity false positives*: every default generator
//!    profile lints clean (see `tests/lint_clean.rs` for the full-scale
//!    version).

use proptest::prelude::*;

use spike::lint::{lint, Check, Severity};
use spike::sim::Outcome;
use spike::synth::{generate_executable, generate_executable_with_defect, DefectKind};

const FUEL: u64 = 5_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lint-clean programs never read uninitialized registers at runtime,
    /// on any executed path, and shadow tracking does not perturb
    /// behaviour.
    #[test]
    fn lint_clean_programs_never_trap_in_shadow_mode(
        seed in any::<u64>(),
        routines in 2usize..8,
    ) {
        let program = generate_executable(seed, routines);
        let report = lint(&program);
        prop_assert!(
            report.is_clean(),
            "generator produced a program lint rejects (seed {}): {:?}",
            seed,
            report.diagnostics().iter()
                .filter(|d| d.severity == Severity::Error)
                .collect::<Vec<_>>()
        );

        let shadow = spike::sim::run_shadow(&program, FUEL);
        let Outcome::Halted { output: shadow_out, .. } = shadow else {
            return Err(TestCaseError::fail(format!("shadow run did not halt: {shadow:?}")));
        };
        let Outcome::Halted { output: plain_out, .. } = spike::sim::run(&program, FUEL) else {
            return Err(TestCaseError::fail("plain run did not halt".to_string()));
        };
        prop_assert_eq!(shadow_out, plain_out);
    }

    /// A seeded uninitialized read is flagged by lint at the injected
    /// routine and register, and actually traps in the shadow simulator —
    /// the finding describes a real runtime event, not an artifact.
    #[test]
    fn injected_uninit_reads_are_flagged_and_trap(seed in any::<u64>()) {
        let (program, d) = generate_executable_with_defect(seed, 5, DefectKind::UninitRead);
        let report = lint(&program);
        prop_assert!(
            report.diagnostics().iter().any(|f| {
                f.check == Check::UninitRead
                    && f.routine == d.routine
                    && f.reg == Some(d.reg)
                    && !f.witness.is_empty()
            }),
            "injected uninit read of {} in {} not flagged (seed {}); findings: {:?}",
            d.reg, d.routine, seed, report.diagnostics()
        );

        match spike::sim::run_shadow(&program, FUEL) {
            Outcome::Fault(spike::sim::Fault::UninitRead { reg, .. }) => {
                prop_assert_eq!(reg, d.reg);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "shadow run did not trap on the injected read: {other:?}"
                )));
            }
        }
    }

    /// A seeded callee-saved clobber is flagged at the injected routine
    /// and register. (The clobber is behaviourally silent by construction
    /// — `crates/synth` verifies that — which is exactly why a static
    /// check has to find it.)
    #[test]
    fn injected_clobbers_are_flagged(seed in any::<u64>()) {
        let (program, d) =
            generate_executable_with_defect(seed, 5, DefectKind::CalleeSavedClobber);
        let report = lint(&program);
        prop_assert!(
            report.diagnostics().iter().any(|f| {
                f.check == Check::CalleeSavedClobber
                    && f.routine == d.routine
                    && f.reg == Some(d.reg)
            }),
            "injected clobber of {} in {} not flagged (seed {}); findings: {:?}",
            d.reg, d.routine, seed, report.diagnostics()
        );
    }
}
