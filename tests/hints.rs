//! The §3.5 extension: "dataflow accuracy can be improved if additional
//! information is provided to Spike by the compiler or linker" — exact
//! live-register sets at indirect-jump targets and exact effects of
//! external indirect calls.

use spike::baseline::analyze_baseline;
use spike::core::analyze;
use spike::isa::{Reg, RegSet};
use spike::program::{Program, ProgramBuilder};

fn assert_psg_matches_baseline(program: &Program) {
    let psg = analyze(program);
    let full = analyze_baseline(program);
    for (rid, r) in program.iter() {
        assert_eq!(
            psg.summary.routine(rid),
            &full.summaries[rid.index()],
            "mismatch for {}",
            r.name()
        );
    }
}

/// Without a hint, everything is live at an unknown jump target; with
/// one, only the hinted registers are.
#[test]
fn jump_hints_sharpen_liveness() {
    let build = |hint: Option<RegSet>| {
        let mut b = ProgramBuilder::new();
        let r = b.routine("f");
        r.def(Reg::T0).def(Reg::T1);
        match hint {
            Some(live) => r.jmp_hinted(Reg::T0, live),
            None => r.insn(spike::isa::Instruction::Jmp { base: Reg::T0 }),
        };
        b.build().unwrap()
    };

    // Unhinted: both definitions are "used" by the unknown target.
    let p = build(None);
    let a = analyze(&p);
    let f = p.routine_by_name("f").unwrap();
    let s = a.summary.routine(f);
    assert!(s.call_killed[0].contains(Reg::T1));
    // Everything except the locally defined t0/t1 is live at entry: the
    // unknown target may read it all.
    assert_eq!(s.live_at_entry[0], RegSet::ALL - RegSet::of(&[Reg::T0, Reg::T1]));

    // Hinted: only t0 (the jump base) and the hinted registers are live.
    let hint = RegSet::of(&[Reg::A0]);
    let q = build(Some(hint));
    let a = analyze(&q);
    let f = q.routine_by_name("f").unwrap();
    let s = a.summary.routine(f);
    assert!(s.live_at_entry[0].contains(Reg::A0));
    assert!(!s.live_at_entry[0].contains(Reg::A1), "a1 is not hinted live");
    assert_psg_matches_baseline(&q);
}

/// A hinted external call uses the supplied sets instead of the
/// calling-standard assumption.
#[test]
fn call_hints_replace_calling_standard_assumptions() {
    let used = RegSet::of(&[Reg::A0]);
    let defined = RegSet::of(&[Reg::V0]);
    let killed = RegSet::of(&[Reg::V0, Reg::T0]);

    let mut b = ProgramBuilder::new();
    b.routine("main")
        .def(Reg::A0)
        .def(Reg::A1) // NOT used by the hinted external call: dead
        .def(Reg::T1) // not killed by the hinted call: survives it
        .lda(Reg::PV, Reg::ZERO, 1)
        .jsr_hinted(Reg::PV, used, defined, killed)
        .use_reg(Reg::T1)
        .halt();
    let p = b.build().unwrap();
    assert_psg_matches_baseline(&p);

    // The dead-argument pass can now delete `def a1`, which the
    // calling-standard assumption would have kept.
    let (q, report) = spike::opt::optimize(&p).unwrap();
    assert!(report.dead_deleted >= 1, "{report:?}");
    assert!(q.total_instructions() < p.total_instructions());

    // Sanity: with a plain unknown call nothing is deletable.
    let mut b = ProgramBuilder::new();
    b.routine("main")
        .def(Reg::A0)
        .def(Reg::A1)
        .def(Reg::T1)
        .lda(Reg::PV, Reg::ZERO, 1)
        .jsr_unknown(Reg::PV)
        .use_reg(Reg::T1)
        .halt();
    let unhinted = b.build().unwrap();
    let (_, report) = spike::opt::optimize(&unhinted).unwrap();
    assert_eq!(report.dead_deleted, 0);
}

/// Hints survive the executable image round-trip and relinking.
#[test]
fn hints_round_trip_through_image_and_rewriter() {
    let mut b = ProgramBuilder::new();
    b.routine("main")
        .def(Reg::T2) // deletable filler so the rewriter moves things
        .lda(Reg::PV, Reg::ZERO, 1)
        .jsr_hinted(Reg::PV, RegSet::of(&[Reg::A0]), RegSet::of(&[Reg::V0]), RegSet::of(&[Reg::V0]))
        .jmp_hinted(Reg::T0, RegSet::of(&[Reg::V0]))
        .halt();
    let p = b.build().unwrap();

    let loaded = Program::from_image(&p.to_image()).expect("image round-trips");
    assert_eq!(loaded, p);

    let base = p.routines()[0].addr();
    let (q, _) = spike::program::Rewriter::new(&p).delete(base).finish().unwrap();
    // Hint keys moved down one word with the code.
    assert_eq!(q.jump_hints().len(), 1);
    assert_eq!(q.jump_hint(base + 2), Some(RegSet::of(&[Reg::V0])));
    assert!(matches!(
        q.indirect_call_targets(base + 1),
        spike::program::IndirectTargets::Hinted { .. }
    ));
    assert_psg_matches_baseline(&q);
}

/// Misplaced hints are rejected at validation.
#[test]
fn misplaced_jump_hints_are_rejected() {
    // A hint on a jmp that *has* a table is contradictory.
    let mut b = ProgramBuilder::new();
    b.routine("main").switch(Reg::T0, &["c"]).label("c").halt();
    let p = b.build().unwrap();
    let jmp_addr = p.routines()[0].addr();
    let err = Program::new(
        p.routines().to_vec(),
        p.jump_tables().clone(),
        p.indirect_calls().clone(),
        [(jmp_addr, RegSet::ALL)].into_iter().collect(),
        p.relocations().clone(),
        p.entry(),
    )
    .unwrap_err();
    assert!(matches!(err, spike::program::ProgramError::MisplacedAuxInfo { .. }));
}
