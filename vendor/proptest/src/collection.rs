//! Collection strategies (`proptest::collection` subset).

use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
