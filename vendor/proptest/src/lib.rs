//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external interfaces it needs. This crate keeps the
//! call-site API (`proptest!`, `prop_assert*`, `prop_oneof!`, `Just`,
//! `any`, ranges, tuples, `.prop_map`, `proptest::collection::vec`,
//! `ProptestConfig::with_cases`, `TestCaseError`) but runs each property
//! over deterministically seeded random cases without shrinking: a failure
//! reports the generated inputs directly.
//!
//! Each test's generator is seeded from a hash of the test's module path
//! and name, so runs are reproducible; set `PROPTEST_SEED` to explore a
//! different stream, and `PROPTEST_CASES` to override the default case
//! count globally.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic source of randomness for one property test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for the named test, folding in
    /// `PROPTEST_SEED` if set.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        TestRng(StdRng::seed_from_u64(h ^ extra))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (`proptest::test_runner::Config` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse::<u32>().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input was rejected (e.g. by `prop_assume!`); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type generated.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuples {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedArm<V>>,
}

type BoxedArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V: Debug> Union<V> {
    /// Wraps the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedArm<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Boxes a strategy into a [`Union`] arm (used by `prop_oneof!`).
pub fn union_arm<S: Strategy + 'static>(s: S) -> BoxedArm<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Chooses uniformly among the listed strategies, all generating the same
/// value type. Unlike upstream proptest, arms cannot carry weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::union_arm($strategy)),+])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Declares property tests.
///
/// Matches the upstream grammar used by this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            // Bind each strategy once, shadowing the argument names; each
            // case below rebinds those names to freshly generated values.
            let ($($arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = ($($crate::Strategy::generate(&$arg, &mut __rng),)+);
                let __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec![$(format!("{} = {:?}", stringify!($arg), &$arg)),+];
                let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property failed at case {}/{}: {}\ninputs:\n  {}",
                            __case + 1,
                            __config.cases,
                            __msg,
                            __inputs.join("\n  ")
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -4i16..=4, z in 0usize..1) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert_eq!(z, 0);
        }

        #[test]
        fn maps_and_tuples_compose(v in (0u8..4, 10u32..20).prop_map(|(a, b)| a as u32 + b)) {
            prop_assert!((10..24).contains(&v));
        }

        #[test]
        fn oneof_picks_listed_values(t in prop_oneof![Just(Tag::A), Just(Tag::B)]) {
            prop_assert!(t == Tag::A || t == Tag::B);
            prop_assert_ne!(t, if t == Tag::A { Tag::B } else { Tag::A });
        }

        #[test]
        fn vectors_respect_length_bounds(v in crate::collection::vec(0u8..8, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {} out of bounds", v.len());
            prop_assert!(v.iter().all(|&b| b < 8));
        }
    }

    #[test]
    fn question_mark_propagates_failures() {
        fn inner() -> Result<(), TestCaseError> {
            Err(TestCaseError::fail("boom"))
        }
        let r: Result<(), TestCaseError> = (|| {
            inner()?;
            Ok(())
        })();
        assert!(matches!(r, Err(TestCaseError::Fail(m)) if m == "boom"));
    }

    #[test]
    fn same_test_name_reproduces_the_stream() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let s = crate::collection::vec(0u32..1000, 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
