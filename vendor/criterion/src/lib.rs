//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external interfaces it needs. This crate keeps the
//! call-site API (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! and implements a simple wall-clock harness: each benchmark is measured
//! over `sample_size` samples after a calibration pass that picks an
//! iteration count targeting roughly 100 ms per sample, and the per-
//! iteration minimum / mean / maximum are printed in a criterion-like
//! format. There are no plots, significance tests, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// A harness honoring a benchmark-name substring filter from argv
    /// (the interface `cargo bench -- <filter>` expects).
    pub fn from_args() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        Criterion { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        run_benchmark(self, &id, 20, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, self.sample_size, |b| f(&mut *b));
        self
    }

    /// Ends the group. (No cross-benchmark reporting in this stand-in.)
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    full_id: &str,
    samples: usize,
    mut f: F,
) {
    if !criterion.matches(full_id) {
        return;
    }

    // Calibrate: grow the iteration count until one batch takes ≥ 25 ms,
    // then size batches to roughly 100 ms each.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(25) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let iters = ((0.1 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut per_iter_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter_times.sort_by(f64::total_cmp);
    let min = per_iter_times[0];
    let max = per_iter_times[per_iter_times.len() - 1];
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "{full_id:<40} time: [{} {} {}]  ({samples} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_without_panicking() {
        let mut c = Criterion { filter: Some("never-matches".into()) };
        // Filtered out: the closure must not run.
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("skipped", |_| panic!("filtered benchmarks must not run"));
        g.finish();
    }

    #[test]
    fn bencher_measures_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("analyze", "li").0, "analyze/li");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains(" s"));
    }
}
