//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external interfaces it needs. This crate keeps the
//! call-site API of `rand` (`StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SliceRandom::shuffle`) but backs it
//! with a small, self-contained xoshiro256** generator seeded through
//! SplitMix64.
//!
//! The stream is *not* bit-compatible with upstream `rand`'s `StdRng`;
//! nothing in the workspace depends on the exact stream, only on
//! determinism for a fixed seed, which this crate guarantees.

pub mod rngs;
pub mod seq;

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as upstream `rand` does for small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (`rand::Rng` subset), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive integer range.
    ///
    /// Mirrors upstream's signature shape (`T` out front) so unsuffixed
    /// integer literals in ranges unify with the expected output type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution: uniform over the
/// whole domain for integers and `bool`, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `0..span` via the widening-multiply method.
/// The bias is at most `span / 2^64`, far below anything observable here.
#[inline]
fn index_below(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for near-full u64/i64 inclusive ranges.
        return rng.next_u64() as u128 % span;
    }
    (rng.next_u64() as u128 * span) >> 64
}

/// Integer types uniformly samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the caller guarantees the value fits).
    fn from_i128(v: i128) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// One blanket impl per range shape (as upstream) so type inference can
// flow the expected output type into unsuffixed range literals.
impl<T: SampleUniform> SampleRange<T> for ::core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        T::from_i128(self.start.to_i128() + index_below(rng, span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for ::core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        T::from_i128(lo.to_i128() + index_below(rng, span) as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-50..=50i16);
            assert!((-50..=50).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 should occur");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} should be near 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "got {hits} of ~500");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle should move something");
    }
}
