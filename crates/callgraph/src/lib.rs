//! # spike-callgraph
//!
//! The whole-program call graph: which routines may call which, including
//! recovered indirect targets. Spike-style interprocedural dataflow
//! converges fastest when callees are solved before callers, so the crate
//! provides Tarjan strongly-connected components and a bottom-up
//! (callees-first) component order; it also feeds the evaluation report's
//! program-structure statistics.
//!
//! # Example
//!
//! ```
//! use spike_cfg::ProgramCfg;
//! use spike_callgraph::CallGraph;
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").call("a").halt();
//! b.routine("a").call("b").ret();
//! b.routine("b").ret();
//! let program = b.build()?;
//!
//! let cg = CallGraph::build(&program, &ProgramCfg::build(&program));
//! let main = program.routine_by_name("main").unwrap();
//! let a = program.routine_by_name("a").unwrap();
//! assert_eq!(cg.callees(main), &[a]);
//!
//! // Bottom-up: b before a before main.
//! let order = cg.sccs().bottom_up().concat();
//! assert_eq!(order.len(), 3);
//! assert_eq!(program.routine(order[0]).name(), "b");
//! assert_eq!(program.routine(order[2]).name(), "main");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use spike_cfg::{CallTarget, ProgramCfg, TermKind};
use spike_isa::HeapSize;
use spike_program::{Program, RoutineId};

/// The may-call relation over a program's routines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CallGraph {
    callees: Vec<Vec<RoutineId>>,
    callers: Vec<Vec<RoutineId>>,
    /// Routines containing at least one unknown-target indirect call.
    calls_unknown: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph from a program's CFGs. Edges are deduplicated;
    /// indirect calls with recovered target lists contribute one edge per
    /// target.
    pub fn build(program: &Program, cfg: &ProgramCfg) -> CallGraph {
        let n = program.routines().len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        let mut calls_unknown = vec![false; n];

        for (ri, rcfg) in cfg.cfgs().iter().enumerate() {
            for block in rcfg.blocks() {
                let TermKind::Call { target, .. } = block.term() else {
                    continue;
                };
                let mut note = |callee: RoutineId| {
                    if !callees[ri].contains(&callee) {
                        callees[ri].push(callee);
                        callers[callee.index()].push(RoutineId::from_index(ri));
                    }
                };
                match target {
                    CallTarget::Direct(rid, _) => note(*rid),
                    CallTarget::IndirectKnown(list) => {
                        for (rid, _) in list {
                            note(*rid);
                        }
                    }
                    CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
                        calls_unknown[ri] = true;
                    }
                }
            }
        }
        CallGraph { callees, callers, calls_unknown }
    }

    /// Number of routines.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the program has no routines (never true for validated
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// The routines `id` may call (deduplicated, in first-seen order).
    pub fn callees(&self, id: RoutineId) -> &[RoutineId] {
        &self.callees[id.index()]
    }

    /// The routines that may call `id`.
    pub fn callers(&self, id: RoutineId) -> &[RoutineId] {
        &self.callers[id.index()]
    }

    /// Whether `id` makes at least one unknown-target indirect call.
    pub fn calls_unknown(&self, id: RoutineId) -> bool {
        self.calls_unknown[id.index()]
    }

    /// Whether `id` can (transitively) call itself.
    pub fn is_recursive(&self, id: RoutineId) -> bool {
        let sccs = self.sccs();
        let c = sccs.component_of(id);
        sccs.components()[c].len() > 1 || self.callees(id).contains(&id)
    }

    /// Tarjan strongly-connected components.
    pub fn sccs(&self) -> Sccs {
        let n = self.len();
        let mut state = TarjanState {
            graph: self,
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            comp_of: vec![usize::MAX; n],
            comps: Vec::new(),
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                state.visit(v);
            }
        }
        // Tarjan emits components in reverse topological order of the
        // condensation (callees before callers) — exactly bottom-up.
        Sccs { comp_of: state.comp_of, comps: state.comps }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CallGraphStats {
        let sccs = self.sccs();
        let edges: usize = self.callees.iter().map(Vec::len).sum();
        let recursive_routines = (0..self.len())
            .filter(|&i| {
                let id = RoutineId::from_index(i);
                let c = sccs.component_of(id);
                sccs.components()[c].len() > 1 || self.callees(id).contains(&id)
            })
            .count();
        CallGraphStats {
            routines: self.len(),
            edges,
            max_fanout: self.callees.iter().map(Vec::len).max().unwrap_or(0),
            recursive_routines,
            components: sccs.components().len(),
            largest_component: sccs.components().iter().map(Vec::len).max().unwrap_or(0),
            unknown_call_routines: self.calls_unknown.iter().filter(|&&b| b).count(),
        }
    }
}

impl HeapSize for CallGraph {
    fn heap_bytes(&self) -> usize {
        self.callees.heap_bytes() + self.callers.heap_bytes() + self.calls_unknown.heap_bytes()
    }
}

/// Aggregate call-graph statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallGraphStats {
    /// Routine count.
    pub routines: usize,
    /// Deduplicated call edges.
    pub edges: usize,
    /// Largest callee fan-out of any routine.
    pub max_fanout: usize,
    /// Routines that can transitively call themselves.
    pub recursive_routines: usize,
    /// Strongly-connected components.
    pub components: usize,
    /// Size of the largest component (mutual-recursion cluster).
    pub largest_component: usize,
    /// Routines making unknown-target indirect calls.
    pub unknown_call_routines: usize,
}

impl fmt::Display for CallGraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} routines, {} call edges (max fanout {}), {} recursive, \
             {} SCCs (largest {}), {} with unknown calls",
            self.routines,
            self.edges,
            self.max_fanout,
            self.recursive_routines,
            self.components,
            self.largest_component,
            self.unknown_call_routines,
        )
    }
}

/// Strongly-connected components in bottom-up order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sccs {
    comp_of: Vec<usize>,
    comps: Vec<Vec<RoutineId>>,
}

impl Sccs {
    /// The components, callees-first (reverse topological order of the
    /// condensation).
    pub fn components(&self) -> &[Vec<RoutineId>] {
        &self.comps
    }

    /// The component index of `id`.
    pub fn component_of(&self, id: RoutineId) -> usize {
        self.comp_of[id.index()]
    }

    /// Components in callees-before-callers order (an alias for
    /// [`Sccs::components`], named for intent).
    pub fn bottom_up(&self) -> &[Vec<RoutineId>] {
        &self.comps
    }

    /// Condenses the call graph into its SCC DAG and computes wave
    /// levels for scheduled fixpoint evaluation.
    pub fn condense(&self, graph: &CallGraph) -> Condensation {
        Condensation::build(graph, self)
    }
}

/// The call graph's condensation: one vertex per strongly-connected
/// component, plus the *wave levels* a scheduled fixpoint engine solves
/// the components in.
///
/// A component's **bottom-up level** is the length of the longest callee
/// chain below it (0 for leaves); its **top-down level** is the longest
/// caller chain above it (0 for roots). Components that share a level
/// have no call edges between them — an edge always separates levels —
/// so every level is a *wave* of mutually independent components:
/// phase 1 solves the bottom-up waves in order, phase 2 the top-down
/// waves, and the components inside one wave can be solved in parallel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Condensation {
    sccs: Sccs,
    /// Per component: the components it calls into (deduplicated,
    /// ascending, self-edges dropped).
    callee_comps: Vec<Vec<usize>>,
    /// Per component: the components that call it.
    caller_comps: Vec<Vec<usize>>,
    /// Per component: its bottom-up wave level.
    level_bottom_up: Vec<usize>,
    /// Per component: its top-down wave level.
    level_top_down: Vec<usize>,
    /// Component indices grouped by bottom-up level (ascending inside a
    /// wave).
    waves_bottom_up: Vec<Vec<usize>>,
    /// Component indices grouped by top-down level.
    waves_top_down: Vec<Vec<usize>>,
}

impl Condensation {
    fn build(graph: &CallGraph, sccs: &Sccs) -> Condensation {
        let nc = sccs.components().len();
        let mut callee_comps: Vec<Vec<usize>> = vec![Vec::new(); nc];
        let mut caller_comps: Vec<Vec<usize>> = vec![Vec::new(); nc];
        for (c, comp) in sccs.components().iter().enumerate() {
            let mut callees: Vec<usize> = comp
                .iter()
                .flat_map(|&r| graph.callees(r))
                .map(|&callee| sccs.component_of(callee))
                .filter(|&d| d != c)
                .collect();
            callees.sort_unstable();
            callees.dedup();
            for &d in &callees {
                caller_comps[d].push(c);
            }
            callee_comps[c] = callees;
        }
        for callers in &mut caller_comps {
            callers.sort_unstable();
        }

        // Tarjan emits components callees-first, so both level relaxations
        // are single passes: a component's callees have smaller indices
        // and its callers larger ones.
        let mut level_bottom_up = vec![0usize; nc];
        for c in 0..nc {
            for &d in &callee_comps[c] {
                debug_assert!(d < c, "callee components precede their callers");
                level_bottom_up[c] = level_bottom_up[c].max(level_bottom_up[d] + 1);
            }
        }
        let mut level_top_down = vec![0usize; nc];
        for c in (0..nc).rev() {
            for &d in &caller_comps[c] {
                debug_assert!(d > c, "caller components follow their callees");
                level_top_down[c] = level_top_down[c].max(level_top_down[d] + 1);
            }
        }

        let group = |levels: &[usize]| {
            let waves = levels.iter().max().map_or(0, |&m| m + 1);
            let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); waves];
            for (c, &l) in levels.iter().enumerate() {
                grouped[l].push(c);
            }
            grouped
        };
        let waves_bottom_up = group(&level_bottom_up);
        let waves_top_down = group(&level_top_down);
        Condensation {
            sccs: sccs.clone(),
            callee_comps,
            caller_comps,
            level_bottom_up,
            level_top_down,
            waves_bottom_up,
            waves_top_down,
        }
    }

    /// The underlying components.
    pub fn sccs(&self) -> &Sccs {
        &self.sccs
    }

    /// The components component `c` calls into (no self-edges).
    pub fn callee_components(&self, c: usize) -> &[usize] {
        &self.callee_comps[c]
    }

    /// The components that call into component `c`.
    pub fn caller_components(&self, c: usize) -> &[usize] {
        &self.caller_comps[c]
    }

    /// Component `c`'s bottom-up wave level.
    pub fn level_bottom_up(&self, c: usize) -> usize {
        self.level_bottom_up[c]
    }

    /// Component `c`'s top-down wave level.
    pub fn level_top_down(&self, c: usize) -> usize {
        self.level_top_down[c]
    }

    /// Number of waves (identical for both directions: each equals one
    /// plus the longest path in the condensation DAG).
    pub fn waves(&self) -> usize {
        self.waves_bottom_up.len()
    }

    /// The widest wave (most mutually independent components in one
    /// wave) — the available cross-component parallelism.
    pub fn max_wave_width(&self) -> usize {
        self.waves_bottom_up.iter().chain(&self.waves_top_down).map(Vec::len).max().unwrap_or(0)
    }

    /// Waves in callees-before-callers order: solving them in sequence
    /// guarantees every callee component converges before any caller
    /// component starts (phase 1).
    pub fn waves_bottom_up(&self) -> &[Vec<usize>] {
        &self.waves_bottom_up
    }

    /// Waves in callers-before-callees order (phase 2).
    pub fn waves_top_down(&self) -> &[Vec<usize>] {
        &self.waves_top_down
    }
}

struct TarjanState<'a> {
    graph: &'a CallGraph,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    comp_of: Vec<usize>,
    comps: Vec<Vec<RoutineId>>,
}

impl TarjanState<'_> {
    /// Iterative Tarjan (explicit stack: recursion would overflow on
    /// million-routine call chains).
    fn visit(&mut self, root: usize) {
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        self.open(root);
        while let Some(&mut (v, ref mut next)) = call_stack.last_mut() {
            let callees = &self.graph.callees[v];
            if *next < callees.len() {
                let w = callees[*next].index();
                *next += 1;
                if self.index[w] == usize::MAX {
                    self.open(w);
                    call_stack.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
                if self.lowlink[v] == self.index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("component member on stack");
                        self.on_stack[w] = false;
                        self.comp_of[w] = self.comps.len();
                        comp.push(RoutineId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    self.comps.push(comp);
                }
            }
        }
    }

    fn open(&mut self, v: usize) {
        self.index[v] = self.next_index;
        self.lowlink[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn graph_of(b: &ProgramBuilder) -> (Program, CallGraph) {
        let p = b.build().unwrap();
        let cfg = ProgramCfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        (p, cg)
    }

    fn id(p: &Program, name: &str) -> RoutineId {
        p.routine_by_name(name).unwrap()
    }

    #[test]
    fn edges_and_dedup() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("a").call("a").call("b").halt();
        b.routine("a").ret();
        b.routine("b").ret();
        let (p, cg) = graph_of(&b);
        assert_eq!(cg.callees(id(&p, "main")), &[id(&p, "a"), id(&p, "b")]);
        assert_eq!(cg.callers(id(&p, "a")), &[id(&p, "main")]);
        assert_eq!(cg.stats().edges, 2);
        assert!(!cg.is_empty());
    }

    #[test]
    fn indirect_known_targets_are_edges() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_known(Reg::PV, &["a", "b"]).halt();
        b.routine("a").ret();
        b.routine("b").ret();
        let (p, cg) = graph_of(&b);
        assert_eq!(cg.callees(id(&p, "main")).len(), 2);
        assert!(!cg.calls_unknown(id(&p, "main")));
    }

    #[test]
    fn unknown_calls_are_flagged_not_edges() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_unknown(Reg::PV).halt();
        let (p, cg) = graph_of(&b);
        assert!(cg.callees(id(&p, "main")).is_empty());
        assert!(cg.calls_unknown(id(&p, "main")));
        assert_eq!(cg.stats().unknown_call_routines, 1);
    }

    #[test]
    fn bottom_up_order_solves_callees_first() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("mid").halt();
        b.routine("mid").call("leaf").ret();
        b.routine("leaf").ret();
        let (p, cg) = graph_of(&b);
        let order: Vec<RoutineId> = cg.sccs().bottom_up().concat();
        let pos = |n: &str| order.iter().position(|&r| r == id(&p, n)).unwrap();
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("main"));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("even").halt();
        b.routine("even").call("odd").ret();
        b.routine("odd").call("even").ret();
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        assert_eq!(sccs.component_of(id(&p, "even")), sccs.component_of(id(&p, "odd")));
        assert_ne!(sccs.component_of(id(&p, "main")), sccs.component_of(id(&p, "even")));
        assert!(cg.is_recursive(id(&p, "even")));
        assert!(!cg.is_recursive(id(&p, "main")));
        let stats = cg.stats();
        assert_eq!(stats.largest_component, 2);
        assert_eq!(stats.recursive_routines, 2);
    }

    #[test]
    fn self_recursion_is_recursive_but_singleton() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("rec").halt();
        b.routine("rec").call("rec").ret();
        let (p, cg) = graph_of(&b);
        assert!(cg.is_recursive(id(&p, "rec")));
        assert_eq!(cg.sccs().components().iter().filter(|c| c.len() > 1).count(), 0);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 20k-deep call chain: would blow the stack with recursive Tarjan.
        let n = 20_000;
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let r = b.routine(&format!("r{i}"));
            if i + 1 < n {
                r.call(&format!("r{}", i + 1));
            }
            if i == 0 {
                r.halt();
            } else {
                r.ret();
            }
        }
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        assert_eq!(sccs.components().len(), n);
        // Bottom-up: the leaf (r{n-1}) first, the entry last.
        assert_eq!(sccs.bottom_up()[0][0], id(&p, &format!("r{}", n - 1)));
        assert_eq!(sccs.bottom_up()[n - 1][0], id(&p, "r0"));
    }

    #[test]
    fn condensation_levels_separate_call_edges() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("even").call("lib").halt();
        b.routine("even").call("odd").call("lib").ret();
        b.routine("odd").call("even").ret();
        b.routine("lib").ret();
        b.routine("island").ret();
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        let cond = sccs.condense(&cg);

        let comp = |n: &str| sccs.component_of(id(&p, n));
        // even/odd form one component; lib and island are leaves.
        assert_eq!(comp("even"), comp("odd"));
        assert_eq!(cond.level_bottom_up(comp("lib")), 0);
        assert_eq!(cond.level_bottom_up(comp("island")), 0);
        assert_eq!(cond.level_bottom_up(comp("even")), 1);
        assert_eq!(cond.level_bottom_up(comp("main")), 2);
        assert_eq!(cond.level_top_down(comp("main")), 0);
        assert_eq!(cond.level_top_down(comp("island")), 0);
        assert_eq!(cond.level_top_down(comp("even")), 1);
        assert_eq!(cond.level_top_down(comp("lib")), 2);
        assert_eq!(cond.waves(), 3);
        assert_eq!(cond.max_wave_width(), 2);

        // Every call edge separates wave levels in both directions.
        for c in 0..sccs.components().len() {
            for &d in cond.callee_components(c) {
                assert!(cond.level_bottom_up(c) > cond.level_bottom_up(d));
                assert!(cond.level_top_down(c) < cond.level_top_down(d));
                assert!(cond.caller_components(d).contains(&c));
            }
        }
        // Waves partition the components.
        let total: usize = cond.waves_bottom_up().iter().map(Vec::len).sum();
        assert_eq!(total, sccs.components().len());
        let total: usize = cond.waves_top_down().iter().map(Vec::len).sum();
        assert_eq!(total, sccs.components().len());
    }

    #[test]
    fn condensation_drops_self_edges_and_dedups() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("rec").call("rec").halt();
        b.routine("rec").call("rec").ret();
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        let cond = sccs.condense(&cg);
        let rec = sccs.component_of(id(&p, "rec"));
        let main = sccs.component_of(id(&p, "main"));
        assert!(cond.callee_components(rec).is_empty());
        assert_eq!(cond.callee_components(main), &[rec]);
        assert_eq!(cond.caller_components(rec), &[main]);
        assert_eq!(cond.waves(), 2);
    }

    #[test]
    fn deep_chain_condensation_has_one_scc_per_wave() {
        let n = 2_000;
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let r = b.routine(&format!("r{i}"));
            if i + 1 < n {
                r.call(&format!("r{}", i + 1));
            }
            if i == 0 {
                r.halt();
            } else {
                r.ret();
            }
        }
        let (_, cg) = graph_of(&b);
        let cond = cg.sccs().condense(&cg);
        assert_eq!(cond.waves(), n);
        assert_eq!(cond.max_wave_width(), 1);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("a").halt();
        b.routine("a").ret();
        let (_, cg) = graph_of(&b);
        let s = cg.stats().to_string();
        assert!(s.contains("2 routines"));
        assert!(s.contains("1 call edges"));
    }
}
