//! # spike-callgraph
//!
//! The whole-program call graph: which routines may call which, including
//! recovered indirect targets. Spike-style interprocedural dataflow
//! converges fastest when callees are solved before callers, so the crate
//! provides Tarjan strongly-connected components and a bottom-up
//! (callees-first) component order; it also feeds the evaluation report's
//! program-structure statistics.
//!
//! # Example
//!
//! ```
//! use spike_cfg::ProgramCfg;
//! use spike_callgraph::CallGraph;
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").call("a").halt();
//! b.routine("a").call("b").ret();
//! b.routine("b").ret();
//! let program = b.build()?;
//!
//! let cg = CallGraph::build(&program, &ProgramCfg::build(&program));
//! let main = program.routine_by_name("main").unwrap();
//! let a = program.routine_by_name("a").unwrap();
//! assert_eq!(cg.callees(main), &[a]);
//!
//! // Bottom-up: b before a before main.
//! let order = cg.sccs().bottom_up().concat();
//! assert_eq!(order.len(), 3);
//! assert_eq!(program.routine(order[0]).name(), "b");
//! assert_eq!(program.routine(order[2]).name(), "main");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use spike_cfg::{CallTarget, ProgramCfg, TermKind};
use spike_isa::HeapSize;
use spike_program::{Program, RoutineId};

/// The may-call relation over a program's routines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CallGraph {
    callees: Vec<Vec<RoutineId>>,
    callers: Vec<Vec<RoutineId>>,
    /// Routines containing at least one unknown-target indirect call.
    calls_unknown: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph from a program's CFGs. Edges are deduplicated;
    /// indirect calls with recovered target lists contribute one edge per
    /// target.
    pub fn build(program: &Program, cfg: &ProgramCfg) -> CallGraph {
        let n = program.routines().len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        let mut calls_unknown = vec![false; n];

        for (ri, rcfg) in cfg.cfgs().iter().enumerate() {
            for block in rcfg.blocks() {
                let TermKind::Call { target, .. } = block.term() else {
                    continue;
                };
                let mut note = |callee: RoutineId| {
                    if !callees[ri].contains(&callee) {
                        callees[ri].push(callee);
                        callers[callee.index()].push(RoutineId::from_index(ri));
                    }
                };
                match target {
                    CallTarget::Direct(rid, _) => note(*rid),
                    CallTarget::IndirectKnown(list) => {
                        for (rid, _) in list {
                            note(*rid);
                        }
                    }
                    CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
                        calls_unknown[ri] = true;
                    }
                }
            }
        }
        CallGraph { callees, callers, calls_unknown }
    }

    /// Number of routines.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the program has no routines (never true for validated
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// The routines `id` may call (deduplicated, in first-seen order).
    pub fn callees(&self, id: RoutineId) -> &[RoutineId] {
        &self.callees[id.index()]
    }

    /// The routines that may call `id`.
    pub fn callers(&self, id: RoutineId) -> &[RoutineId] {
        &self.callers[id.index()]
    }

    /// Whether `id` makes at least one unknown-target indirect call.
    pub fn calls_unknown(&self, id: RoutineId) -> bool {
        self.calls_unknown[id.index()]
    }

    /// Whether `id` can (transitively) call itself.
    pub fn is_recursive(&self, id: RoutineId) -> bool {
        let sccs = self.sccs();
        let c = sccs.component_of(id);
        sccs.components()[c].len() > 1 || self.callees(id).contains(&id)
    }

    /// Tarjan strongly-connected components.
    pub fn sccs(&self) -> Sccs {
        let n = self.len();
        let mut state = TarjanState {
            graph: self,
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            comp_of: vec![usize::MAX; n],
            comps: Vec::new(),
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                state.visit(v);
            }
        }
        // Tarjan emits components in reverse topological order of the
        // condensation (callees before callers) — exactly bottom-up.
        Sccs { comp_of: state.comp_of, comps: state.comps }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CallGraphStats {
        let sccs = self.sccs();
        let edges: usize = self.callees.iter().map(Vec::len).sum();
        let recursive_routines = (0..self.len())
            .filter(|&i| {
                let id = RoutineId::from_index(i);
                let c = sccs.component_of(id);
                sccs.components()[c].len() > 1 || self.callees(id).contains(&id)
            })
            .count();
        CallGraphStats {
            routines: self.len(),
            edges,
            max_fanout: self.callees.iter().map(Vec::len).max().unwrap_or(0),
            recursive_routines,
            components: sccs.components().len(),
            largest_component: sccs.components().iter().map(Vec::len).max().unwrap_or(0),
            unknown_call_routines: self.calls_unknown.iter().filter(|&&b| b).count(),
        }
    }
}

impl HeapSize for CallGraph {
    fn heap_bytes(&self) -> usize {
        self.callees.heap_bytes() + self.callers.heap_bytes() + self.calls_unknown.heap_bytes()
    }
}

/// Aggregate call-graph statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallGraphStats {
    /// Routine count.
    pub routines: usize,
    /// Deduplicated call edges.
    pub edges: usize,
    /// Largest callee fan-out of any routine.
    pub max_fanout: usize,
    /// Routines that can transitively call themselves.
    pub recursive_routines: usize,
    /// Strongly-connected components.
    pub components: usize,
    /// Size of the largest component (mutual-recursion cluster).
    pub largest_component: usize,
    /// Routines making unknown-target indirect calls.
    pub unknown_call_routines: usize,
}

impl fmt::Display for CallGraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} routines, {} call edges (max fanout {}), {} recursive, \
             {} SCCs (largest {}), {} with unknown calls",
            self.routines,
            self.edges,
            self.max_fanout,
            self.recursive_routines,
            self.components,
            self.largest_component,
            self.unknown_call_routines,
        )
    }
}

/// Strongly-connected components in bottom-up order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sccs {
    comp_of: Vec<usize>,
    comps: Vec<Vec<RoutineId>>,
}

impl Sccs {
    /// The components, callees-first (reverse topological order of the
    /// condensation).
    pub fn components(&self) -> &[Vec<RoutineId>] {
        &self.comps
    }

    /// The component index of `id`.
    pub fn component_of(&self, id: RoutineId) -> usize {
        self.comp_of[id.index()]
    }

    /// Components in callees-before-callers order (an alias for
    /// [`Sccs::components`], named for intent).
    pub fn bottom_up(&self) -> &[Vec<RoutineId>] {
        &self.comps
    }
}

struct TarjanState<'a> {
    graph: &'a CallGraph,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    comp_of: Vec<usize>,
    comps: Vec<Vec<RoutineId>>,
}

impl TarjanState<'_> {
    /// Iterative Tarjan (explicit stack: recursion would overflow on
    /// million-routine call chains).
    fn visit(&mut self, root: usize) {
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        self.open(root);
        while let Some(&mut (v, ref mut next)) = call_stack.last_mut() {
            let callees = &self.graph.callees[v];
            if *next < callees.len() {
                let w = callees[*next].index();
                *next += 1;
                if self.index[w] == usize::MAX {
                    self.open(w);
                    call_stack.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
                if self.lowlink[v] == self.index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("component member on stack");
                        self.on_stack[w] = false;
                        self.comp_of[w] = self.comps.len();
                        comp.push(RoutineId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    self.comps.push(comp);
                }
            }
        }
    }

    fn open(&mut self, v: usize) {
        self.index[v] = self.next_index;
        self.lowlink[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn graph_of(b: &ProgramBuilder) -> (Program, CallGraph) {
        let p = b.build().unwrap();
        let cfg = ProgramCfg::build(&p);
        let cg = CallGraph::build(&p, &cfg);
        (p, cg)
    }

    fn id(p: &Program, name: &str) -> RoutineId {
        p.routine_by_name(name).unwrap()
    }

    #[test]
    fn edges_and_dedup() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("a").call("a").call("b").halt();
        b.routine("a").ret();
        b.routine("b").ret();
        let (p, cg) = graph_of(&b);
        assert_eq!(cg.callees(id(&p, "main")), &[id(&p, "a"), id(&p, "b")]);
        assert_eq!(cg.callers(id(&p, "a")), &[id(&p, "main")]);
        assert_eq!(cg.stats().edges, 2);
        assert!(!cg.is_empty());
    }

    #[test]
    fn indirect_known_targets_are_edges() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_known(Reg::PV, &["a", "b"]).halt();
        b.routine("a").ret();
        b.routine("b").ret();
        let (p, cg) = graph_of(&b);
        assert_eq!(cg.callees(id(&p, "main")).len(), 2);
        assert!(!cg.calls_unknown(id(&p, "main")));
    }

    #[test]
    fn unknown_calls_are_flagged_not_edges() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_unknown(Reg::PV).halt();
        let (p, cg) = graph_of(&b);
        assert!(cg.callees(id(&p, "main")).is_empty());
        assert!(cg.calls_unknown(id(&p, "main")));
        assert_eq!(cg.stats().unknown_call_routines, 1);
    }

    #[test]
    fn bottom_up_order_solves_callees_first() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("mid").halt();
        b.routine("mid").call("leaf").ret();
        b.routine("leaf").ret();
        let (p, cg) = graph_of(&b);
        let order: Vec<RoutineId> = cg.sccs().bottom_up().concat();
        let pos = |n: &str| order.iter().position(|&r| r == id(&p, n)).unwrap();
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("main"));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("even").halt();
        b.routine("even").call("odd").ret();
        b.routine("odd").call("even").ret();
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        assert_eq!(sccs.component_of(id(&p, "even")), sccs.component_of(id(&p, "odd")));
        assert_ne!(sccs.component_of(id(&p, "main")), sccs.component_of(id(&p, "even")));
        assert!(cg.is_recursive(id(&p, "even")));
        assert!(!cg.is_recursive(id(&p, "main")));
        let stats = cg.stats();
        assert_eq!(stats.largest_component, 2);
        assert_eq!(stats.recursive_routines, 2);
    }

    #[test]
    fn self_recursion_is_recursive_but_singleton() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("rec").halt();
        b.routine("rec").call("rec").ret();
        let (p, cg) = graph_of(&b);
        assert!(cg.is_recursive(id(&p, "rec")));
        assert_eq!(cg.sccs().components().iter().filter(|c| c.len() > 1).count(), 0);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 20k-deep call chain: would blow the stack with recursive Tarjan.
        let n = 20_000;
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let r = b.routine(&format!("r{i}"));
            if i + 1 < n {
                r.call(&format!("r{}", i + 1));
            }
            if i == 0 {
                r.halt();
            } else {
                r.ret();
            }
        }
        let (p, cg) = graph_of(&b);
        let sccs = cg.sccs();
        assert_eq!(sccs.components().len(), n);
        // Bottom-up: the leaf (r{n-1}) first, the entry last.
        assert_eq!(sccs.bottom_up()[0][0], id(&p, &format!("r{}", n - 1)));
        assert_eq!(sccs.bottom_up()[n - 1][0], id(&p, "r0"));
    }

    #[test]
    fn stats_display_is_informative() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("a").halt();
        b.routine("a").ret();
        let (_, cg) = graph_of(&b);
        let s = cg.stats().to_string();
        assert!(s.contains("2 routines"));
        assert!(s.contains("1 call edges"));
    }
}
