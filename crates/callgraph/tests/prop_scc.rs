//! Property tests for the SCC computation: Tarjan's answer must agree
//! with a transitive-closure oracle, and the bottom-up order must be a
//! topological order of the condensation.

// The Floyd–Warshall oracle reads clearest with explicit index loops.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use spike_callgraph::CallGraph;
use spike_cfg::ProgramCfg;
use spike_program::{Program, RoutineId};

fn graph_of(seed: u64) -> (Program, CallGraph) {
    let p = spike_synth::profile("li").expect("known benchmark");
    let program = spike_synth::generate(&p, 20.0 / p.routines as f64, seed);
    let cfg = ProgramCfg::build(&program);
    let cg = CallGraph::build(&program, &cfg);
    (program, cg)
}

/// Floyd–Warshall reachability over the call graph.
fn closure(cg: &CallGraph) -> Vec<Vec<bool>> {
    let n = cg.len();
    let mut reach = vec![vec![false; n]; n];
    for i in 0..n {
        for &c in cg.callees(RoutineId::from_index(i)) {
            reach[i][c.index()] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two routines share a component iff they are mutually reachable.
    #[test]
    fn components_match_mutual_reachability(seed in any::<u64>()) {
        let (_, cg) = graph_of(seed);
        let sccs = cg.sccs();
        let reach = closure(&cg);
        let n = cg.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let same = sccs.component_of(RoutineId::from_index(i))
                    == sccs.component_of(RoutineId::from_index(j));
                let mutual = reach[i][j] && reach[j][i];
                prop_assert_eq!(same, mutual, "routines {} and {}", i, j);
            }
        }
    }

    /// The bottom-up order is a topological order of the condensation:
    /// every call edge goes from a later component to an earlier (or the
    /// same) one.
    #[test]
    fn bottom_up_is_topological(seed in any::<u64>()) {
        let (_, cg) = graph_of(seed);
        let sccs = cg.sccs();
        for i in 0..cg.len() {
            let caller = RoutineId::from_index(i);
            for &callee in cg.callees(caller) {
                prop_assert!(
                    sccs.component_of(callee) <= sccs.component_of(caller),
                    "edge {} -> {} violates bottom-up order",
                    i,
                    callee.index()
                );
            }
        }
    }

    /// Components partition the routines.
    #[test]
    fn components_partition(seed in any::<u64>()) {
        let (_, cg) = graph_of(seed);
        let sccs = cg.sccs();
        let total: usize = sccs.components().iter().map(Vec::len).sum();
        prop_assert_eq!(total, cg.len());
        let mut seen = vec![false; cg.len()];
        for comp in sccs.components() {
            for &r in comp {
                prop_assert!(!seen[r.index()], "routine in two components");
                seen[r.index()] = true;
            }
        }
    }
}
