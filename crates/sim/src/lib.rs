//! # spike-sim
//!
//! An interpreter for the synthetic Alpha-like ISA.
//!
//! The paper validates Spike by running optimized Alpha/NT executables.
//! This crate plays that role for the reproduction: it executes a
//! [`spike_program::Program`] and reports its observable behaviour — the
//! sequence of values emitted by `putint` — so tests can check that
//! summary-driven optimizations preserve semantics.
//!
//! # Example
//!
//! ```
//! use spike_isa::{AluOp, Reg};
//! use spike_program::ProgramBuilder;
//! use spike_sim::{run, Outcome};
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main")
//!     .lda(Reg::A0, Reg::ZERO, 21)
//!     .call("double")
//!     .put_int()
//!     .halt();
//! b.routine("double")
//!     .op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
//!     .ret();
//! let program = b.build()?;
//!
//! match run(&program, 1_000) {
//!     Outcome::Halted { output, .. } => assert_eq!(output, vec![42]),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use spike_isa::{AluOp, FpOp, Instruction, MemWidth, Reg, RegSet, NUM_REGS};
use spike_program::Program;

/// Return address loaded into `ra` at startup; returning to it ends the
/// program cleanly, as the OS loader would.
pub const EXIT_ADDR: u32 = 0xFFFF_0000;

/// Initial stack pointer (byte address).
pub const STACK_TOP: i64 = 1 << 20;

/// Why execution stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Outcome {
    /// The program executed `halt` or returned from its entry routine.
    Halted {
        /// Values emitted by `putint`, in order — the program's observable
        /// behaviour.
        output: Vec<i64>,
        /// Instructions executed.
        steps: u64,
    },
    /// The step budget was exhausted. Carries the output so far.
    OutOfFuel {
        /// Values emitted before the budget ran out.
        output: Vec<i64>,
        /// Instructions executed (the budget itself, counted the same
        /// way as [`Outcome::Halted`]'s `steps` so instrumented and
        /// plain runs report identical totals).
        steps: u64,
    },
    /// Execution faulted.
    Fault(Fault),
}

impl Outcome {
    /// Instructions executed, when the run stopped cleanly (`None` for
    /// faults, which stop mid-instruction).
    pub fn steps(&self) -> Option<u64> {
        match self {
            Outcome::Halted { steps, .. } | Outcome::OutOfFuel { steps, .. } => Some(*steps),
            Outcome::Fault(_) => None,
        }
    }

    /// The output emitted before the run stopped (`None` for faults).
    pub fn output(&self) -> Option<&[i64]> {
        match self {
            Outcome::Halted { output, .. } | Outcome::OutOfFuel { output, .. } => Some(output),
            Outcome::Fault(_) => None,
        }
    }
}

/// A simulated machine fault.
///
/// Faults raised by the shadow modes carry the name of the routine whose
/// instruction faulted (resolved from the routine map at raise time), so a
/// lint-oracle failure names the routine directly instead of only a raw
/// pc.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Fault {
    /// Control transferred to an address holding no instruction.
    BadPc(u32),
    /// An instruction consumed a register no prior instruction had
    /// defined. Only raised by [`run_shadow`] / [`run_shadow_slots`]; the
    /// plain interpreter executes the same program without complaint
    /// (undefined registers read as whatever the machine happens to hold).
    UninitRead {
        /// Address of the consuming instruction.
        pc: u32,
        /// Name of the routine containing `pc`.
        routine: String,
        /// The undefined register it read.
        reg: Reg,
    },
    /// An SP-relative load read a stack slot of the current frame that no
    /// store had initialized. Only raised by [`run_shadow_slots`].
    UninitStackRead {
        /// Address of the loading instruction.
        pc: u32,
        /// Name of the routine containing `pc`.
        routine: String,
        /// The slot's byte offset relative to the frame's entry SP
        /// (negative: slots live below the SP the routine was entered
        /// with).
        offset: i64,
    },
    /// An SP-relative access landed outside the current frame — at or
    /// above the SP the routine was entered with (the caller's frame), or
    /// below the current SP (unallocated stack). Only raised by
    /// [`run_shadow_slots`].
    OutOfFrame {
        /// Address of the accessing instruction.
        pc: u32,
        /// Name of the routine containing `pc`.
        routine: String,
        /// The byte address the access computed.
        addr: i64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadPc(pc) => write!(f, "control reached non-code address {pc:#x}"),
            Fault::UninitRead { pc, routine, reg } => {
                write!(f, "read of uninitialized register {reg} at {pc:#x} in {routine}")
            }
            Fault::UninitStackRead { pc, routine, offset } => write!(
                f,
                "read of uninitialized stack slot at entry-SP{offset:+} at {pc:#x} in {routine}"
            ),
            Fault::OutOfFrame { pc, routine, addr } => write!(
                f,
                "stack access at {pc:#x} in {routine} touches {addr:#x} outside the frame"
            ),
        }
    }
}

/// The name of the routine containing `pc`, for fault messages.
fn routine_name(program: &Program, pc: u32) -> String {
    program
        .routine_containing(pc)
        .map(|rid| program.routine(rid).name().to_string())
        .unwrap_or_else(|| "<unknown>".to_string())
}

impl std::error::Error for Fault {}

/// The architectural state of the simulated machine.
#[derive(Clone, Debug)]
pub struct Machine {
    regs: [i64; NUM_REGS],
    mem: BTreeMap<i64, i64>,
    pc: u32,
    output: Vec<i64>,
    steps: u64,
}

impl Machine {
    /// Creates a machine poised at `program`'s entry routine, with `ra`
    /// pointing at [`EXIT_ADDR`] and `sp` at [`STACK_TOP`].
    pub fn new(program: &Program) -> Machine {
        let mut m = Machine {
            regs: [0; NUM_REGS],
            mem: BTreeMap::new(),
            pc: program.routine(program.entry()).addr(),
            output: Vec::new(),
            steps: 0,
        };
        m.regs[Reg::RA.index()] = EXIT_ADDR as i64;
        m.regs[Reg::SP.index()] = STACK_TOP;
        m
    }

    /// The value of `r`. Zero registers always read 0.
    pub fn reg(&self, r: Reg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Sets `r` to `v`. Writes to zero registers are discarded.
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The current program counter (word address).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Output emitted so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Executes until halt, fault, or `fuel` instructions have run.
    pub fn run(&mut self, program: &Program, fuel: u64) -> Outcome {
        for _ in 0..fuel {
            if self.pc == EXIT_ADDR {
                return Outcome::Halted { output: self.output.clone(), steps: self.steps };
            }
            let Some(&insn) = program.insn_at(self.pc) else {
                return Outcome::Fault(Fault::BadPc(self.pc));
            };
            self.steps += 1;
            let next = self.pc + 1;
            match insn {
                Instruction::Operate { op, ra, rb, rc } => {
                    let v = alu(op, self.reg(ra), self.reg(rb), self.reg(rc));
                    self.set_reg(rc, v);
                }
                Instruction::OperateImm { op, ra, imm, rc } => {
                    let v = alu(op, self.reg(ra), imm as i64, self.reg(rc));
                    self.set_reg(rc, v);
                }
                Instruction::Lda { rd, base, disp } => {
                    self.set_reg(rd, self.reg(base).wrapping_add(disp as i64));
                }
                Instruction::Ldah { rd, base, disp } => {
                    self.set_reg(rd, self.reg(base).wrapping_add((disp as i64) << 16));
                }
                Instruction::Load { width, rd, base, disp } => {
                    let addr = self.reg(base).wrapping_add(disp as i64);
                    let raw = self.mem.get(&addr).copied().unwrap_or(0);
                    let v = match width {
                        MemWidth::L => raw as i32 as i64,
                        MemWidth::Q | MemWidth::T => raw,
                    };
                    self.set_reg(rd, v);
                }
                Instruction::Store { width, rs, base, disp } => {
                    let addr = self.reg(base).wrapping_add(disp as i64);
                    let v = match width {
                        MemWidth::L => self.reg(rs) as i32 as i64,
                        MemWidth::Q | MemWidth::T => self.reg(rs),
                    };
                    self.mem.insert(addr, v);
                }
                Instruction::FpOperate { op, fa, fb, fc } => {
                    let a = f64::from_bits(self.reg(fa) as u64);
                    let b = f64::from_bits(self.reg(fb) as u64);
                    let v = match op {
                        FpOp::Add => a + b,
                        FpOp::Sub => a - b,
                        FpOp::Mul => a * b,
                        FpOp::CmpEq => {
                            if a == b {
                                2.0
                            } else {
                                0.0
                            }
                        }
                        FpOp::CmpLt => {
                            if a < b {
                                2.0
                            } else {
                                0.0
                            }
                        }
                    };
                    self.set_reg(fc, v.to_bits() as i64);
                }
                Instruction::Br { disp } => {
                    self.pc = next.wrapping_add(disp as u32);
                    continue;
                }
                Instruction::Bsr { disp } => {
                    self.set_reg(Reg::RA, next as i64);
                    self.pc = next.wrapping_add(disp as u32);
                    continue;
                }
                Instruction::CondBranch { cond, ra, disp } => {
                    if cond.eval(self.reg(ra)) {
                        self.pc = next.wrapping_add(disp as u32);
                        continue;
                    }
                }
                Instruction::Jmp { base } => {
                    self.pc = self.reg(base) as u32;
                    continue;
                }
                Instruction::Jsr { base } => {
                    let target = self.reg(base) as u32;
                    self.set_reg(Reg::RA, next as i64);
                    self.pc = target;
                    continue;
                }
                Instruction::Ret { base } => {
                    self.pc = self.reg(base) as u32;
                    continue;
                }
                Instruction::Halt => {
                    return Outcome::Halted { output: self.output.clone(), steps: self.steps };
                }
                Instruction::PutInt => {
                    self.output.push(self.reg(Reg::V0));
                }
            }
            self.pc = next;
        }
        Outcome::OutOfFuel { output: self.output.clone(), steps: self.steps }
    }
}

fn alu(op: AluOp, a: i64, b: i64, old_c: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32 & 63),
        AluOp::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        AluOp::Sra => a.wrapping_shr(b as u32 & 63),
        AluOp::CmpEq => (a == b) as i64,
        AluOp::CmpLt => (a < b) as i64,
        AluOp::CmpLe => (a <= b) as i64,
        AluOp::CmpUlt => ((a as u64) < (b as u64)) as i64,
        AluOp::CmovEq => {
            if a == 0 {
                b
            } else {
                old_c
            }
        }
        AluOp::CmovNe => {
            if a != 0 {
                b
            } else {
                old_c
            }
        }
    }
}

/// Runs `program` from a fresh [`Machine`] with the given step budget.
pub fn run(program: &Program, fuel: u64) -> Outcome {
    Machine::new(program).run(program, fuel)
}

/// The registers an instruction *consumes* as values in shadow-definedness
/// mode. This is [`Instruction::uses`] minus the data operand of a store:
/// spilling a register whose value was never computed is the universal
/// prologue idiom (callee-saved saves), and the definedness tracker treats
/// memory as always-defined anyway (unwritten addresses architecturally
/// read as zero), so only the *address* of a store must be defined.
fn shadow_uses(insn: &Instruction) -> RegSet {
    match *insn {
        Instruction::Store { base, .. } => RegSet::singleton(base),
        _ => insn.uses(),
    }
}

/// Runs `program` with per-register definedness tracking (the opt-in
/// shadow mode used as the soundness oracle for `spike-lint`).
///
/// The loader defines only `ra` and `sp`; every instruction thereafter
/// must consume only registers some earlier instruction defined, or the
/// run stops with [`Fault::UninitRead`]. Zero registers always read as a
/// defined 0. Loads always define their destination: memory in this
/// machine model is architecturally zero-initialized, so every load
/// produces a well-defined value. (The flip side is that a store/load
/// round trip launders definedness — exactly the boundary of what the
/// static checker can prove from registers alone.)
///
/// On a program that never trips the tracker, the outcome is identical to
/// [`run`] with the same fuel.
pub fn run_shadow(program: &Program, fuel: u64) -> Outcome {
    let mut m = Machine::new(program);
    let mut defined = RegSet::of(&[Reg::RA, Reg::SP, Reg::ZERO, Reg::FZERO]);
    loop {
        if m.steps() >= fuel {
            return Outcome::OutOfFuel { output: m.output().to_vec(), steps: m.steps() };
        }
        let pc = m.pc();
        if pc == EXIT_ADDR {
            return Outcome::Halted { output: m.output().to_vec(), steps: m.steps() };
        }
        let Some(&insn) = program.insn_at(pc) else {
            return Outcome::Fault(Fault::BadPc(pc));
        };
        let need = shadow_uses(&insn);
        if !need.is_subset(defined) {
            let reg = (need - defined).iter().next().expect("non-empty difference");
            return Outcome::Fault(Fault::UninitRead {
                pc,
                routine: routine_name(program, pc),
                reg,
            });
        }
        defined |= insn.defs();
        match m.run(program, 1) {
            Outcome::OutOfFuel { .. } => {} // single step executed; continue
            done => return done,
        }
    }
}

/// Runs `program` with per-register *and* per-stack-slot definedness
/// tracking — the soundness oracle for the stack lints, strictly stronger
/// than [`run_shadow`].
///
/// On top of [`run_shadow`]'s register rules, the tracker maintains a
/// shadow frame stack: the entry SP of every live activation (calls push
/// the current SP, returns pop). SP-relative accesses are checked against
/// the current frame, the byte range `[sp, entry_sp)`:
///
/// * an access at or above `entry_sp` (the caller's frame) or below the
///   current `sp` (unallocated stack) is [`Fault::OutOfFrame`];
/// * a load inside the frame from an address no store initialized since
///   the frame covered it is [`Fault::UninitStackRead`];
/// * SP adjustments (`lda sp, sp, d`) *un*define every address in the
///   region the move crossed, in both directions — freshly allocated
///   frame bytes start undefined, and deallocated bytes do not carry
///   stale definedness into a later frame at the same addresses.
///
/// Only `sp`-based loads and stores are checked: the tracker has no alias
/// analysis, so an access through a copied or derived pointer is invisible
/// to it (and equally invisible to the static stack lints, which treat
/// such routines as having an escaped frame). On the SP-disciplined
/// programs `spike-synth` generates, lint-clean implies slots-clean; see
/// DESIGN.md's oracle-boundary discussion.
///
/// On a program that trips no tracker, the outcome is identical to
/// [`run`] with the same fuel.
pub fn run_shadow_slots(program: &Program, fuel: u64) -> Outcome {
    let mut m = Machine::new(program);
    let mut defined = RegSet::of(&[Reg::RA, Reg::SP, Reg::ZERO, Reg::FZERO]);
    let mut frames: Vec<i64> = vec![STACK_TOP];
    let mut slots: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
    loop {
        if m.steps() >= fuel {
            return Outcome::OutOfFuel { output: m.output().to_vec(), steps: m.steps() };
        }
        let pc = m.pc();
        if pc == EXIT_ADDR {
            return Outcome::Halted { output: m.output().to_vec(), steps: m.steps() };
        }
        let Some(&insn) = program.insn_at(pc) else {
            return Outcome::Fault(Fault::BadPc(pc));
        };
        let need = shadow_uses(&insn);
        if !need.is_subset(defined) {
            let reg = (need - defined).iter().next().expect("non-empty difference");
            return Outcome::Fault(Fault::UninitRead {
                pc,
                routine: routine_name(program, pc),
                reg,
            });
        }
        let sp = m.reg(Reg::SP);
        let entry_sp = *frames.last().expect("frame stack never empties");
        match insn {
            Instruction::Bsr { .. } | Instruction::Jsr { .. } => frames.push(sp),
            Instruction::Ret { .. } if frames.len() > 1 => {
                frames.pop();
            }
            Instruction::Lda { rd: Reg::SP, base: Reg::SP, disp } => {
                // The bytes the move crossed change frames; definedness
                // never survives the transition in either direction.
                let new_sp = sp.wrapping_add(disp as i64);
                let (lo, hi) = (sp.min(new_sp), sp.max(new_sp));
                let crossed: Vec<i64> = slots.range(lo..hi).copied().collect();
                for a in crossed {
                    slots.remove(&a);
                }
            }
            Instruction::Load { base: Reg::SP, disp, .. } => {
                let addr = sp.wrapping_add(disp as i64);
                if addr >= entry_sp || addr < sp {
                    return Outcome::Fault(Fault::OutOfFrame {
                        pc,
                        routine: routine_name(program, pc),
                        addr,
                    });
                }
                if !slots.contains(&addr) {
                    return Outcome::Fault(Fault::UninitStackRead {
                        pc,
                        routine: routine_name(program, pc),
                        offset: addr - entry_sp,
                    });
                }
            }
            Instruction::Store { base: Reg::SP, disp, .. } => {
                let addr = sp.wrapping_add(disp as i64);
                if addr >= entry_sp || addr < sp {
                    return Outcome::Fault(Fault::OutOfFrame {
                        pc,
                        routine: routine_name(program, pc),
                        addr,
                    });
                }
                slots.insert(addr);
            }
            _ => {}
        }
        defined |= insn.defs();
        match m.run(program, 1) {
            Outcome::OutOfFuel { .. } => {} // single step executed; continue
            done => return done,
        }
    }
}

/// Dynamic execution statistics, gathered by [`run_profiled`].
///
/// `call_overhead_steps` counts the instructions that exist only to
/// maintain the calling convention: calls and returns themselves, frame
/// pointer adjustment, and saves/restores of `ra` and callee-saved
/// registers through the stack. The paper's introduction cites call
/// overhead of up to 16% of execution time as the motivation for the
/// Figure 1(d) optimization; this profile measures how much of it the
/// optimizer removed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecutionProfile {
    /// Instructions executed per routine, indexed by routine id.
    pub steps_per_routine: Vec<u64>,
    /// Times each routine was entered through a call (plus one for the
    /// entry routine's initial activation), indexed by routine id.
    pub entries_per_routine: Vec<u64>,
    /// Calls executed (`bsr` + `jsr`).
    pub calls: u64,
    /// Calling-convention maintenance instructions executed (see type
    /// docs).
    pub call_overhead_steps: u64,
    /// Total instructions executed.
    pub total_steps: u64,
    /// Lowest code address; `insn_counts[addr - code_base]` is the
    /// execution count of the instruction at `addr`.
    pub code_base: u32,
    /// Per-instruction execution counts over the whole code range
    /// (block counts are the counts at block leaders).
    pub insn_counts: Vec<u64>,
    /// Control-transfer edge counts: `(source pc, destination pc) →
    /// times taken`, recorded for branches (both outcomes), jumps,
    /// calls, and returns. A `ret` from the entry activation records its
    /// edge to [`EXIT_ADDR`].
    pub edges: BTreeMap<(u32, u32), u64>,
}

impl ExecutionProfile {
    /// Call overhead as a fraction of executed instructions.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.call_overhead_steps as f64 / self.total_steps as f64
        }
    }
}

/// Runs `program` and gathers an [`ExecutionProfile`] alongside the
/// outcome.
///
/// Instrumentation never changes the run: the outcome — output, step
/// total, and the fuel boundary — is identical to [`run`] with the same
/// budget (property-tested in `tests/prop_pgo.rs`).
pub fn run_profiled(program: &Program, fuel: u64) -> (Outcome, ExecutionProfile) {
    let callee_saved = spike_isa::CallingStandard::alpha_nt().callee_saved();
    let mut m = Machine::new(program);
    let code_base = program.routines().first().map(|r| r.addr()).unwrap_or(0);
    let code_end = program.routines().last().map(|r| r.end_addr()).unwrap_or(code_base);
    let mut profile = ExecutionProfile {
        steps_per_routine: vec![0; program.routines().len()],
        entries_per_routine: vec![0; program.routines().len()],
        code_base,
        insn_counts: vec![0; (code_end - code_base) as usize],
        ..ExecutionProfile::default()
    };
    profile.entries_per_routine[program.entry().index()] += 1;

    let outcome = loop {
        if profile.total_steps >= fuel {
            break Outcome::OutOfFuel { output: m.output().to_vec(), steps: m.steps() };
        }
        let pc = m.pc();
        if pc == EXIT_ADDR {
            break Outcome::Halted { output: m.output().to_vec(), steps: m.steps() };
        }
        let Some(&insn) = program.insn_at(pc) else {
            break Outcome::Fault(Fault::BadPc(pc));
        };
        if let Some(rid) = program.routine_containing(pc) {
            profile.steps_per_routine[rid.index()] += 1;
        }
        profile.total_steps += 1;
        profile.insn_counts[(pc - code_base) as usize] += 1;
        let overhead = match insn {
            Instruction::Bsr { .. } | Instruction::Jsr { .. } => {
                profile.calls += 1;
                true
            }
            Instruction::Ret { .. } => true,
            Instruction::Lda { rd: Reg::SP, base: Reg::SP, .. } => true,
            Instruction::Store { rs, base: Reg::SP, .. } => {
                rs == Reg::RA || callee_saved.contains(rs)
            }
            Instruction::Load { rd, base: Reg::SP, .. } => {
                rd == Reg::RA || callee_saved.contains(rd)
            }
            _ => false,
        };
        if overhead {
            profile.call_overhead_steps += 1;
        }
        match m.run(program, 1) {
            Outcome::OutOfFuel { .. } => {} // single step executed; continue
            done => break done,
        }
        // Record the control-transfer edge the step just took. The
        // fall-through of a conditional branch is an edge too; plain
        // straight-line flow is not.
        if insn.is_terminator() {
            *profile.edges.entry((pc, m.pc())).or_insert(0) += 1;
            if insn.is_call() {
                if let Some(callee) = program.routine_containing(m.pc()) {
                    profile.entries_per_routine[callee.index()] += 1;
                }
            }
        }
    };
    // A `halt` stops inside `m.run` without re-entering the loop; a
    // `ret` to the exit address records its edge before the loop's
    // EXIT_ADDR check stops the run. Nothing else to flush.
    (outcome, profile)
}

/// Runs `program` until it has emitted `k` output values, returning the
/// number of instructions that took. `None` if the run halted, faulted,
/// or exhausted `fuel` first — the program never produced `k` values.
///
/// This is the dynamic-instruction metric for non-terminating benchmark
/// profiles: two program variants are compared by the work each needs to
/// produce the same observable prefix.
pub fn steps_to_output(program: &Program, fuel: u64, k: usize) -> Option<u64> {
    if k == 0 {
        return Some(0);
    }
    let mut m = Machine::new(program);
    loop {
        if m.output().len() >= k {
            return Some(m.steps());
        }
        if m.steps() >= fuel {
            return None;
        }
        match m.run(program, 1) {
            Outcome::OutOfFuel { .. } => {}
            Outcome::Halted { output, steps } => {
                return (output.len() >= k).then_some(steps);
            }
            Outcome::Fault(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::BranchCond;
    use spike_program::ProgramBuilder;

    fn output_of(b: &ProgramBuilder) -> Vec<i64> {
        let p = b.build().unwrap();
        match run(&p, 100_000) {
            Outcome::Halted { output, .. } => output,
            other => panic!("program did not halt: {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_output() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 6)
            .lda(Reg::T1, Reg::ZERO, 7)
            .op(AluOp::Mul, Reg::T0, Reg::T1, Reg::V0)
            .put_int()
            .halt();
        assert_eq!(output_of(&b), vec![42]);
    }

    #[test]
    fn loop_counts_down() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 3)
            .label("top")
            .copy(Reg::A0, Reg::V0)
            .put_int()
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        assert_eq!(output_of(&b), vec![3, 2, 1]);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 20).call("inc").put_int().halt();
        b.routine("inc").op_imm(AluOp::Add, Reg::A0, 1, Reg::V0).ret();
        assert_eq!(output_of(&b), vec![21]);
    }

    #[test]
    fn nested_calls_save_ra_on_stack() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 5).call("outer").put_int().halt();
        b.routine("outer")
            .lda(Reg::SP, Reg::SP, -8)
            .store(Reg::RA, Reg::SP, 0)
            .call("inner")
            .load(Reg::RA, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 8)
            .op_imm(AluOp::Add, Reg::V0, 1, Reg::V0)
            .ret();
        b.routine("inner").op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0).ret();
        assert_eq!(output_of(&b), vec![11]);
    }

    #[test]
    fn memory_round_trips() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 99)
            .store(Reg::T0, Reg::SP, -16)
            .load(Reg::V0, Reg::SP, -16)
            .put_int()
            .halt();
        assert_eq!(output_of(&b), vec![99]);
    }

    #[test]
    fn ldl_truncates_to_32_bits() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 1)
            .lda(Reg::T1, Reg::ZERO, 33)
            .op(AluOp::Sll, Reg::T0, Reg::T1, Reg::T0) // bit 33: above 32-bit range
            .op_imm(AluOp::Add, Reg::T0, 7, Reg::T0)
            .insn(Instruction::Store { width: MemWidth::L, rs: Reg::T0, base: Reg::SP, disp: 0 })
            .insn(Instruction::Load { width: MemWidth::L, rd: Reg::V0, base: Reg::SP, disp: 0 })
            .put_int()
            .halt();
        assert_eq!(output_of(&b), vec![7]);
    }

    #[test]
    fn cmov_semantics() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 0) // condition: zero
            .lda(Reg::T1, Reg::ZERO, 5)
            .lda(Reg::V0, Reg::ZERO, 1)
            .op(AluOp::CmovEq, Reg::T0, Reg::T1, Reg::V0) // taken: v0 = 5
            .put_int()
            .op(AluOp::CmovNe, Reg::T0, Reg::ZERO, Reg::V0) // not taken
            .put_int()
            .halt();
        assert_eq!(output_of(&b), vec![5, 5]);
    }

    #[test]
    fn indirect_jump_through_register() {
        // Compute a label's address into t0 and jmp through it.
        let target = spike_program::BASE_ADDR as i16 + 3;
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, target)
            .insn(Instruction::Jmp { base: Reg::T0 })
            .put_int() // skipped
            .lda(Reg::V0, Reg::ZERO, 77) // the jmp target
            .put_int()
            .halt();
        assert_eq!(output_of(&b), vec![77]);
    }

    #[test]
    fn indirect_call_through_register() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 30)
            .lda(Reg::PV, Reg::ZERO, 0) // patched below
            .jsr_known(Reg::PV, &["callee"])
            .put_int()
            .halt();
        b.routine("callee").op_imm(AluOp::Add, Reg::A0, 3, Reg::V0).ret();
        // Resolve callee's address and patch the lda displacement.
        let p = b.build().unwrap();
        let callee_addr = p.routine(p.routine_by_name("callee").unwrap()).addr() as i16;
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 30)
            .lda(Reg::PV, Reg::ZERO, callee_addr)
            .jsr_known(Reg::PV, &["callee"])
            .put_int()
            .halt();
        b.routine("callee").op_imm(AluOp::Add, Reg::A0, 3, Reg::V0).ret();
        assert_eq!(output_of(&b), vec![33]);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut b = ProgramBuilder::new();
        b.routine("main").label("spin").br("spin");
        let p = b.build().unwrap();
        assert!(matches!(run(&p, 100), Outcome::OutOfFuel { .. }));
    }

    #[test]
    fn bad_pc_faults() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 5) // not a code address
            .insn(Instruction::Jmp { base: Reg::T0 })
            .halt();
        let p = b.build().unwrap();
        assert_eq!(run(&p, 100), Outcome::Fault(Fault::BadPc(5)));
    }

    #[test]
    fn entry_routine_returning_to_loader_halts() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::V0, Reg::ZERO, 1).put_int().ret();
        let p = b.build().unwrap();
        match run(&p, 100) {
            Outcome::Halted { output, .. } => assert_eq!(output, vec![1]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::ZERO, Reg::ZERO, 7).copy(Reg::ZERO, Reg::V0).put_int().halt();
        assert_eq!(output_of(&b), vec![0]);
    }

    #[test]
    fn profiled_run_matches_plain_run() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 3).call("work").put_int().halt();
        b.routine("work")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 0)
            .op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
            .load(Reg::RA, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let (outcome, profile) = run_profiled(&p, 1_000);
        assert_eq!(outcome, run(&p, 1_000));
        assert_eq!(profile.calls, 1);
        // bsr + ret + 2 sp adjusts + ra save + ra reload = 6 overhead steps.
        assert_eq!(profile.call_overhead_steps, 6);
        assert_eq!(profile.total_steps, 10);
        let work = p.routine_by_name("work").unwrap();
        assert_eq!(profile.steps_per_routine[work.index()], 6);
        assert!(profile.overhead_fraction() > 0.5);
    }

    #[test]
    fn profile_counts_callee_saved_traffic() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .store(Reg::S0, Reg::SP, -8) // callee-saved save: overhead
            .store(Reg::T0, Reg::SP, -16) // plain spill: not call overhead
            .load(Reg::S0, Reg::SP, -8)
            .halt();
        let p = b.build().unwrap();
        let (_, profile) = run_profiled(&p, 100);
        assert_eq!(profile.call_overhead_steps, 2);
        assert_eq!(profile.calls, 0);
    }

    #[test]
    fn profiled_run_respects_fuel() {
        let mut b = ProgramBuilder::new();
        b.routine("main").label("spin").br("spin");
        let p = b.build().unwrap();
        let (outcome, profile) = run_profiled(&p, 50);
        assert!(matches!(outcome, Outcome::OutOfFuel { .. }));
        assert_eq!(profile.total_steps, 50);
    }

    #[test]
    fn shadow_run_matches_plain_run_on_clean_programs() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 20).call("inc").put_int().halt();
        b.routine("inc").op_imm(AluOp::Add, Reg::A0, 1, Reg::V0).ret();
        let p = b.build().unwrap();
        assert_eq!(run_shadow(&p, 1_000), run(&p, 1_000));
    }

    #[test]
    fn shadow_run_traps_uninitialized_read() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .op_imm(AluOp::Add, Reg::T0, 1, Reg::V0) // t0 was never written
            .put_int()
            .halt();
        let p = b.build().unwrap();
        let pc = p.routine(p.entry()).addr();
        assert_eq!(
            run_shadow(&p, 100),
            Outcome::Fault(Fault::UninitRead { pc, routine: "main".into(), reg: Reg::T0 })
        );
        // The plain interpreter is oblivious.
        assert!(matches!(run(&p, 100), Outcome::Halted { .. }));
    }

    /// Fault messages must name the routine, not just the raw pc: a lint
    /// oracle failure on a 400-routine image is otherwise unactionable.
    #[test]
    fn fault_display_includes_routine_name() {
        let f = Fault::UninitRead { pc: 0x412, routine: "quantize".into(), reg: Reg::T0 };
        assert_eq!(f.to_string(), "read of uninitialized register t0 at 0x412 in quantize");
        let f = Fault::UninitStackRead { pc: 0x413, routine: "quantize".into(), offset: -16 };
        assert_eq!(
            f.to_string(),
            "read of uninitialized stack slot at entry-SP-16 at 0x413 in quantize"
        );
        let f = Fault::OutOfFrame { pc: 0x414, routine: "quantize".into(), addr: 0x10_0008 };
        assert_eq!(
            f.to_string(),
            "stack access at 0x414 in quantize touches 0x100008 outside the frame"
        );
    }

    #[test]
    fn slots_run_matches_plain_run_on_disciplined_programs() {
        // A full prologue/epilogue discipline: allocate, save, store
        // before load, deallocate. Nested one call deep so the shadow
        // frame stack pushes and pops.
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 5).call("outer").put_int().halt();
        b.routine("outer")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 0)
            .store(Reg::A0, Reg::SP, 8)
            .call("inner")
            .load(Reg::T0, Reg::SP, 8)
            .op(AluOp::Add, Reg::V0, Reg::T0, Reg::V0)
            .load(Reg::RA, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        b.routine("inner").op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        assert_eq!(run_shadow_slots(&p, 1_000), run(&p, 1_000));
        match run_shadow_slots(&p, 1_000) {
            Outcome::Halted { output, .. } => assert_eq!(output, vec![15]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn slots_run_traps_uninit_stack_read() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .load(Reg::V0, Reg::SP, 8) // never stored
            .put_int()
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let pc = p.routine(p.entry()).addr() + 1;
        assert_eq!(
            run_shadow_slots(&p, 100),
            Outcome::Fault(Fault::UninitStackRead { pc, routine: "main".into(), offset: -8 })
        );
        // The register-only shadow mode is oblivious: loads define.
        assert!(matches!(run_shadow(&p, 100), Outcome::Halted { .. }));
    }

    #[test]
    fn slots_run_traps_out_of_frame_access() {
        // A store above the entry SP lands in the caller's frame.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::ZERO, Reg::SP, 24) // entry_sp + 8
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let pc = p.routine(p.entry()).addr() + 1;
        assert_eq!(
            run_shadow_slots(&p, 100),
            Outcome::Fault(Fault::OutOfFrame { pc, routine: "main".into(), addr: STACK_TOP + 8 })
        );
        // So is a red-zone access below the current SP.
        let mut b = ProgramBuilder::new();
        b.routine("main").store(Reg::ZERO, Reg::SP, -8).halt();
        let p = b.build().unwrap();
        assert!(matches!(run_shadow_slots(&p, 100), Outcome::Fault(Fault::OutOfFrame { .. })));
    }

    #[test]
    fn slots_run_undefines_on_frame_reuse() {
        // Deallocate a frame with a defined slot, then reallocate the
        // same bytes: the stale definedness must not survive.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::ZERO, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .lda(Reg::SP, Reg::SP, -16)
            .load(Reg::V0, Reg::SP, 8) // same address, new frame: undefined
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        assert!(matches!(
            run_shadow_slots(&p, 100),
            Outcome::Fault(Fault::UninitStackRead { offset: -8, .. })
        ));
    }

    #[test]
    fn shadow_run_permits_save_restore_of_undefined_register() {
        // Spilling a callee-saved register the caller never defined is the
        // standard prologue idiom and must not trap; only a *value* use of
        // the undefined register does.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .store(Reg::S0, Reg::SP, -8) // s0 undefined: store data is exempt
            .load(Reg::S0, Reg::SP, -8) // load defines s0
            .copy(Reg::S0, Reg::V0) // now a legal value use
            .put_int()
            .halt();
        let p = b.build().unwrap();
        assert!(matches!(run_shadow(&p, 100), Outcome::Halted { .. }));
    }

    #[test]
    fn shadow_run_traps_undefined_branch_condition() {
        let mut b = ProgramBuilder::new();
        b.routine("main").cond(BranchCond::Eq, Reg::T2, "out").label("out").halt();
        let p = b.build().unwrap();
        match run_shadow(&p, 100) {
            Outcome::Fault(Fault::UninitRead { reg, .. }) => assert_eq!(reg, Reg::T2),
            other => panic!("expected uninit trap, got {other:?}"),
        }
    }

    #[test]
    fn fp_operations_compute() {
        // 2.0 stored via integer bit pattern is awkward; build 0.0 + 0.0
        // and compare equal → 2.0 truth value → compare again.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .insn(Instruction::FpOperate {
                op: FpOp::CmpEq,
                fa: Reg::FZERO,
                fb: Reg::FZERO,
                fc: Reg::fp(0),
            })
            // f0 == 2.0 now; f0 < f0 → 0.0
            .insn(Instruction::FpOperate {
                op: FpOp::CmpLt,
                fa: Reg::fp(0),
                fb: Reg::fp(0),
                fc: Reg::fp(1),
            })
            .halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(&p, 100);
        assert_eq!(f64::from_bits(m.reg(Reg::fp(0)) as u64), 2.0);
        assert_eq!(f64::from_bits(m.reg(Reg::fp(1)) as u64), 0.0);
    }
}
