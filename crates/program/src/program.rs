//! The validated whole-program container.

use std::collections::BTreeMap;
use std::fmt;

use spike_isa::{HeapSize, Instruction};

use crate::routine::{Routine, RoutineId};

/// Targets of an indirect call site (§3.5 of the paper).
///
/// A post-link optimizer can sometimes recover the possible targets of a
/// `jsr` (e.g. from relocation entries or compiler-provided side tables);
/// otherwise it must fall back to calling-standard assumptions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IndirectTargets {
    /// The target set could not be determined; the analysis assumes the
    /// call obeys the calling standard.
    Unknown,
    /// The call targets exactly one of these routine entry addresses.
    Known(Vec<u32>),
    /// The targets are outside the program, but the compiler or linker
    /// supplied the exact register effects (§3.5's suggested extension):
    /// the registers the call may read, must write, and may overwrite.
    Hinted {
        /// Registers the call may read (`call-used`).
        used: spike_isa::RegSet,
        /// Registers the call must write (`call-defined`).
        defined: spike_isa::RegSet,
        /// Registers the call may overwrite (`call-killed`).
        killed: spike_isa::RegSet,
    },
}

impl HeapSize for IndirectTargets {
    fn heap_bytes(&self) -> usize {
        match self {
            IndirectTargets::Unknown | IndirectTargets::Hinted { .. } => 0,
            IndirectTargets::Known(v) => v.heap_bytes(),
        }
    }
}

/// Error produced when assembling or validating a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// The program has no routines.
    Empty,
    /// Two routines overlap or are out of layout order.
    BadLayout { routine: String },
    /// A branch displacement leaves its routine.
    BranchEscapesRoutine { routine: String, addr: u32, target: u32 },
    /// A direct call does not land on a routine entrance.
    CallToNonEntry { routine: String, addr: u32, target: u32 },
    /// A jump-table target is not an instruction address inside the jump's
    /// routine.
    BadJumpTableTarget { addr: u32, target: u32 },
    /// An indirect call's known target is not a routine entrance.
    BadIndirectTarget { addr: u32, target: u32 },
    /// A jump table or indirect-target record points at an address holding
    /// no instruction of the right kind.
    MisplacedAuxInfo { addr: u32 },
    /// A routine's last instruction can fall through past the routine end.
    FallsThroughEnd { routine: String },
    /// An SP-relative `Load`/`Store` displacement is not a multiple of its
    /// access size, so the access straddles the natural slot grid.
    MisalignedStackAccess { routine: String, addr: u32, disp: i16, size: u8 },
    /// The entry routine id is out of range.
    BadEntry,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program contains no routines"),
            ProgramError::BadLayout { routine } => {
                write!(f, "routine {routine} overlaps another routine or is out of order")
            }
            ProgramError::BranchEscapesRoutine { routine, addr, target } => write!(
                f,
                "branch at {addr:#x} in {routine} targets {target:#x} outside the routine"
            ),
            ProgramError::CallToNonEntry { routine, addr, target } => write!(
                f,
                "call at {addr:#x} in {routine} targets {target:#x} which is not a routine entrance"
            ),
            ProgramError::BadJumpTableTarget { addr, target } => write!(
                f,
                "jump table at {addr:#x} has target {target:#x} outside the jump's routine"
            ),
            ProgramError::BadIndirectTarget { addr, target } => write!(
                f,
                "indirect call at {addr:#x} lists target {target:#x} which is not a routine entrance"
            ),
            ProgramError::MisplacedAuxInfo { addr } => write!(
                f,
                "auxiliary control-flow info at {addr:#x} does not match an instruction"
            ),
            ProgramError::FallsThroughEnd { routine } => {
                write!(f, "routine {routine} can fall through past its last instruction")
            }
            ProgramError::MisalignedStackAccess { routine, addr, disp, size } => write!(
                f,
                "stack access at {addr:#x} in {routine} has displacement {disp} which is not a \
                 multiple of its {size}-byte access size"
            ),
            ProgramError::BadEntry => write!(f, "program entry routine does not exist"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated whole program: routines in layout order plus the auxiliary
/// control-flow information a post-link optimizer extracts from the image.
///
/// Invariants established by [`Program::new`]:
///
/// * routines are laid out at strictly increasing, non-overlapping word
///   addresses;
/// * every branch and direct call displacement resolves inside the program
///   (branches stay within their routine; calls land on routine entrances);
/// * every jump table is attached to a `jmp` instruction and its targets
///   lie inside that routine; every known indirect-target list is attached
///   to a `jsr` and lists routine entrances;
/// * no routine falls through past its end: every routine's last
///   instruction transfers control unconditionally (`br`, `jmp`, `ret`,
///   or `halt`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    routines: Vec<Routine>,
    jump_tables: BTreeMap<u32, Vec<u32>>,
    indirect_calls: BTreeMap<u32, IndirectTargets>,
    /// §3.5 extension: for an indirect jump with no recovered table, the
    /// compiler-provided set of registers live at its (unknown) target.
    jump_hints: BTreeMap<u32, spike_isa::RegSet>,
    /// Address-materialization records: instruction address → the word
    /// address its immediate encodes. A post-link rewriter must update
    /// these immediates when code moves, exactly like linker relocations.
    relocations: BTreeMap<u32, u32>,
    entry: RoutineId,
    /// Map from entry address to (routine, entry index) for O(log n) call
    /// resolution.
    entry_index: BTreeMap<u32, (RoutineId, usize)>,
}

impl Program {
    /// Assembles and validates a program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violated invariant;
    /// see the type-level documentation for the full list.
    pub fn new(
        routines: Vec<Routine>,
        jump_tables: BTreeMap<u32, Vec<u32>>,
        indirect_calls: BTreeMap<u32, IndirectTargets>,
        jump_hints: BTreeMap<u32, spike_isa::RegSet>,
        relocations: BTreeMap<u32, u32>,
        entry: RoutineId,
    ) -> Result<Program, ProgramError> {
        if routines.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entry.index() >= routines.len() {
            return Err(ProgramError::BadEntry);
        }
        for r in &routines {
            // A routine whose address range wraps past `u32::MAX` has no
            // coherent layout, and every downstream `addr + offset`
            // computation (`end_addr`, instruction and entry addresses)
            // assumes the whole routine fits. Images are untrusted input,
            // so reject the wrap here instead of overflowing below.
            let fits = u32::try_from(r.len()).ok().and_then(|l| r.addr().checked_add(l));
            if fits.is_none() {
                return Err(ProgramError::BadLayout { routine: r.name().to_string() });
            }
        }
        for w in routines.windows(2) {
            if w[1].addr() < w[0].end_addr() {
                return Err(ProgramError::BadLayout { routine: w[1].name().to_string() });
            }
        }

        let mut entry_index = BTreeMap::new();
        for (ri, r) in routines.iter().enumerate() {
            for (ei, addr) in r.entry_addrs().enumerate() {
                entry_index.insert(addr, (RoutineId::from_index(ri), ei));
            }
        }

        let program = Program {
            routines,
            jump_tables,
            indirect_calls,
            jump_hints,
            relocations,
            entry,
            entry_index,
        };
        program.validate()?;
        Ok(program)
    }

    fn validate(&self) -> Result<(), ProgramError> {
        for r in &self.routines {
            // Execution must never run off the end of a routine: the last
            // instruction has to transfer control unconditionally. A
            // trailing conditional branch, call, or plain instruction
            // would fall through past the end, and the CFG builder
            // (`RoutineCfg::build_structure`) relies on this invariant
            // when it resolves fall-through and call-return successors.
            match r.insns().last() {
                Some(
                    Instruction::Br { .. }
                    | Instruction::Jmp { .. }
                    | Instruction::Ret { .. }
                    | Instruction::Halt,
                ) => {}
                _ => {
                    return Err(ProgramError::FallsThroughEnd { routine: r.name().to_string() });
                }
            }
            for (i, insn) in r.insns().iter().enumerate() {
                let addr = r.addr() + i as u32;
                match *insn {
                    Instruction::Br { disp } | Instruction::CondBranch { disp, .. } => {
                        let target = addr.wrapping_add(1).wrapping_add(disp as u32);
                        if !r.contains_addr(target) {
                            return Err(ProgramError::BranchEscapesRoutine {
                                routine: r.name().to_string(),
                                addr,
                                target,
                            });
                        }
                    }
                    Instruction::Bsr { disp } => {
                        let target = addr.wrapping_add(1).wrapping_add(disp as u32);
                        if !self.entry_index.contains_key(&target) {
                            return Err(ProgramError::CallToNonEntry {
                                routine: r.name().to_string(),
                                addr,
                                target,
                            });
                        }
                    }
                    // The stack-slot model keys frame slots by
                    // `(SP-relative offset, width)`; a displacement off
                    // the natural grid would let two accesses overlap
                    // without sharing a key, so reject it at load time
                    // like the other malformed-image shapes.
                    Instruction::Load { width, base, disp, .. }
                    | Instruction::Store { width, base, disp, .. }
                        if base == spike_isa::Reg::SP && (disp as i64) % width.bytes() != 0 =>
                    {
                        return Err(ProgramError::MisalignedStackAccess {
                            routine: r.name().to_string(),
                            addr,
                            disp,
                            size: width.bytes() as u8,
                        });
                    }
                    _ => {}
                }
            }
        }
        for (&addr, targets) in &self.jump_tables {
            let Some(rid) = self.routine_containing(addr) else {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            };
            let r = self.routine(rid);
            if !matches!(r.insn_at(addr), Some(Instruction::Jmp { .. })) {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            }
            for &t in targets {
                if !r.contains_addr(t) {
                    return Err(ProgramError::BadJumpTableTarget { addr, target: t });
                }
            }
        }
        for (&addr, targets) in &self.indirect_calls {
            let Some(rid) = self.routine_containing(addr) else {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            };
            if !matches!(self.routine(rid).insn_at(addr), Some(Instruction::Jsr { .. })) {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            }
            if let IndirectTargets::Known(list) = targets {
                for &t in list {
                    if !self.entry_index.contains_key(&t) {
                        return Err(ProgramError::BadIndirectTarget { addr, target: t });
                    }
                }
            }
        }
        for &addr in self.jump_hints.keys() {
            let is_unhinted_jmp = matches!(self.insn_at(addr), Some(Instruction::Jmp { .. }))
                && !self.jump_tables.contains_key(&addr);
            if !is_unhinted_jmp {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            }
        }
        for (&addr, &target) in &self.relocations {
            let ok = match self.insn_at(addr) {
                Some(&Instruction::Lda { base, disp, .. }) => {
                    base == spike_isa::Reg::ZERO && disp as i64 == target as i64
                }
                _ => false,
            };
            if !ok {
                return Err(ProgramError::MisplacedAuxInfo { addr });
            }
        }
        Ok(())
    }

    /// The routines in layout order.
    #[inline]
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// The routine with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[inline]
    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.index()]
    }

    /// Iterates over `(id, routine)` pairs in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (RoutineId, &Routine)> {
        self.routines.iter().enumerate().map(|(i, r)| (RoutineId::from_index(i), r))
    }

    /// The program's entry routine (where execution starts).
    #[inline]
    pub fn entry(&self) -> RoutineId {
        self.entry
    }

    /// Looks up a routine by symbol name (linear scan).
    pub fn routine_by_name(&self, name: &str) -> Option<RoutineId> {
        self.routines.iter().position(|r| r.name() == name).map(RoutineId::from_index)
    }

    /// The routine whose address range contains `addr`.
    pub fn routine_containing(&self, addr: u32) -> Option<RoutineId> {
        let idx = match self.routines.binary_search_by_key(&addr, Routine::addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let r = &self.routines[idx];
        r.contains_addr(addr).then(|| RoutineId::from_index(idx))
    }

    /// Resolves an entrance address to `(routine, entry index)`.
    pub fn entry_at(&self, addr: u32) -> Option<(RoutineId, usize)> {
        self.entry_index.get(&addr).copied()
    }

    /// Resolves the target of the direct call at `addr` (a `bsr`).
    pub fn direct_call_target(&self, addr: u32) -> Option<(RoutineId, usize)> {
        let rid = self.routine_containing(addr)?;
        match self.routine(rid).insn_at(addr) {
            Some(&Instruction::Bsr { disp }) => {
                self.entry_at(addr.wrapping_add(1).wrapping_add(disp as u32))
            }
            _ => None,
        }
    }

    /// The extracted jump table for the `jmp` at `addr`, if any.
    pub fn jump_table(&self, addr: u32) -> Option<&[u32]> {
        self.jump_tables.get(&addr).map(Vec::as_slice)
    }

    /// All jump tables, keyed by the address of their `jmp` instruction.
    #[inline]
    pub fn jump_tables(&self) -> &BTreeMap<u32, Vec<u32>> {
        &self.jump_tables
    }

    /// Target information for the indirect call (`jsr`) at `addr`.
    ///
    /// Returns [`IndirectTargets::Unknown`] for a `jsr` with no recorded
    /// side information.
    pub fn indirect_call_targets(&self, addr: u32) -> &IndirectTargets {
        self.indirect_calls.get(&addr).unwrap_or(&IndirectTargets::Unknown)
    }

    /// All recorded indirect-call target lists.
    #[inline]
    pub fn indirect_calls(&self) -> &BTreeMap<u32, IndirectTargets> {
        &self.indirect_calls
    }

    /// Address-materialization relocations: instruction address → the word
    /// address whose value the instruction's immediate encodes.
    #[inline]
    pub fn relocations(&self) -> &BTreeMap<u32, u32> {
        &self.relocations
    }

    /// The compiler-provided live-register hint for the unknown-target
    /// jump at `addr` (§3.5 extension), if any.
    pub fn jump_hint(&self, addr: u32) -> Option<spike_isa::RegSet> {
        self.jump_hints.get(&addr).copied()
    }

    /// All jump hints, keyed by the address of their `jmp` instruction.
    #[inline]
    pub fn jump_hints(&self) -> &BTreeMap<u32, spike_isa::RegSet> {
        &self.jump_hints
    }

    /// The instruction at word address `addr`.
    pub fn insn_at(&self, addr: u32) -> Option<&Instruction> {
        let rid = self.routine_containing(addr)?;
        self.routine(rid).insn_at(addr)
    }

    /// Total instruction count across all routines.
    pub fn total_instructions(&self) -> usize {
        self.routines.iter().map(Routine::len).sum()
    }
}

impl HeapSize for Program {
    fn heap_bytes(&self) -> usize {
        self.routines.heap_bytes()
            + self.jump_tables.heap_bytes()
            + self.indirect_calls.heap_bytes()
            + self.jump_hints.heap_bytes()
            + self.relocations.heap_bytes()
            + self.entry_index.heap_bytes()
    }
}

impl HeapSize for RoutineId {
    fn heap_bytes(&self) -> usize {
        0
    }
}

spike_isa::impl_clone_exact_for_copy!(RoutineId);

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.routines {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use spike_isa::{BranchCond, Reg};

    fn two_routine_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("callee").halt();
        b.routine("callee").def(Reg::V0).ret();
        b.build().unwrap()
    }

    #[test]
    fn wrapping_address_ranges_are_rejected_not_overflowed() {
        // A routine whose body runs past u32::MAX (only constructible
        // from a corrupt image or by hand) must be a BadLayout error, not
        // an arithmetic overflow inside validation.
        let r = Routine::new(
            "edge",
            u32::MAX,
            vec![Instruction::Halt, Instruction::Halt],
            vec![0],
            false,
        );
        let err = Program::new(
            vec![r],
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            RoutineId::from_index(0),
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::BadLayout { .. }), "{err:?}");
    }

    #[test]
    fn lookup_by_name_and_address() {
        let p = two_routine_program();
        let main = p.routine_by_name("main").unwrap();
        let callee = p.routine_by_name("callee").unwrap();
        assert_eq!(p.entry(), main);
        assert_eq!(p.routine(main).name(), "main");
        assert_eq!(p.routine_containing(p.routine(callee).addr()), Some(callee));
        assert_eq!(p.routine_containing(p.routine(callee).end_addr()), None);
        assert_eq!(p.routine_by_name("nope"), None);
    }

    #[test]
    fn direct_call_resolves_to_entry() {
        let p = two_routine_program();
        let main = p.routine_by_name("main").unwrap();
        let callee = p.routine_by_name("callee").unwrap();
        let call_addr = p.routine(main).addr() + 1;
        assert_eq!(p.direct_call_target(call_addr), Some((callee, 0)));
        // Not a call instruction.
        assert_eq!(p.direct_call_target(p.routine(main).addr()), None);
    }

    #[test]
    fn total_instructions_sums_routines() {
        let p = two_routine_program();
        assert_eq!(p.total_instructions(), 5);
    }

    #[test]
    fn rejects_branch_escaping_routine() {
        // Hand-assemble a routine whose branch leaves its body.
        let r = Routine::new(
            "bad",
            0x400,
            vec![
                Instruction::CondBranch { cond: BranchCond::Eq, ra: Reg::T0, disp: 100 },
                Instruction::Ret { base: Reg::RA },
            ],
            vec![0],
            false,
        );
        let err = Program::new(
            vec![r],
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            RoutineId::from_index(0),
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::BranchEscapesRoutine { .. }));
    }

    #[test]
    fn rejects_overlapping_layout() {
        let a = Routine::new("a", 0x400, vec![Instruction::Ret { base: Reg::RA }], vec![0], false);
        let b = Routine::new("b", 0x400, vec![Instruction::Ret { base: Reg::RA }], vec![0], false);
        let err = Program::new(
            vec![a, b],
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            RoutineId::from_index(0),
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::BadLayout { .. }));
    }

    #[test]
    fn rejects_empty_program() {
        let err = Program::new(
            Vec::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            RoutineId::from_index(0),
        )
        .unwrap_err();
        assert_eq!(err, ProgramError::Empty);
    }

    #[test]
    fn unknown_indirect_default() {
        let p = two_routine_program();
        assert_eq!(p.indirect_call_targets(0xDEAD), &IndirectTargets::Unknown);
    }

    /// Regression: `Program::new` used to accept routines whose last
    /// instruction falls through past the routine end. `ProgramBuilder`
    /// always rejected the shape, but direct `Program::new` callers (the
    /// rewriter, the image loader) could slip it through, and the CFG
    /// builder then either panicked ("offset N is not a block leader")
    /// or produced a call block with `return_to: None`, breaking the
    /// `cfg_structure_is_consistent` property.
    #[test]
    fn rejects_trailing_fall_through() {
        use spike_isa::AluOp;
        let one = |insns| {
            Program::new(
                vec![Routine::new("f", 0x400, insns, vec![0], false)],
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
                RoutineId::from_index(0),
            )
        };

        // A plain instruction at the end falls through.
        let err = one(vec![Instruction::Operate {
            op: AluOp::Add,
            ra: Reg::A0,
            rb: Reg::A1,
            rc: Reg::V0,
        }])
        .unwrap_err();
        assert_eq!(err, ProgramError::FallsThroughEnd { routine: "f".into() });

        // So does the not-taken side of a trailing conditional branch,
        // even when the taken side stays inside the routine.
        let err = one(vec![
            Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::V0 },
            Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::V0, disp: -2 },
        ])
        .unwrap_err();
        assert_eq!(err, ProgramError::FallsThroughEnd { routine: "f".into() });

        // Unconditional control transfers at the end are fine.
        assert!(one(vec![Instruction::Ret { base: Reg::RA }]).is_ok());
        assert!(one(vec![Instruction::Halt]).is_ok());
        assert!(one(vec![
            Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::V0 },
            Instruction::Br { disp: -2 },
        ])
        .is_ok());
    }

    /// SP-relative memory traffic must stay on the natural slot grid:
    /// a `stq`/`ldq` displacement that is not a multiple of 8 (or 4 for
    /// `ldl`/`stl`) would alias two different `(offset, width)` slot keys.
    #[test]
    fn rejects_misaligned_sp_relative_access() {
        use spike_isa::MemWidth;
        let one = |insns| {
            Program::new(
                vec![Routine::new("f", 0x400, insns, vec![0], false)],
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
                RoutineId::from_index(0),
            )
        };

        let err = one(vec![
            Instruction::Store { width: MemWidth::Q, rs: Reg::T0, base: Reg::SP, disp: -12 },
            Instruction::Ret { base: Reg::RA },
        ])
        .unwrap_err();
        assert_eq!(
            err,
            ProgramError::MisalignedStackAccess {
                routine: "f".into(),
                addr: 0x400,
                disp: -12,
                size: 8
            }
        );

        let err = one(vec![
            Instruction::Load { width: MemWidth::L, rd: Reg::T0, base: Reg::SP, disp: 6 },
            Instruction::Ret { base: Reg::RA },
        ])
        .unwrap_err();
        assert!(matches!(err, ProgramError::MisalignedStackAccess { size: 4, .. }), "{err:?}");

        // Aligned SP accesses and misaligned non-SP accesses are fine:
        // only the stack-slot grid is a program invariant.
        assert!(one(vec![
            Instruction::Store { width: MemWidth::Q, rs: Reg::T0, base: Reg::SP, disp: -16 },
            Instruction::Load { width: MemWidth::L, rd: Reg::T0, base: Reg::SP, disp: 4 },
            Instruction::Load { width: MemWidth::Q, rd: Reg::T0, base: Reg::A0, disp: 3 },
            Instruction::Ret { base: Reg::RA },
        ])
        .is_ok());
    }

    /// Companion to [`rejects_trailing_fall_through`]: a call expects
    /// execution to resume at the next address, so it cannot be a
    /// routine's last instruction either.
    #[test]
    fn rejects_trailing_call() {
        let main = Routine::new("main", 0x400, vec![Instruction::Bsr { disp: 0 }], vec![0], true);
        let f = Routine::new("f", 0x401, vec![Instruction::Ret { base: Reg::RA }], vec![0], false);
        let err = Program::new(
            vec![main, f],
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            BTreeMap::new(),
            RoutineId::from_index(0),
        )
        .unwrap_err();
        assert_eq!(err, ProgramError::FallsThroughEnd { routine: "main".into() });
    }
}
