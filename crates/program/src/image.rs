//! The executable image format: writer and loader.
//!
//! Spike consumes linked executables. This module defines a compact binary
//! image for synthetic programs — a header, a symbol table describing each
//! routine (name, address, entrances, export flag), the encoded instruction
//! words, the jump tables, and the optional indirect-call target records
//! that §3.5 of the paper suggests a compiler or linker could provide.
//! Loading an image decodes every instruction word and re-validates all
//! whole-program invariants.

use std::collections::BTreeMap;
use std::fmt;

use spike_isa::{DecodeError, Instruction};

use crate::program::{IndirectTargets, Program, ProgramError};
use crate::routine::{Routine, RoutineId};

const MAGIC: u32 = 0x53504B45; // "SPKE"
const VERSION: u32 = 1;

/// Error produced by [`Program::from_image`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// The image ends before a field it promises.
    Truncated,
    /// The magic number is wrong.
    BadMagic(u32),
    /// The format version is unsupported.
    BadVersion(u32),
    /// A routine name is not valid UTF-8.
    BadName,
    /// An instruction word failed to decode.
    Decode { addr: u32, source: DecodeError },
    /// The decoded program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image is truncated"),
            ImageError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::BadName => write!(f, "routine name is not valid utf-8"),
            ImageError::Decode { addr, source } => {
                write!(f, "undecodable instruction at {addr:#x}: {source}")
            }
            ImageError::Invalid(e) => write!(f, "image contains an invalid program: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Decode { source, .. } => Some(source),
            ImageError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for ImageError {
    fn from(e: ProgramError) -> ImageError {
        ImageError::Invalid(e)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a count field, bounding it by the bytes that remain so a
    /// corrupt length cannot trigger a huge allocation.
    fn count(&mut self, elem_size: usize) -> Result<usize, ImageError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.bytes.len() - self.pos {
            return Err(ImageError::Truncated);
        }
        Ok(n)
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Program {
    /// Serializes the program into a flat executable image.
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.total_instructions() * 4);
        push_u32(&mut out, MAGIC);
        push_u32(&mut out, VERSION);
        push_u32(&mut out, self.entry().index() as u32);
        push_u32(&mut out, self.routines().len() as u32);
        for r in self.routines() {
            push_u16(&mut out, r.name().len() as u16);
            out.extend_from_slice(r.name().as_bytes());
            push_u32(&mut out, r.addr());
            push_u32(&mut out, r.len() as u32);
            push_u32(&mut out, r.exported() as u32);
            push_u32(&mut out, r.entry_offsets().len() as u32);
            for &o in r.entry_offsets() {
                push_u32(&mut out, o);
            }
            for insn in r.insns() {
                push_u32(&mut out, insn.encode());
            }
        }
        push_u32(&mut out, self.jump_tables().len() as u32);
        for (&addr, targets) in self.jump_tables() {
            push_u32(&mut out, addr);
            push_u32(&mut out, targets.len() as u32);
            for &t in targets {
                push_u32(&mut out, t);
            }
        }
        push_u32(&mut out, self.indirect_calls().len() as u32);
        for (&addr, targets) in self.indirect_calls() {
            push_u32(&mut out, addr);
            match targets {
                IndirectTargets::Unknown => out.push(0),
                IndirectTargets::Known(list) => {
                    out.push(1);
                    push_u32(&mut out, list.len() as u32);
                    for &t in list {
                        push_u32(&mut out, t);
                    }
                }
                IndirectTargets::Hinted { used, defined, killed } => {
                    out.push(2);
                    push_u64(&mut out, used.bits());
                    push_u64(&mut out, defined.bits());
                    push_u64(&mut out, killed.bits());
                }
            }
        }
        push_u32(&mut out, self.jump_hints().len() as u32);
        for (&addr, live) in self.jump_hints() {
            push_u32(&mut out, addr);
            push_u64(&mut out, live.bits());
        }
        push_u32(&mut out, self.relocations().len() as u32);
        for (&addr, &target) in self.relocations() {
            push_u32(&mut out, addr);
            push_u32(&mut out, target);
        }
        out
    }

    /// Loads a program from an executable image, decoding every
    /// instruction word and re-validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] for structural corruption, undecodable
    /// instruction words, or validation failures of the decoded program.
    pub fn from_image(bytes: &[u8]) -> Result<Program, ImageError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(ImageError::BadMagic(magic));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let entry = RoutineId::from_index(r.u32()? as usize);
        let n_routines = r.count(15)?; // name_len + addr + len + flags + n_entries minimum

        let mut routines = Vec::with_capacity(n_routines);
        for _ in 0..n_routines {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| ImageError::BadName)?
                .to_string();
            let addr = r.u32()?;
            let n_insns = r.count(4)?;
            let flags = r.u32()?;
            let n_entries = r.count(4)?;
            let mut entry_offsets = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                entry_offsets.push(r.u32()?);
            }
            let mut insns = Vec::with_capacity(n_insns);
            for i in 0..n_insns {
                let word = r.u32()?;
                // `addr` is still unvalidated image data here; wrap rather
                // than overflow when computing the diagnostic address.
                let insn = Instruction::decode(word).map_err(|source| ImageError::Decode {
                    addr: addr.wrapping_add(i as u32),
                    source,
                })?;
                insns.push(insn);
            }
            if insns.is_empty() || entry_offsets.first() != Some(&0) {
                return Err(ImageError::Invalid(ProgramError::BadLayout { routine: name }));
            }
            if !entry_offsets.windows(2).all(|w| w[0] < w[1])
                || entry_offsets.iter().any(|&o| o as usize >= insns.len())
            {
                return Err(ImageError::Invalid(ProgramError::BadLayout { routine: name }));
            }
            routines.push(Routine::new(name, addr, insns, entry_offsets, flags & 1 != 0));
        }

        let n_tables = r.count(8)?;
        let mut jump_tables = BTreeMap::new();
        for _ in 0..n_tables {
            let addr = r.u32()?;
            let n = r.count(4)?;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push(r.u32()?);
            }
            jump_tables.insert(addr, targets);
        }

        let n_indirect = r.count(5)?;
        let mut indirect_calls = BTreeMap::new();
        for _ in 0..n_indirect {
            let addr = r.u32()?;
            let t = match r.u8()? {
                0 => IndirectTargets::Unknown,
                2 => IndirectTargets::Hinted {
                    used: spike_isa::RegSet::from_bits(r.u64()?),
                    defined: spike_isa::RegSet::from_bits(r.u64()?),
                    killed: spike_isa::RegSet::from_bits(r.u64()?),
                },
                _ => {
                    let n = r.count(4)?;
                    let mut list = Vec::with_capacity(n);
                    for _ in 0..n {
                        list.push(r.u32()?);
                    }
                    IndirectTargets::Known(list)
                }
            };
            indirect_calls.insert(addr, t);
        }

        let n_hints = r.count(12)?;
        let mut jump_hints = BTreeMap::new();
        for _ in 0..n_hints {
            let addr = r.u32()?;
            jump_hints.insert(addr, spike_isa::RegSet::from_bits(r.u64()?));
        }

        let n_relocs = r.count(8)?;
        let mut relocations = BTreeMap::new();
        for _ in 0..n_relocs {
            let addr = r.u32()?;
            let target = r.u32()?;
            relocations.insert(addr, target);
        }

        Ok(Program::new(routines, jump_tables, indirect_calls, jump_hints, relocations, entry)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use spike_isa::{BranchCond, Reg};

    fn rich_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .label("loop")
            .op_imm(spike_isa::AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "loop")
            .call("helper")
            .switch(Reg::T0, &["a", "b"])
            .label("a")
            .br("out")
            .label("b")
            .def(Reg::T3)
            .label("out")
            .jsr_known(Reg::PV, &["helper"])
            .jsr_unknown(Reg::PV)
            .halt();
        b.routine("helper").export().def(Reg::V0).label("alt").alt_entry("alt").ret();
        b.build().unwrap()
    }

    #[test]
    fn image_round_trips() {
        let p = rich_program();
        let image = p.to_image();
        let loaded = Program::from_image(&image).unwrap();
        assert_eq!(loaded, p);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let p = rich_program();
        let mut image = p.to_image();
        image[0] ^= 0xFF;
        assert!(matches!(Program::from_image(&image), Err(ImageError::BadMagic(_))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let p = rich_program();
        let mut image = p.to_image();
        image[4] = 99;
        assert!(matches!(Program::from_image(&image), Err(ImageError::BadVersion(99))));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let image = rich_program().to_image();
        for len in 0..image.len() {
            let err = Program::from_image(&image[..len]).unwrap_err();
            assert!(
                matches!(err, ImageError::Truncated | ImageError::BadName),
                "unexpected error at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_instruction_word_is_reported_with_address() {
        let p = rich_program();
        let mut image = p.to_image();
        // Find the first code word of "main" (encoded def A0 = lda a0,1(zero))
        let needle = spike_isa::Instruction::Lda { rd: Reg::A0, base: Reg::ZERO, disp: 1 }
            .encode()
            .to_le_bytes();
        let pos = image.windows(4).position(|w| w == needle).expect("code word present");
        // Opcode 0x3 is unassigned.
        image[pos..pos + 4].copy_from_slice(&(0x3u32 << 26).to_le_bytes());
        match Program::from_image(&image) {
            Err(ImageError::Decode { addr, .. }) => assert_eq!(addr, crate::BASE_ADDR),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn flipped_bits_never_panic() {
        // Robustness sweep: flipping any single byte must produce either a
        // clean error or a valid (possibly different) program.
        let image = rich_program().to_image();
        for i in 0..image.len() {
            let mut m = image.clone();
            m[i] ^= 0x41;
            let _ = Program::from_image(&m);
        }
    }
}
