//! Post-link program rewriting: delete instructions and relink.
//!
//! Spike's optimizations delete instructions from a linked executable,
//! which moves every later instruction. The [`Rewriter`] performs the
//! relinking a post-link optimizer must do: it compacts each routine,
//! recomputes every branch and call displacement, remaps jump-table
//! targets, indirect-call target lists, entry offsets, and the
//! address-materialization relocations (`lda` immediates holding code
//! addresses).
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::{ProgramBuilder, Rewriter};
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main")
//!     .def(Reg::T0) // dead: delete it
//!     .lda(Reg::V0, Reg::ZERO, 9)
//!     .put_int()
//!     .halt();
//! let program = b.build()?;
//!
//! let mut rw = Rewriter::new(&program);
//! rw.delete(program.routines()[0].addr());
//! let (optimized, changed) = rw.finish()?;
//! assert_eq!(optimized.total_instructions(), program.total_instructions() - 1);
//! assert_eq!(changed.len(), 1); // only `main` was touched
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use spike_isa::{Instruction, Reg};

use crate::program::{Program, ProgramError};
use crate::routine::{Routine, RoutineId};
use crate::BASE_ADDR;

/// Error produced by [`Rewriter::finish`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// An address marked for deletion holds no instruction.
    NoSuchInstruction(u32),
    /// The instruction at the address may not be deleted: terminators and
    /// relocated address materializations anchor control flow.
    NotDeletable(u32),
    /// An insertion or bypass request is invalid: inserted instructions
    /// must not transfer control, and only branches can be bypassed.
    NotInsertable(u32),
    /// Deleting would leave a routine empty.
    EmptyRoutine(String),
    /// A relocated address constant no longer fits its immediate field.
    RelocationOverflow { addr: u32 },
    /// The rewritten program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NoSuchInstruction(a) => {
                write!(f, "no instruction at {a:#x}")
            }
            RewriteError::NotDeletable(a) => {
                write!(f, "instruction at {a:#x} may not be deleted")
            }
            RewriteError::NotInsertable(a) => {
                write!(f, "invalid insertion or bypass at {a:#x}")
            }
            RewriteError::EmptyRoutine(n) => write!(f, "deleting would empty routine {n}"),
            RewriteError::RelocationOverflow { addr } => {
                write!(f, "relocated constant at {addr:#x} overflows its field")
            }
            RewriteError::Invalid(e) => write!(f, "rewritten program is invalid: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for RewriteError {
    fn from(e: ProgramError) -> RewriteError {
        RewriteError::Invalid(e)
    }
}

/// Deletes instructions from a program and relinks it.
///
/// Collect deletions with [`Rewriter::delete`], then call
/// [`Rewriter::finish`]. Only non-control-flow instructions may be
/// deleted; branch targets that die are forwarded to the next surviving
/// instruction.
#[derive(Debug)]
pub struct Rewriter<'a> {
    program: &'a Program,
    deleted: BTreeSet<u32>,
    replaced: BTreeMap<u32, Instruction>,
    inserted: BTreeMap<u32, Vec<Instruction>>,
    bypassed: BTreeSet<u32>,
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter over `program` with no pending edits.
    pub fn new(program: &'a Program) -> Rewriter<'a> {
        Rewriter {
            program,
            deleted: BTreeSet::new(),
            replaced: BTreeMap::new(),
            inserted: BTreeMap::new(),
            bypassed: BTreeSet::new(),
        }
    }

    /// Marks the instruction at `addr` for deletion. Idempotent.
    pub fn delete(&mut self, addr: u32) -> &mut Self {
        self.deleted.insert(addr);
        self
    }

    /// Replaces the instruction at `addr` with `insn` (e.g. a register
    /// rename). The replacement must not change control flow:
    /// [`Rewriter::finish`] rejects replacements that alter whether or
    /// where the instruction transfers control.
    pub fn replace(&mut self, addr: u32, insn: Instruction) -> &mut Self {
        self.replaced.insert(addr, insn);
        self
    }

    /// Schedules `insns` for insertion immediately before the instruction
    /// at `addr`. Every control transfer that resolved to `addr` —
    /// branches, jump tables, relocations, entry offsets, and forwarding
    /// from deleted predecessors — resolves to the first inserted
    /// instruction instead, so inserted code runs on every path that
    /// reached `addr`, except through branches marked with
    /// [`Rewriter::bypass`]. Repeated calls for the same address append.
    /// Inserted instructions must not transfer control.
    pub fn insert_before(&mut self, addr: u32, insns: Vec<Instruction>) -> &mut Self {
        if !insns.is_empty() {
            self.inserted.entry(addr).or_default().extend(insns);
        }
        self
    }

    /// Marks the branch at `addr` as *bypassing* insertions at its
    /// target: the branch keeps jumping to the original target
    /// instruction, past any code inserted before it. This is how a loop
    /// back edge skips a synthesized preheader. Only `Br` and
    /// `CondBranch` instructions can be bypassed.
    pub fn bypass(&mut self, addr: u32) -> &mut Self {
        self.bypassed.insert(addr);
        self
    }

    /// Number of pending edits (deletions, replacements, insertion
    /// points and bypasses).
    pub fn pending(&self) -> usize {
        self.deleted.len() + self.replaced.len() + self.inserted.len() + self.bypassed.len()
    }

    /// Compacts and relinks the program.
    ///
    /// Returns the rewritten program together with the set of routines
    /// whose instruction words actually changed, in routine-id order:
    /// routines with deletions or replacements, plus any routine an
    /// instruction of which was relinked (a branch or call displacement
    /// recomputed across a shifted gap, or a relocated `lda` immediate
    /// pointing at moved code). Routines whose instructions are
    /// bit-identical — even if their base address shifted — are not
    /// reported; address shifts alone change no analysis-relevant
    /// content.
    ///
    /// # Errors
    ///
    /// Returns a [`RewriteError`] if a deletion is invalid (missing
    /// instruction, terminator, relocated constant), a routine would
    /// become empty, a relocation overflows, or the relinked program
    /// fails validation.
    pub fn finish(&self) -> Result<(Program, Vec<RoutineId>), RewriteError> {
        let p = self.program;

        // Validate deletions.
        for &addr in &self.deleted {
            let Some(insn) = p.insn_at(addr) else {
                return Err(RewriteError::NoSuchInstruction(addr));
            };
            if insn.is_terminator() || p.relocations().contains_key(&addr) {
                return Err(RewriteError::NotDeletable(addr));
            }
        }
        // Validate replacements: control flow must be untouched.
        for (&addr, new) in &self.replaced {
            let Some(old) = p.insn_at(addr) else {
                return Err(RewriteError::NoSuchInstruction(addr));
            };
            if self.deleted.contains(&addr) {
                return Err(RewriteError::NotDeletable(addr));
            }
            let same_flow = match (old, new) {
                (Instruction::Br { disp: a }, Instruction::Br { disp: b }) => a == b,
                (Instruction::Bsr { disp: a }, Instruction::Bsr { disp: b }) => a == b,
                (
                    Instruction::CondBranch { disp: a, .. },
                    Instruction::CondBranch { disp: b, .. },
                ) => a == b,
                (Instruction::Jmp { .. }, Instruction::Jmp { .. })
                | (Instruction::Jsr { .. }, Instruction::Jsr { .. })
                | (Instruction::Ret { .. }, Instruction::Ret { .. }) => true,
                (a, b) => !a.is_terminator() && !b.is_terminator(),
            };
            if !same_flow || p.relocations().contains_key(&addr) {
                return Err(RewriteError::NotDeletable(addr));
            }
        }
        // Validate insertions and bypasses.
        for (&addr, ins) in &self.inserted {
            if p.insn_at(addr).is_none() {
                return Err(RewriteError::NoSuchInstruction(addr));
            }
            if ins.iter().any(|i| i.is_terminator()) {
                return Err(RewriteError::NotInsertable(addr));
            }
        }
        for &addr in &self.bypassed {
            match p.insn_at(addr) {
                None => return Err(RewriteError::NoSuchInstruction(addr)),
                Some(Instruction::Br { .. } | Instruction::CondBranch { .. }) => {}
                Some(_) => return Err(RewriteError::NotInsertable(addr)),
            }
        }

        // Pass 1: assign new addresses. `fwd` maps every old address to
        // the new address of the first emitted instruction at or after
        // it (within its routine) — branch targets forward past deleted
        // instructions and *into* code inserted before the target.
        // `skip` maps each insertion address to the new address of the
        // original instruction (or its surviving successor), which is
        // where bypassing branches land.
        let mut fwd: BTreeMap<u32, u32> = BTreeMap::new();
        let mut skip: BTreeMap<u32, u32> = BTreeMap::new();
        let mut new_bases = Vec::with_capacity(p.routines().len());
        let mut next = BASE_ADDR;
        for r in p.routines() {
            new_bases.push(next);
            let mut pending: Vec<u32> = Vec::new();
            let mut pending_skip: Vec<u32> = Vec::new();
            for old in r.addr()..r.end_addr() {
                let inserted = self.inserted.get(&old);
                if inserted.is_some() || !self.deleted.contains(&old) {
                    for d in pending.drain(..) {
                        fwd.insert(d, next);
                    }
                    for s in pending_skip.drain(..) {
                        skip.insert(s, next);
                    }
                }
                if let Some(ins) = inserted {
                    fwd.insert(old, next);
                    next += ins.len() as u32;
                    if self.deleted.contains(&old) {
                        // The original was deleted too: bypasses forward
                        // to whatever is emitted next.
                        pending_skip.push(old);
                    } else {
                        skip.insert(old, next);
                        next += 1;
                    }
                } else if self.deleted.contains(&old) {
                    pending.push(old);
                } else {
                    fwd.insert(old, next);
                    next += 1;
                }
            }
            if !pending.is_empty() || !pending_skip.is_empty() {
                // Trailing deletions are impossible: terminators survive.
                unreachable!("routine cannot end with deleted instructions");
            }
            if next == new_bases[new_bases.len() - 1] {
                return Err(RewriteError::EmptyRoutine(r.name().to_string()));
            }
        }
        let map = |old: u32| -> u32 { fwd[&old] };

        // Pass 2: rebuild routines with recomputed displacements.
        let mut routines = Vec::with_capacity(p.routines().len());
        let mut relocations = BTreeMap::new();
        let mut changed = Vec::new();
        // Branches marked `bypass` resolve their target through `skip`,
        // landing past any insertions at the target.
        let map_branch = |branch: u32, target: u32| -> u32 {
            if self.bypassed.contains(&branch) {
                if let Some(&s) = skip.get(&target) {
                    return s;
                }
            }
            fwd[&target]
        };
        for (ri, r) in p.routines().iter().enumerate() {
            let mut insns = Vec::with_capacity(r.len());
            for old in r.addr()..r.end_addr() {
                if let Some(ins) = self.inserted.get(&old) {
                    insns.extend(ins.iter().copied());
                }
                if self.deleted.contains(&old) {
                    continue;
                }
                // With an insertion here, `fwd` points at the inserted
                // code; the original instruction itself sits after it.
                let new_addr = skip.get(&old).copied().unwrap_or_else(|| map(old));
                let insn = self
                    .replaced
                    .get(&old)
                    .copied()
                    .unwrap_or_else(|| *r.insn_at(old).expect("address in routine"));
                let relinked = match insn {
                    Instruction::Br { disp } => {
                        let t = map_branch(old, old.wrapping_add(1).wrapping_add(disp as u32));
                        Instruction::Br { disp: t as i64 as i32 - (new_addr as i32 + 1) }
                    }
                    Instruction::Bsr { disp } => {
                        Instruction::Bsr { disp: relink(old, disp, new_addr, &map) }
                    }
                    Instruction::CondBranch { cond, ra, disp } => {
                        let t = map_branch(old, old.wrapping_add(1).wrapping_add(disp as u32));
                        Instruction::CondBranch {
                            cond,
                            ra,
                            disp: t as i64 as i32 - (new_addr as i32 + 1),
                        }
                    }
                    Instruction::Lda { rd, base, .. } if p.relocations().contains_key(&old) => {
                        let target = map(p.relocations()[&old]);
                        relocations.insert(new_addr, target);
                        Instruction::Lda {
                            rd,
                            base,
                            disp: i16::try_from(target)
                                .map_err(|_| RewriteError::RelocationOverflow { addr: old })?,
                        }
                    }
                    other => other,
                };
                insns.push(relinked);
            }
            if insns.len() != r.len() || insns.iter().ne(r.insns().iter()) {
                changed.push(RoutineId::from_index(ri));
            }
            let entry_offsets: Vec<u32> = r.entry_addrs().map(|a| map(a) - map(r.addr())).collect();
            routines.push(Routine::new(
                r.name(),
                map(r.addr()),
                insns,
                entry_offsets,
                r.exported(),
            ));
        }

        // Pass 3: remap auxiliary info.
        let jump_tables = p
            .jump_tables()
            .iter()
            .map(|(&addr, targets)| (map(addr), targets.iter().map(|&t| map(t)).collect()))
            .collect();
        let indirect_calls = p
            .indirect_calls()
            .iter()
            .map(|(&addr, t)| {
                let t = match t {
                    crate::program::IndirectTargets::Known(list) => {
                        crate::program::IndirectTargets::Known(
                            list.iter().map(|&a| map(a)).collect(),
                        )
                    }
                    other => other.clone(),
                };
                (map(addr), t)
            })
            .collect();
        let jump_hints = p.jump_hints().iter().map(|(&addr, &live)| (map(addr), live)).collect();

        let program = Program::new(
            routines,
            jump_tables,
            indirect_calls,
            jump_hints,
            relocations,
            p.entry(),
        )?;
        Ok((program, changed))
    }
}

/// Recomputes a branch displacement: resolve the old target, forward it
/// through the address map, and re-express it relative to the new pc.
fn relink(old_addr: u32, disp: i32, new_addr: u32, map: &impl Fn(u32) -> u32) -> i32 {
    let old_target = old_addr.wrapping_add(1).wrapping_add(disp as u32);
    let new_target = map(old_target);
    new_target as i64 as i32 - (new_addr as i32 + 1)
}

// `Reg` is referenced by doc examples above; silence the unused warning
// when docs are not built.
const _: Option<Reg> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use spike_isa::{AluOp, BranchCond};

    #[test]
    fn deleting_shifts_branches_correctly() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0) // will be deleted
            .label("top")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .def(Reg::T1) // will be deleted
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();

        let mut rw = Rewriter::new(&p);
        rw.delete(base).delete(base + 2);
        assert_eq!(rw.pending(), 2);
        let (q, changed) = rw.finish().unwrap();

        assert_eq!(changed, vec![RoutineId::from_index(0)]);
        assert_eq!(q.total_instructions(), 3);
        // The loop branch still targets the subq.
        let r = &q.routines()[0];
        assert_eq!(
            r.insns()[1],
            Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::A0, disp: -2 }
        );
    }

    #[test]
    fn deleting_a_branch_target_forwards_to_next_survivor() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .cond(BranchCond::Eq, Reg::A0, "skip")
            .def(Reg::T0)
            .label("skip")
            .def(Reg::T1) // the branch target; delete it
            .def(Reg::T2)
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let (q, _) = Rewriter::new(&p).delete(base + 2).finish().unwrap();
        // Branch now lands on `def t2`.
        let r = &q.routines()[0];
        assert_eq!(
            r.insns()[0],
            Instruction::CondBranch { cond: BranchCond::Eq, ra: Reg::A0, disp: 1 }
        );
    }

    #[test]
    fn calls_across_shifted_routines_are_relinked() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).def(Reg::T1).call("f").halt();
        b.routine("f").def(Reg::V0).ret();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let (q, changed) = Rewriter::new(&p).delete(base).delete(base + 1).finish().unwrap();
        let main = q.routine_by_name("main").unwrap();
        let f = q.routine_by_name("f").unwrap();
        assert_eq!(q.direct_call_target(q.routine(main).addr()), Some((f, 0)));
        // Only main's instructions changed; f merely shifted down.
        assert_eq!(changed, vec![main]);
    }

    #[test]
    fn jump_tables_and_relocations_are_remapped() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T2) // deleted
            .lda_label(Reg::T0, "c0")
            .switch(Reg::T0, &["c0", "c1"])
            .label("c0")
            .br("end")
            .label("c1")
            .def(Reg::T1)
            .label("end")
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let (q, _) = Rewriter::new(&p).delete(base).finish().unwrap();

        // Everything shifted down one word; the table and reloc follow.
        let jt: Vec<_> = q.jump_tables().iter().collect();
        assert_eq!(jt.len(), 1);
        assert_eq!(*jt[0].0, base + 1);
        assert_eq!(jt[0].1, &vec![base + 2, base + 3]);
        assert_eq!(q.relocations().get(&base), Some(&(base + 2)));
        match q.insn_at(base) {
            Some(&Instruction::Lda { disp, .. }) => assert_eq!(disp as u32, base + 2),
            other => panic!("expected relocated lda, got {other:?}"),
        }
    }

    #[test]
    fn terminators_are_not_deletable() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let err = Rewriter::new(&p).delete(base + 1).finish().unwrap_err();
        assert_eq!(err, RewriteError::NotDeletable(base + 1));
    }

    #[test]
    fn relocated_constants_are_not_deletable() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda_label(Reg::T0, "t").label("t").halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let err = Rewriter::new(&p).delete(base).finish().unwrap_err();
        assert_eq!(err, RewriteError::NotDeletable(base));
    }

    #[test]
    fn unknown_addresses_are_rejected() {
        let mut b = ProgramBuilder::new();
        b.routine("main").halt();
        let p = b.build().unwrap();
        let err = Rewriter::new(&p).delete(0xDEAD).finish().unwrap_err();
        assert_eq!(err, RewriteError::NoSuchInstruction(0xDEAD));
    }

    #[test]
    fn replace_renames_registers() {
        let mut b = ProgramBuilder::new();
        b.routine("main").op(AluOp::Add, Reg::A0, Reg::A1, Reg::S0).halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.replace(
            base,
            Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::T0 },
        );
        let (q, changed) = rw.finish().unwrap();
        assert_eq!(
            q.insn_at(base),
            Some(&Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::T0 })
        );
        assert_eq!(changed, vec![RoutineId::from_index(0)]);
    }

    #[test]
    fn replace_rejects_control_flow_changes() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        // Turning a plain instruction into a terminator is rejected.
        let mut rw = Rewriter::new(&p);
        rw.replace(base, Instruction::Ret { base: Reg::RA });
        assert_eq!(rw.finish().unwrap_err(), RewriteError::NotDeletable(base));
        // Changing a branch displacement is rejected.
        let mut b = ProgramBuilder::new();
        b.routine("main").label("t").br("t");
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.replace(base, Instruction::Br { disp: 5 });
        assert!(rw.finish().is_err());
    }

    #[test]
    fn insertion_enters_on_branches_and_fallthrough() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .cond(BranchCond::Eq, Reg::A0, "join")
            .def(Reg::T0)
            .label("join")
            .def(Reg::T1)
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.insert_before(
            base + 2,
            vec![Instruction::Lda { rd: Reg::T2, base: Reg::ZERO, disp: 7 }],
        );
        let (q, changed) = rw.finish().unwrap();
        assert_eq!(changed, vec![RoutineId::from_index(0)]);
        assert_eq!(q.total_instructions(), p.total_instructions() + 1);
        let r = &q.routines()[0];
        // The branch now targets the inserted lda (two insns ahead of the
        // fall-through def, which also runs into it).
        assert_eq!(
            r.insns()[0],
            Instruction::CondBranch { cond: BranchCond::Eq, ra: Reg::A0, disp: 1 }
        );
        assert_eq!(r.insns()[2], Instruction::Lda { rd: Reg::T2, base: Reg::ZERO, disp: 7 });
        assert_eq!(r.insns()[3], p.routines()[0].insns()[2]);
    }

    #[test]
    fn bypassed_back_edge_skips_the_insertion() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .label("top")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.insert_before(base, vec![Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 1 }]);
        rw.bypass(base + 1);
        let (q, _) = rw.finish().unwrap();
        let r = &q.routines()[0];
        // Layout: lda (preheader), subq, bne, halt. The back edge jumps
        // to the subq, not the lda.
        assert_eq!(r.insns()[0], Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 1 });
        assert_eq!(
            r.insns()[2],
            Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::A0, disp: -2 }
        );
    }

    #[test]
    fn insert_and_delete_at_the_same_address_moves_the_instruction() {
        // The LICM shape: hoist the loop's first instruction into the
        // preheader (insert a copy before it, delete the original).
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .label("top")
            .lda(Reg::T0, Reg::ZERO, 3)
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.insert_before(base, vec![Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 3 }]);
        rw.delete(base);
        rw.bypass(base + 2);
        let (q, _) = rw.finish().unwrap();
        let r = &q.routines()[0];
        assert_eq!(r.len(), p.routines()[0].len());
        // lda now runs once before the loop; the back edge targets the
        // subq (the deleted original forwards bypasses to the survivor).
        assert_eq!(r.insns()[0], Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 3 });
        assert_eq!(
            r.insns()[2],
            Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::A0, disp: -2 }
        );
    }

    #[test]
    fn insertion_shifts_later_routines_and_tables() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).call("f").halt();
        b.routine("f").def(Reg::V0).ret();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.insert_before(
            base + 1,
            vec![Instruction::Lda { rd: Reg::T1, base: Reg::ZERO, disp: 2 }],
        );
        let (q, changed) = rw.finish().unwrap();
        let main = q.routine_by_name("main").unwrap();
        let f = q.routine_by_name("f").unwrap();
        // The call still reaches f at its shifted address.
        assert_eq!(q.direct_call_target(q.routine(main).addr() + 2), Some((f, 0)));
        assert_eq!(changed, vec![main]);
    }

    #[test]
    fn inserted_terminators_and_non_branch_bypasses_are_rejected() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let mut rw = Rewriter::new(&p);
        rw.insert_before(base, vec![Instruction::Halt]);
        assert_eq!(rw.finish().unwrap_err(), RewriteError::NotInsertable(base));
        let mut rw = Rewriter::new(&p);
        rw.bypass(base);
        assert_eq!(rw.finish().unwrap_err(), RewriteError::NotInsertable(base));
        let mut rw = Rewriter::new(&p);
        rw.insert_before(0xDEAD, vec![Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 0 }]);
        assert_eq!(rw.finish().unwrap_err(), RewriteError::NoSuchInstruction(0xDEAD));
    }

    #[test]
    fn empty_rewrite_is_identity() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).call("f").halt();
        b.routine("f").def(Reg::V0).ret();
        let p = b.build().unwrap();
        let (q, changed) = Rewriter::new(&p).finish().unwrap();
        assert_eq!(q, p);
        assert!(changed.is_empty());
    }
}
