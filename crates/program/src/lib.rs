//! # spike-program
//!
//! Whole-program representation for the Spike reproduction: routines with
//! one or more entry points, jump tables for multiway branches, indirect
//! call target metadata, and a binary executable image format with a writer
//! and loader.
//!
//! Spike is a *post-link-time* optimizer: its input is a linked executable,
//! not compiler IR. This crate supplies that substrate:
//!
//! * [`Program`] — an immutable, validated whole program: a list of
//!   [`Routine`]s laid out at word addresses, the jump tables extracted
//!   from the image (§3.5 of the paper), and per-call-site indirect target
//!   information,
//! * [`ProgramBuilder`] — an assembler-like builder with labels, used by
//!   tests, fixtures and the synthetic benchmark generator,
//! * [`Program::to_image`] / [`Program::from_image`] — serialize a program
//!   into a flat binary image (magic, symbol table, code words, jump
//!   tables, auxiliary call-target info) and load it back by decoding every
//!   instruction word.
//!
//! # Example
//!
//! ```
//! use spike_isa::{AluOp, Reg};
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main")
//!     .def(Reg::A0)
//!     .call("double")
//!     .put_int()
//!     .halt();
//! b.routine("double")
//!     .op(AluOp::Add, Reg::A0, Reg::A0, Reg::V0)
//!     .ret();
//! let program = b.build()?;
//!
//! // Round-trip through the executable image.
//! let image = program.to_image();
//! let loaded = spike_program::Program::from_image(&image)?;
//! assert_eq!(loaded, program);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod builder;
mod image;
mod program;
mod rewrite;
mod routine;

pub use builder::{BuildError, ProgramBuilder, RoutineBuilder};
pub use image::ImageError;
pub use program::{IndirectTargets, Program, ProgramError};
pub use rewrite::{RewriteError, Rewriter};
pub use routine::{Routine, RoutineId};

/// Word address at which the first routine is laid out.
pub const BASE_ADDR: u32 = 0x400;
