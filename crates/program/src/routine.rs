//! Routines: contiguous instruction sequences with one or more entrances.

use std::fmt;

use spike_isa::{HeapSize, Instruction};

/// Identifies a routine within a [`crate::Program`].
///
/// Routine ids are dense indices assigned in layout order; they are only
/// meaningful relative to the program that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoutineId(u32);

impl RoutineId {
    /// Creates an id from a dense index.
    #[inline]
    pub const fn from_index(index: usize) -> RoutineId {
        RoutineId(index as u32)
    }

    /// The dense index of this routine.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl spike_isa::Snap for RoutineId {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        Ok(RoutineId(r.get_u32()?))
    }
}

impl fmt::Debug for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RoutineId({})", self.0)
    }
}

impl fmt::Display for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "routine#{}", self.0)
    }
}

/// A routine: the instructions generated for one high-level procedure.
///
/// Instructions occupy consecutive word addresses starting at
/// [`Routine::addr`]. A routine has one *primary* entrance at offset 0 and
/// may have alternate entrances (offsets in [`Routine::entry_offsets`]);
/// exits are its `ret` instructions. A routine marked
/// [`exported`](Routine::exported) may be called from outside the program,
/// so conservative calling-standard assumptions apply to its unseen callers
/// (§3.5 of the paper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Routine {
    name: String,
    addr: u32,
    insns: Vec<Instruction>,
    entry_offsets: Vec<u32>,
    exported: bool,
}

impl Routine {
    /// Creates a routine.
    ///
    /// # Panics
    ///
    /// Panics if `insns` is empty, if `entry_offsets` is empty, does not
    /// start with 0, is not strictly increasing, or indexes past the end of
    /// `insns`.
    pub fn new(
        name: impl Into<String>,
        addr: u32,
        insns: Vec<Instruction>,
        entry_offsets: Vec<u32>,
        exported: bool,
    ) -> Routine {
        assert!(!insns.is_empty(), "routine must contain instructions");
        assert_eq!(entry_offsets.first(), Some(&0), "first entrance must be offset 0");
        assert!(
            entry_offsets.windows(2).all(|w| w[0] < w[1]),
            "entry offsets must be strictly increasing"
        );
        assert!(
            entry_offsets.iter().all(|&o| (o as usize) < insns.len()),
            "entry offset out of range"
        );
        Routine { name: name.into(), addr, insns, entry_offsets, exported }
    }

    /// The routine's symbol name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word address of the first instruction.
    #[inline]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The instructions, in address order.
    #[inline]
    pub fn insns(&self) -> &[Instruction] {
        &self.insns
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the routine is empty (never true for validated routines).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// One past the last word address of the routine.
    #[inline]
    pub fn end_addr(&self) -> u32 {
        self.addr + self.insns.len() as u32
    }

    /// Whether `addr` lies within this routine.
    #[inline]
    pub fn contains_addr(&self, addr: u32) -> bool {
        (self.addr..self.end_addr()).contains(&addr)
    }

    /// Instruction offsets (from [`Routine::addr`]) of each entrance; the
    /// first is always 0.
    #[inline]
    pub fn entry_offsets(&self) -> &[u32] {
        &self.entry_offsets
    }

    /// Word addresses of each entrance.
    pub fn entry_addrs(&self) -> impl Iterator<Item = u32> + '_ {
        self.entry_offsets.iter().map(move |&o| self.addr + o)
    }

    /// Whether the routine may be called from outside the program.
    #[inline]
    pub fn exported(&self) -> bool {
        self.exported
    }

    /// The instruction at word address `addr`, if it lies in this routine.
    pub fn insn_at(&self, addr: u32) -> Option<&Instruction> {
        if !self.contains_addr(addr) {
            return None;
        }
        self.insns.get((addr - self.addr) as usize)
    }
}

impl HeapSize for Routine {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes() + self.insns.heap_bytes() + self.entry_offsets.heap_bytes()
    }
}

impl fmt::Display for Routine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:  ; addr={:#x} len={}", self.name, self.addr, self.insns.len())?;
        for (i, insn) in self.insns.iter().enumerate() {
            writeln!(f, "  {:#06x}: {insn}", self.addr + i as u32)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;

    fn r() -> Routine {
        Routine::new(
            "f",
            0x400,
            vec![
                Instruction::Lda { rd: Reg::T0, base: Reg::ZERO, disp: 1 },
                Instruction::Ret { base: Reg::RA },
            ],
            vec![0, 1],
            false,
        )
    }

    #[test]
    fn address_arithmetic() {
        let r = r();
        assert_eq!(r.addr(), 0x400);
        assert_eq!(r.end_addr(), 0x402);
        assert!(r.contains_addr(0x400));
        assert!(r.contains_addr(0x401));
        assert!(!r.contains_addr(0x402));
        assert!(!r.contains_addr(0x3FF));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn insn_at_indexes_by_address() {
        let r = r();
        assert_eq!(r.insn_at(0x401), Some(&Instruction::Ret { base: Reg::RA }));
        assert_eq!(r.insn_at(0x402), None);
    }

    #[test]
    fn entry_addrs_offset_from_base() {
        let r = r();
        let entries: Vec<u32> = r.entry_addrs().collect();
        assert_eq!(entries, vec![0x400, 0x401]);
    }

    #[test]
    #[should_panic(expected = "first entrance must be offset 0")]
    fn rejects_missing_primary_entry() {
        let _ = Routine::new("f", 0, vec![Instruction::Ret { base: Reg::RA }], vec![], false);
    }

    #[test]
    #[should_panic(expected = "entry offset out of range")]
    fn rejects_entry_past_end() {
        let _ = Routine::new("f", 0, vec![Instruction::Ret { base: Reg::RA }], vec![0, 5], false);
    }

    #[test]
    fn routine_id_round_trips() {
        let id = RoutineId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "routine#7");
    }
}
