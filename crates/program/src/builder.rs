//! Assembler-like builder for constructing programs with symbolic labels.

use std::collections::BTreeMap;
use std::fmt;

use spike_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg};

use crate::program::{IndirectTargets, Program, ProgramError};
use crate::routine::{Routine, RoutineId};
use crate::BASE_ADDR;

/// Error produced by [`ProgramBuilder::build`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// No routines were defined.
    NoRoutines,
    /// Two routines share a name.
    DuplicateRoutine(String),
    /// A label was defined twice within one routine.
    DuplicateLabel { routine: String, label: String },
    /// A branch or switch references an undefined label.
    UndefinedLabel { routine: String, label: String },
    /// A call references an undefined routine (or `routine:label` entry).
    UndefinedRoutine { routine: String, target: String },
    /// The requested entry routine does not exist.
    UndefinedEntry(String),
    /// A routine's last instruction can fall through past its end.
    FallsThroughEnd { routine: String },
    /// A displacement does not fit its 21-bit encoding.
    DisplacementOverflow { routine: String, offset: usize },
    /// The assembled program failed whole-program validation.
    Invalid(ProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoRoutines => write!(f, "no routines defined"),
            BuildError::DuplicateRoutine(n) => write!(f, "duplicate routine {n}"),
            BuildError::DuplicateLabel { routine, label } => {
                write!(f, "duplicate label {label} in routine {routine}")
            }
            BuildError::UndefinedLabel { routine, label } => {
                write!(f, "undefined label {label} in routine {routine}")
            }
            BuildError::UndefinedRoutine { routine, target } => {
                write!(f, "call to undefined routine {target} from {routine}")
            }
            BuildError::UndefinedEntry(n) => write!(f, "entry routine {n} is not defined"),
            BuildError::FallsThroughEnd { routine } => {
                write!(f, "routine {routine} can fall through past its last instruction")
            }
            BuildError::DisplacementOverflow { routine, offset } => {
                write!(f, "displacement overflow in {routine} at offset {offset}")
            }
            BuildError::Invalid(e) => write!(f, "assembled program is invalid: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> BuildError {
        BuildError::Invalid(e)
    }
}

#[derive(Clone, Debug)]
enum Item {
    Insn(Instruction),
    BrTo(String),
    CondTo(BranchCond, Reg, String),
    Call(String),
    Switch(Reg, Vec<String>),
    JsrKnown(Reg, Vec<String>),
    JsrUnknown(Reg),
    JsrHinted(Reg, spike_isa::RegSet, spike_isa::RegSet, spike_isa::RegSet),
    JmpHinted(Reg, spike_isa::RegSet),
    LdaLabel(Reg, String),
    LdaRoutine(Reg, String),
}

/// Builds one routine; obtained from [`ProgramBuilder::routine`].
///
/// Every method appends exactly one instruction (labels and flags excepted)
/// and returns `&mut Self` for chaining.
#[derive(Debug)]
pub struct RoutineBuilder {
    name: String,
    exported: bool,
    items: Vec<Item>,
    labels: BTreeMap<String, usize>,
    alt_entries: Vec<String>,
    duplicate_label: Option<String>,
}

impl RoutineBuilder {
    fn new(name: String) -> RoutineBuilder {
        RoutineBuilder {
            name,
            exported: false,
            items: Vec::new(),
            labels: BTreeMap::new(),
            alt_entries: Vec::new(),
            duplicate_label: None,
        }
    }

    /// Appends a raw instruction.
    pub fn insn(&mut self, insn: Instruction) -> &mut Self {
        self.items.push(Item::Insn(insn));
        self
    }

    /// Appends an instruction that defines `r` without using any register
    /// (an immediate load). Mirrors the paper's `def Rx` pseudo-ops.
    pub fn def(&mut self, r: Reg) -> &mut Self {
        let insn = if r.is_fp() {
            Instruction::FpOperate { op: FpOp::Add, fa: Reg::FZERO, fb: Reg::FZERO, fc: r }
        } else {
            Instruction::Lda { rd: r, base: Reg::ZERO, disp: 1 }
        };
        self.insn(insn)
    }

    /// Appends an instruction that uses `r` without defining any register.
    /// Mirrors the paper's `use Rx` pseudo-ops.
    pub fn use_reg(&mut self, r: Reg) -> &mut Self {
        let insn = if r.is_fp() {
            Instruction::FpOperate { op: FpOp::Add, fa: r, fb: Reg::FZERO, fc: Reg::FZERO }
        } else {
            Instruction::Operate { op: AluOp::Add, ra: r, rb: Reg::ZERO, rc: Reg::ZERO }
        };
        self.insn(insn)
    }

    /// Appends `dst = src` (both integer registers).
    pub fn copy(&mut self, src: Reg, dst: Reg) -> &mut Self {
        self.insn(Instruction::Operate { op: AluOp::Or, ra: src, rb: src, rc: dst })
    }

    /// Appends an integer ALU operation `rc = ra <op> rb`.
    pub fn op(&mut self, op: AluOp, ra: Reg, rb: Reg, rc: Reg) -> &mut Self {
        self.insn(Instruction::Operate { op, ra, rb, rc })
    }

    /// Appends an integer ALU operation with immediate `rc = ra <op> imm`.
    pub fn op_imm(&mut self, op: AluOp, ra: Reg, imm: u8, rc: Reg) -> &mut Self {
        self.insn(Instruction::OperateImm { op, ra, imm, rc })
    }

    /// Appends `rd = base + disp`.
    pub fn lda(&mut self, rd: Reg, base: Reg, disp: i16) -> &mut Self {
        self.insn(Instruction::Lda { rd, base, disp })
    }

    /// Appends a 64-bit load `rd = mem[base + disp]`.
    pub fn load(&mut self, rd: Reg, base: Reg, disp: i16) -> &mut Self {
        self.insn(Instruction::Load { width: MemWidth::Q, rd, base, disp })
    }

    /// Appends a 64-bit store `mem[base + disp] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, disp: i16) -> &mut Self {
        self.insn(Instruction::Store { width: MemWidth::Q, rs, base, disp })
    }

    /// Defines a label at the current position.
    ///
    /// Duplicate labels are reported by [`ProgramBuilder::build`].
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.items.len()).is_some() {
            self.duplicate_label.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Marks a label as an alternate entrance to this routine; callers can
    /// target it with `call("routine:label")`.
    pub fn alt_entry(&mut self, label: &str) -> &mut Self {
        self.alt_entries.push(label.to_string());
        self
    }

    /// Appends an unconditional branch to `label`.
    pub fn br(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::BrTo(label.to_string()));
        self
    }

    /// Appends a conditional branch on `r` to `label`.
    pub fn cond(&mut self, cond: BranchCond, r: Reg, label: &str) -> &mut Self {
        self.items.push(Item::CondTo(cond, r, label.to_string()));
        self
    }

    /// Appends a direct call (`bsr`) to `target`, which names a routine or
    /// a `routine:label` alternate entrance.
    pub fn call(&mut self, target: &str) -> &mut Self {
        self.items.push(Item::Call(target.to_string()));
        self
    }

    /// Appends a multiway branch: an indirect `jmp` through `base` whose
    /// extracted jump table lists the given labels (§3.5, §3.6).
    pub fn switch(&mut self, base: Reg, labels: &[&str]) -> &mut Self {
        self.items.push(Item::Switch(base, labels.iter().map(|s| s.to_string()).collect()));
        self
    }

    /// Appends an indirect call (`jsr` through `base`) whose possible
    /// targets are known to be the named routines.
    pub fn jsr_known(&mut self, base: Reg, targets: &[&str]) -> &mut Self {
        self.items.push(Item::JsrKnown(base, targets.iter().map(|s| s.to_string()).collect()));
        self
    }

    /// Appends an indirect call (`jsr` through `base`) to an unknown
    /// target; the analysis applies calling-standard assumptions (§3.5).
    pub fn jsr_unknown(&mut self, base: Reg) -> &mut Self {
        self.items.push(Item::JsrUnknown(base));
        self
    }

    /// Appends an indirect call to an external target whose exact register
    /// effects the compiler supplied (§3.5's suggested extension): the
    /// call may read `used`, must write `defined`, may overwrite `killed`.
    pub fn jsr_hinted(
        &mut self,
        base: Reg,
        used: spike_isa::RegSet,
        defined: spike_isa::RegSet,
        killed: spike_isa::RegSet,
    ) -> &mut Self {
        self.items.push(Item::JsrHinted(base, used, defined, killed));
        self
    }

    /// Appends an indirect jump with no recoverable table, annotated with
    /// the compiler-provided set of registers live at its target (§3.5's
    /// suggested extension).
    pub fn jmp_hinted(&mut self, base: Reg, live: spike_isa::RegSet) -> &mut Self {
        self.items.push(Item::JmpHinted(base, live));
        self
    }

    /// Appends `rd = <address of label>`: materializes a local label's word
    /// address, e.g. to feed an indirect `jmp`.
    pub fn lda_label(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.items.push(Item::LdaLabel(rd, label.to_string()));
        self
    }

    /// Appends `rd = <address of routine entrance>`: materializes a call
    /// target's word address (a `routine` or `routine:label` name), e.g.
    /// to feed an indirect `jsr`.
    pub fn lda_routine(&mut self, rd: Reg, target: &str) -> &mut Self {
        self.items.push(Item::LdaRoutine(rd, target.to_string()));
        self
    }

    /// Appends a return through `ra`.
    pub fn ret(&mut self) -> &mut Self {
        self.insn(Instruction::Ret { base: Reg::RA })
    }

    /// Appends `halt` (program exit).
    pub fn halt(&mut self) -> &mut Self {
        self.insn(Instruction::Halt)
    }

    /// Appends `putint` (emit `v0` to the observable output).
    pub fn put_int(&mut self) -> &mut Self {
        self.insn(Instruction::PutInt)
    }

    /// Marks the routine as exported (callable from outside the program).
    pub fn export(&mut self) -> &mut Self {
        self.exported = true;
        self
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Builds a [`Program`] from routines with symbolic labels and call targets.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    routines: Vec<RoutineBuilder>,
    entry: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Starts (or resumes) building the routine named `name`.
    pub fn routine(&mut self, name: &str) -> &mut RoutineBuilder {
        if let Some(i) = self.routines.iter().position(|r| r.name == name) {
            return &mut self.routines[i];
        }
        self.routines.push(RoutineBuilder::new(name.to_string()));
        self.routines.last_mut().expect("just pushed")
    }

    /// Sets the program entry routine. Defaults to the first routine.
    pub fn set_entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_string());
        self
    }

    /// Assembles the program: lays out routines at consecutive addresses,
    /// resolves labels and call targets, and validates the result.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unresolved or duplicate symbols,
    /// fall-through routine ends, displacement overflow, or whole-program
    /// validation failures.
    pub fn build(&self) -> Result<Program, BuildError> {
        if self.routines.is_empty() {
            return Err(BuildError::NoRoutines);
        }
        // Duplicate routine names are impossible via `routine()`, but guard
        // anyway in case of future construction paths.
        for (i, r) in self.routines.iter().enumerate() {
            if self.routines[..i].iter().any(|p| p.name == r.name) {
                return Err(BuildError::DuplicateRoutine(r.name.clone()));
            }
            if let Some(label) = &r.duplicate_label {
                return Err(BuildError::DuplicateLabel {
                    routine: r.name.clone(),
                    label: label.clone(),
                });
            }
        }

        // Pass 1: lay out routines; every item is exactly one word.
        let mut addrs = Vec::with_capacity(self.routines.len());
        let mut next = BASE_ADDR;
        for r in &self.routines {
            addrs.push(next);
            next += r.items.len() as u32;
        }

        // Entry-address resolution for `routine` / `routine:label` names.
        let resolve_target = |from: &RoutineBuilder, target: &str| -> Result<u32, BuildError> {
            let (rname, label) = match target.split_once(':') {
                Some((r, l)) => (r, Some(l)),
                None => (target, None),
            };
            let idx = self.routines.iter().position(|r| r.name == rname).ok_or_else(|| {
                BuildError::UndefinedRoutine {
                    routine: from.name.clone(),
                    target: target.to_string(),
                }
            })?;
            let base = addrs[idx];
            match label {
                None => Ok(base),
                Some(l) => {
                    let off = self.routines[idx].labels.get(l).ok_or_else(|| {
                        BuildError::UndefinedLabel {
                            routine: rname.to_string(),
                            label: l.to_string(),
                        }
                    })?;
                    Ok(base + *off as u32)
                }
            }
        };

        let mut routines = Vec::with_capacity(self.routines.len());
        let mut jump_tables = BTreeMap::new();
        let mut indirect_calls = BTreeMap::new();
        let mut jump_hints = BTreeMap::new();
        let mut relocations = BTreeMap::new();

        for (ri, rb) in self.routines.iter().enumerate() {
            let base = addrs[ri];
            let local_label = |label: &str| -> Result<u32, BuildError> {
                rb.labels.get(label).map(|&off| base + off as u32).ok_or_else(|| {
                    BuildError::UndefinedLabel {
                        routine: rb.name.clone(),
                        label: label.to_string(),
                    }
                })
            };
            // Conditional branches carry 21-bit displacements; `br`/`bsr`
            // have no register operand and carry 26 bits.
            let disp_to =
                |from_off: usize, target_addr: u32, bits: u32| -> Result<i32, BuildError> {
                    let pc_next = base + from_off as u32 + 1;
                    let d = target_addr as i64 - pc_next as i64;
                    let lim = 1i64 << (bits - 1);
                    if !(-lim..lim).contains(&d) {
                        return Err(BuildError::DisplacementOverflow {
                            routine: rb.name.clone(),
                            offset: from_off,
                        });
                    }
                    Ok(d as i32)
                };

            let mut insns = Vec::with_capacity(rb.items.len());
            for (off, item) in rb.items.iter().enumerate() {
                let insn = match item {
                    Item::Insn(i) => *i,
                    Item::BrTo(l) => Instruction::Br { disp: disp_to(off, local_label(l)?, 26)? },
                    Item::CondTo(c, r, l) => Instruction::CondBranch {
                        cond: *c,
                        ra: *r,
                        disp: disp_to(off, local_label(l)?, 21)?,
                    },
                    Item::Call(t) => {
                        Instruction::Bsr { disp: disp_to(off, resolve_target(rb, t)?, 26)? }
                    }
                    Item::Switch(basereg, labels) => {
                        let targets: Result<Vec<u32>, BuildError> =
                            labels.iter().map(|l| local_label(l)).collect();
                        jump_tables.insert(base + off as u32, targets?);
                        Instruction::Jmp { base: *basereg }
                    }
                    Item::JsrKnown(basereg, names) => {
                        let targets: Result<Vec<u32>, BuildError> =
                            names.iter().map(|t| resolve_target(rb, t)).collect();
                        indirect_calls.insert(base + off as u32, IndirectTargets::Known(targets?));
                        Instruction::Jsr { base: *basereg }
                    }
                    Item::JsrUnknown(basereg) => {
                        indirect_calls.insert(base + off as u32, IndirectTargets::Unknown);
                        Instruction::Jsr { base: *basereg }
                    }
                    Item::JsrHinted(basereg, used, defined, killed) => {
                        indirect_calls.insert(
                            base + off as u32,
                            IndirectTargets::Hinted {
                                used: *used,
                                defined: *defined,
                                killed: *killed,
                            },
                        );
                        Instruction::Jsr { base: *basereg }
                    }
                    Item::JmpHinted(basereg, live) => {
                        jump_hints.insert(base + off as u32, *live);
                        Instruction::Jmp { base: *basereg }
                    }
                    Item::LdaLabel(rd, l) => {
                        let addr = local_label(l)?;
                        relocations.insert(base + off as u32, addr);
                        Instruction::Lda {
                            rd: *rd,
                            base: Reg::ZERO,
                            disp: i16::try_from(addr).map_err(|_| {
                                BuildError::DisplacementOverflow {
                                    routine: rb.name.clone(),
                                    offset: off,
                                }
                            })?,
                        }
                    }
                    Item::LdaRoutine(rd, t) => {
                        let addr = resolve_target(rb, t)?;
                        relocations.insert(base + off as u32, addr);
                        Instruction::Lda {
                            rd: *rd,
                            base: Reg::ZERO,
                            disp: i16::try_from(addr).map_err(|_| {
                                BuildError::DisplacementOverflow {
                                    routine: rb.name.clone(),
                                    offset: off,
                                }
                            })?,
                        }
                    }
                };
                insns.push(insn);
            }

            match insns.last() {
                Some(
                    Instruction::Br { .. }
                    | Instruction::Jmp { .. }
                    | Instruction::Ret { .. }
                    | Instruction::Halt,
                ) => {}
                _ => return Err(BuildError::FallsThroughEnd { routine: rb.name.clone() }),
            }

            let mut entry_offsets = vec![0u32];
            for l in &rb.alt_entries {
                entry_offsets.push(local_label(l)? - base);
            }
            entry_offsets.sort_unstable();
            entry_offsets.dedup();

            routines.push(Routine::new(rb.name.clone(), base, insns, entry_offsets, rb.exported));
        }

        let entry = match &self.entry {
            None => RoutineId::from_index(0),
            Some(name) => {
                let idx = self
                    .routines
                    .iter()
                    .position(|r| &r.name == name)
                    .ok_or_else(|| BuildError::UndefinedEntry(name.clone()))?;
                RoutineId::from_index(idx)
            }
        };

        Ok(Program::new(routines, jump_tables, indirect_calls, jump_hints, relocations, entry)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_calls_branches_and_switches() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .label("top")
            .cond(BranchCond::Ne, Reg::A0, "top")
            .call("f")
            .switch(Reg::T0, &["c0", "c1"])
            .label("c0")
            .br("end")
            .label("c1")
            .def(Reg::T1)
            .label("end")
            .halt();
        b.routine("f").def(Reg::V0).ret();
        let p = b.build().unwrap();

        let main = p.routine_by_name("main").unwrap();
        let f = p.routine_by_name("f").unwrap();
        let mbase = p.routine(main).addr();
        assert_eq!(mbase, BASE_ADDR);

        // Conditional branch to itself (label "top" is at offset 1).
        assert_eq!(
            p.routine(main).insns()[1],
            Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::A0, disp: -1 }
        );
        // The call resolves to f's entry.
        assert_eq!(p.direct_call_target(mbase + 2), Some((f, 0)));
        // The switch produced a jump table with in-routine targets.
        let table = p.jump_table(mbase + 3).unwrap();
        assert_eq!(table, &[mbase + 4, mbase + 5]);
    }

    #[test]
    fn alt_entries_are_callable() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f:mid").halt();
        b.routine("f").def(Reg::T0).label("mid").alt_entry("mid").def(Reg::V0).ret();
        let p = b.build().unwrap();
        let f = p.routine_by_name("f").unwrap();
        assert_eq!(p.routine(f).entry_offsets(), &[0, 1]);
        let main = p.routine_by_name("main").unwrap();
        assert_eq!(p.direct_call_target(p.routine(main).addr()), Some((f, 1)));
    }

    #[test]
    fn indirect_calls_record_target_info() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_known(Reg::PV, &["f", "g"]).jsr_unknown(Reg::PV).halt();
        b.routine("f").ret();
        b.routine("g").ret();
        let p = b.build().unwrap();
        let base = p.routines()[0].addr();
        let f_addr = p.routine(p.routine_by_name("f").unwrap()).addr();
        let g_addr = p.routine(p.routine_by_name("g").unwrap()).addr();
        assert_eq!(p.indirect_call_targets(base), &IndirectTargets::Known(vec![f_addr, g_addr]));
        assert_eq!(p.indirect_call_targets(base + 1), &IndirectTargets::Unknown);
    }

    #[test]
    fn undefined_label_is_reported() {
        let mut b = ProgramBuilder::new();
        b.routine("main").br("nowhere").halt();
        assert!(matches!(b.build().unwrap_err(), BuildError::UndefinedLabel { .. }));
    }

    #[test]
    fn undefined_routine_is_reported() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("ghost").halt();
        assert!(matches!(b.build().unwrap_err(), BuildError::UndefinedRoutine { .. }));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut b = ProgramBuilder::new();
        b.routine("main").label("x").def(Reg::T0).label("x").halt();
        assert!(matches!(b.build().unwrap_err(), BuildError::DuplicateLabel { .. }));
    }

    #[test]
    fn fall_through_end_is_reported() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0);
        assert!(matches!(b.build().unwrap_err(), BuildError::FallsThroughEnd { .. }));
        // A trailing call also falls through.
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f");
        b.routine("f").ret();
        assert!(matches!(b.build().unwrap_err(), BuildError::FallsThroughEnd { .. }));
    }

    #[test]
    fn set_entry_selects_routine() {
        let mut b = ProgramBuilder::new();
        b.routine("lib").ret();
        b.routine("start").halt();
        b.set_entry("start");
        let p = b.build().unwrap();
        assert_eq!(p.routine(p.entry()).name(), "start");

        let mut b = ProgramBuilder::new();
        b.routine("main").halt();
        b.set_entry("ghost");
        assert!(matches!(b.build().unwrap_err(), BuildError::UndefinedEntry(_)));
    }

    #[test]
    fn empty_builder_fails() {
        assert_eq!(ProgramBuilder::new().build().unwrap_err(), BuildError::NoRoutines);
    }

    #[test]
    fn resuming_a_routine_appends() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0);
        b.routine("main").halt();
        let p = b.build().unwrap();
        assert_eq!(p.routines()[0].len(), 2);
    }
}
