//! Property tests for the relinking rewriter: deleting any subset of
//! deletable instructions must yield a valid, correctly-relinked program.

use proptest::prelude::*;
use spike_program::{Program, Rewriter};

fn deletable_addrs(p: &Program) -> Vec<u32> {
    let mut out = Vec::new();
    for (_, r) in p.iter() {
        for (i, insn) in r.insns().iter().enumerate() {
            let addr = r.addr() + i as u32;
            if !insn.is_terminator() && !p.relocations().contains_key(&addr) {
                out.push(addr);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any subset of deletable instructions relinks into a valid program
    /// with exactly the expected size, intact routine names and flags,
    /// and consistent auxiliary info (guaranteed by `Program::new`'s
    /// validation inside `finish`).
    #[test]
    fn arbitrary_deletions_relink_validly(
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let program = spike_synth::generate_executable(seed, 4);
        let candidates = deletable_addrs(&program);

        let mut rw = Rewriter::new(&program);
        let mut deleted = 0usize;
        let mut edited = std::collections::BTreeSet::new();
        for (i, &addr) in candidates.iter().enumerate() {
            if mask & (1 << (i % 64)) != 0 {
                rw.delete(addr);
                deleted += 1;
                edited.insert(program.routine_containing(addr).expect("addr in program"));
            }
        }
        let (q, changed) = rw.finish().expect("relink succeeds");
        prop_assert_eq!(
            q.total_instructions(),
            program.total_instructions() - deleted
        );
        // Every routine with a deletion is reported changed (relinking may
        // legitimately change further routines), in routine-id order.
        for id in &edited {
            prop_assert!(changed.contains(id), "routine {id:?} had deletions");
        }
        prop_assert!(changed.windows(2).all(|w| w[0] < w[1]), "changed set is sorted");
        // A routine outside the changed set kept its instruction words.
        for (id, r) in program.iter() {
            if !changed.contains(&id) {
                prop_assert_eq!(r.insns(), q.routine(id).insns());
            }
        }
        for ((_, a), (_, b)) in program.iter().zip(q.iter()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.exported(), b.exported());
            prop_assert_eq!(a.entry_offsets().len(), b.entry_offsets().len());
        }
        // The relinked program still round-trips through the image format.
        prop_assert_eq!(Program::from_image(&q.to_image()).expect("loads"), q);
    }

    /// Deleting nothing is the identity and reports no changed routines.
    #[test]
    fn empty_deletion_is_identity(seed in any::<u64>()) {
        let program = spike_synth::generate_executable(seed, 3);
        let (q, changed) = Rewriter::new(&program).finish().expect("relinks");
        prop_assert_eq!(q, program);
        prop_assert!(changed.is_empty());
    }
}
