//! # spike-baseline
//!
//! Interprocedural dataflow over the **whole-program control-flow graph**,
//! in the style of Srivastava & Wall's OM system (`[Srivastava93]` in the
//! paper). This is the approach the Program Summary Graph is measured
//! against: same two phases, same meet-over-all-valid-paths answers, but
//! computed with per-basic-block dataflow values over every block and arc
//! of the supergraph instead of the compact PSG.
//!
//! Each basic block carries six dataflow sets (`MAY-USE`/`MAY-DEF`/
//! `MUST-DEF`, in and out) plus its `DEF`/`UBD` sets — the memory
//! comparison the paper makes in §4 ("the dataflow information that must
//! be maintained in each basic block is approximately equal to the
//! dataflow information contained in three PSG nodes").
//!
//! The crate exists for two purposes:
//!
//! * **correctness oracle** — `spike-core`'s PSG results must equal the
//!   full-CFG results on every program (tested on hand fixtures and
//!   property-tested over the synthetic generators);
//! * **cost comparator** — Tables 2/5 and Figures 14/15 compare analysis
//!   time and graph size between the two representations.
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").def(Reg::A0).call("id").put_int().halt();
//! b.routine("id").copy(Reg::A0, Reg::V0).ret();
//! let program = b.build()?;
//!
//! let psg = spike_core::analyze(&program);
//! let full = spike_baseline::analyze_baseline(&program);
//! let id = program.routine_by_name("id").unwrap();
//! assert_eq!(psg.summary.routine(id), &full.summaries[id.index()]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use spike_cfg::{BlockId, CallTarget, ProgramCfg, RoutineCfg, SupergraphCounts, TermKind};
use spike_core::parallel::{par_map, resolve_threads};
use spike_core::{saved_restored_registers, AnalysisOptions, RoutineSummary};
use spike_isa::{HeapSize, RegSet};
use spike_program::{Program, RoutineId};

/// Result of the full-CFG analysis.
#[derive(Debug)]
pub struct BaselineAnalysis {
    /// Per-routine summaries, indexed by routine id; field-compatible with
    /// the PSG analysis results.
    pub summaries: Vec<RoutineSummary>,
    /// The supergraph the analysis ran over.
    pub cfg: ProgramCfg,
    /// Supergraph size (Table 5's "Basic Blocks" / "CFG Arcs").
    pub counts: SupergraphCounts,
    /// Stage timings and memory footprint.
    pub stats: BaselineStats,
}

/// Timing and memory of the baseline analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineStats {
    /// Time building CFG structure and `DEF`/`UBD` sets.
    pub cfg_build: Duration,
    /// Time for the first dataflow phase.
    pub phase1: Duration,
    /// Time for the second dataflow phase.
    pub phase2: Duration,
    /// Block evaluations in phase 1.
    pub phase1_visits: usize,
    /// Block evaluations in phase 2.
    pub phase2_visits: usize,
    /// Worker threads the CFG build stage ran with (mirrors
    /// [`AnalysisOptions::threads`]).
    pub cfg_build_workers: usize,
    /// Bytes of analysis structures (CFGs + per-block dataflow sets).
    pub memory_bytes: usize,
}

impl BaselineStats {
    /// Total analysis time.
    pub fn total(&self) -> Duration {
        self.cfg_build + self.phase1 + self.phase2
    }
}

/// Dense whole-program block numbering plus the interprocedural dependency
/// wiring the worklists need.
struct Super {
    /// Global id of block 0 of each routine.
    base: Vec<usize>,
    total: usize,
    /// Per routine: callee-saved registers filtered from its summary.
    csr: Vec<RegSet>,
    /// Per routine: global ids of the call blocks that may target it.
    callers: Vec<Vec<usize>>,
    /// Per routine: global ids of the return points of its callers.
    caller_returns: Vec<Vec<usize>>,
    /// Per global block id `b`: call blocks whose return point is `b`
    /// (they read `b`'s dataflow values across the call).
    rt_watch_calls: Vec<Vec<usize>>,
    /// Per global block id `b` (a return point): exit blocks of the
    /// callees that may return to `b` (phase 2 re-seeding).
    rt_watch_exits: Vec<Vec<usize>>,
}

impl Super {
    fn build(
        program: &Program,
        cfg: &ProgramCfg,
        options: &AnalysisOptions,
        workers: usize,
    ) -> Super {
        let n_routines = cfg.cfgs().len();
        let mut base = Vec::with_capacity(n_routines);
        let mut total = 0usize;
        for c in cfg.cfgs() {
            base.push(total);
            total += c.blocks().len();
        }
        // The §3.4 saved/restored scan reads every routine body; like the
        // PSG builder's pass 1 it fans out per routine.
        let csr = par_map(n_routines, workers, |i| {
            if options.callee_saved_filter {
                saved_restored_registers(program, &cfg.cfgs()[i], &options.calling_standard)
            } else {
                RegSet::EMPTY
            }
        });

        let mut callers = vec![Vec::new(); n_routines];
        let mut caller_returns = vec![Vec::new(); n_routines];
        let mut rt_watch_calls = vec![Vec::new(); total];
        let mut rt_watch_exits = vec![Vec::new(); total];
        for (ri, c) in cfg.cfgs().iter().enumerate() {
            for (bi, b) in c.blocks().iter().enumerate() {
                let TermKind::Call { target, return_to } = b.term() else {
                    continue;
                };
                let call_gid = base[ri] + bi;
                let rt_gid = return_to.map(|rt| base[ri] + rt.index());
                if let Some(rt) = rt_gid {
                    rt_watch_calls[rt].push(call_gid);
                }
                let mut note = |rid: RoutineId| {
                    callers[rid.index()].push(call_gid);
                    if let Some(rt) = rt_gid {
                        caller_returns[rid.index()].push(rt);
                        for &x in cfg.routine_cfg(rid).exits() {
                            rt_watch_exits[rt].push(base[rid.index()] + x.index());
                        }
                    }
                };
                match target {
                    CallTarget::Direct(rid, _) => note(*rid),
                    CallTarget::IndirectKnown(list) => {
                        for (rid, _) in list {
                            note(*rid);
                        }
                    }
                    CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {}
                }
            }
        }

        Super { base, total, csr, callers, caller_returns, rt_watch_calls, rt_watch_exits }
    }

    fn gid(&self, routine: RoutineId, block: BlockId) -> usize {
        self.base[routine.index()] + block.index()
    }

    fn routine_of(&self, gid: usize) -> usize {
        match self.base.binary_search(&gid) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Triple {
    may_use: RegSet,
    may_def: RegSet,
    must_def: RegSet,
}

/// Analyzes `program` over the full supergraph with default options.
pub fn analyze_baseline(program: &Program) -> BaselineAnalysis {
    analyze_baseline_with(program, &AnalysisOptions::default())
}

/// Analyzes `program` over the full supergraph.
pub fn analyze_baseline_with(program: &Program, options: &AnalysisOptions) -> BaselineAnalysis {
    let n_routines = program.routines().len();
    let workers = resolve_threads(options.threads).clamp(1, n_routines.max(1));

    // CFG structure and DEF/UBD are independent per routine: fan out over
    // the same scoped-thread helper the PSG front-end uses, then reattach
    // in routine-id order (results are identical at any worker count).
    let t = Instant::now();
    let cfg = ProgramCfg::from_cfgs(par_map(n_routines, workers, |i| {
        RoutineCfg::build(program, RoutineId::from_index(i))
    }));
    let cfg_build = t.elapsed();
    let sp = Super::build(program, &cfg, options, workers);

    // The summary a call site sees for its callees: meet over targets,
    // callee-saved registers filtered (§3.4), calling-standard assumptions
    // for unknown targets (§3.5).
    let entry_gid = |rid: RoutineId, entry: usize| -> usize {
        sp.gid(rid, cfg.routine_cfg(rid).entries()[entry])
    };
    let call_effect = |ins: &[Triple], target: &CallTarget| -> Triple {
        let one = |ins: &[Triple], rid: RoutineId, entry: usize| -> Triple {
            let t = ins[entry_gid(rid, entry)];
            let f = sp.csr[rid.index()];
            Triple { may_use: t.may_use - f, may_def: t.may_def - f, must_def: t.must_def - f }
        };
        match target {
            CallTarget::Direct(rid, entry) => one(ins, *rid, *entry),
            CallTarget::IndirectKnown(list) => {
                let mut it = list.iter();
                let &(r0, e0) = it.next().expect("non-empty target list");
                let mut acc = one(ins, r0, e0);
                for &(r, e) in it {
                    let t = one(ins, r, e);
                    acc.may_use |= t.may_use;
                    acc.may_def |= t.may_def;
                    acc.must_def &= t.must_def;
                }
                acc
            }
            CallTarget::IndirectUnknown => Triple {
                may_use: options.calling_standard.unknown_call_used(),
                may_def: options.calling_standard.unknown_call_killed(),
                must_def: options.calling_standard.unknown_call_defined(),
            },
            // §3.5 extension: compiler-provided exact effects.
            CallTarget::IndirectHinted { used, defined, killed } => {
                Triple { may_use: *used, may_def: *killed, must_def: *defined }
            }
        }
    };

    // ---- Phase 1: MAY-USE / MAY-DEF / MUST-DEF per block (backward). ----
    // Stratified like the PSG solver: MAY-DEF/MUST-DEF first (their
    // equations are self-contained and monotone), then MAY-USE with the
    // frozen MUST-DEF kill sets.
    let t = Instant::now();
    // MUST-DEF iterates downward from ⊤ (greatest fixpoint); the MAY sets
    // grow from ⊥.
    let mut ins =
        vec![
            Triple { may_use: RegSet::EMPTY, may_def: RegSet::EMPTY, must_def: RegSet::ALL };
            sp.total
        ];
    let mut phase1_visits = 0usize;

    for stratum in [0, 1] {
        let mut queued = vec![true; sp.total];
        let mut wl: VecDeque<usize> = (0..sp.total).rev().collect();
        while let Some(g) = wl.pop_front() {
            queued[g] = false;
            phase1_visits += 1;
            let ri = sp.routine_of(g);
            let rcfg: &RoutineCfg = &cfg.cfgs()[ri];
            let b = BlockId::from_index(g - sp.base[ri]);
            let block = rcfg.block(b);

            let out = match block.term() {
                TermKind::Ret => Triple::default(),
                // After a halt nothing runs: the MAY sets are empty and
                // MUST-DEF is vacuously ⊤ — a path that never returns
                // must not weaken a caller-visible intersection.
                TermKind::Halt => {
                    Triple { may_use: RegSet::EMPTY, may_def: RegSet::EMPTY, must_def: RegSet::ALL }
                }
                TermKind::UnknownJump => Triple {
                    // A §3.5 hint narrows the live set at the unknown
                    // target; everything is still assumed clobbered.
                    may_use: program.jump_hint(block.term_addr()).unwrap_or(RegSet::ALL),
                    may_def: RegSet::ALL,
                    must_def: RegSet::EMPTY,
                },
                TermKind::Call { target, return_to } => {
                    let eff = call_effect(&ins, target);
                    match return_to {
                        Some(rt) => {
                            let after = ins[sp.base[ri] + rt.index()];
                            Triple {
                                may_use: eff.may_use | (after.may_use - eff.must_def),
                                may_def: eff.may_def | after.may_def,
                                must_def: eff.must_def | after.must_def,
                            }
                        }
                        None => eff,
                    }
                }
                _ => {
                    let mut acc = Triple::default();
                    let mut first = true;
                    for &s in block.succs() {
                        let t = ins[sp.base[ri] + s.index()];
                        acc.may_use |= t.may_use;
                        acc.may_def |= t.may_def;
                        if first {
                            acc.must_def = t.must_def;
                            first = false;
                        } else {
                            acc.must_def &= t.must_def;
                        }
                    }
                    acc
                }
            };

            let new = if stratum == 0 {
                Triple {
                    may_use: RegSet::EMPTY,
                    may_def: block.def() | out.may_def,
                    must_def: block.def() | out.must_def,
                }
            } else {
                Triple { may_use: block.ubd() | (out.may_use - block.def()), ..ins[g] }
            };
            if new != ins[g] {
                ins[g] = new;
                let mut push = |x: usize| {
                    if !std::mem::replace(&mut queued[x], true) {
                        wl.push_back(x);
                    }
                };
                for &p in block.preds() {
                    push(sp.base[ri] + p.index());
                }
                // Call blocks read their return point's values across the
                // call.
                for &c in &sp.rt_watch_calls[g] {
                    push(c);
                }
                // An entrance's values feed every call block targeting it.
                if rcfg.entries().contains(&b) {
                    for &c in &sp.callers[ri] {
                        push(c);
                    }
                }
            }
        }
    }
    let phase1 = t.elapsed();

    // ---- Phase 2: liveness per block (backward over valid paths). ----
    let t = Instant::now();
    let mut live_in = vec![RegSet::EMPTY; sp.total];
    let mut live_out = vec![RegSet::EMPTY; sp.total];
    let mut exit_seed = vec![RegSet::EMPTY; sp.total];
    for (rid, r) in program.iter() {
        if r.exported() || rid == program.entry() {
            for &x in cfg.routine_cfg(rid).exits() {
                exit_seed[sp.gid(rid, x)] = options.exported_live_at_exit;
            }
        }
    }

    let mut queued = vec![true; sp.total];
    let mut wl: VecDeque<usize> = (0..sp.total).rev().collect();
    let mut phase2_visits = 0usize;

    while let Some(g) = wl.pop_front() {
        queued[g] = false;
        phase2_visits += 1;
        let ri = sp.routine_of(g);
        let rcfg: &RoutineCfg = &cfg.cfgs()[ri];
        let b = BlockId::from_index(g - sp.base[ri]);
        let block = rcfg.block(b);

        let out = match block.term() {
            // Live at an exit: union over the return points of every call
            // that may target this routine, plus the external-caller seed.
            TermKind::Ret => {
                let mut acc = exit_seed[g];
                for &rt in &sp.caller_returns[ri] {
                    acc |= live_in[rt];
                }
                acc
            }
            TermKind::Halt => RegSet::EMPTY,
            TermKind::UnknownJump => program.jump_hint(block.term_addr()).unwrap_or(RegSet::ALL),
            TermKind::Call { target, return_to } => {
                let eff = call_effect(&ins, target);
                match return_to {
                    Some(rt) => eff.may_use | (live_in[sp.base[ri] + rt.index()] - eff.must_def),
                    None => eff.may_use,
                }
            }
            _ => {
                let mut acc = RegSet::EMPTY;
                for &s in block.succs() {
                    acc |= live_in[sp.base[ri] + s.index()];
                }
                acc
            }
        };

        let new_in = block.ubd() | (out - block.def());
        if out != live_out[g] || new_in != live_in[g] {
            live_out[g] = out;
            live_in[g] = new_in;
            let mut push = |x: usize| {
                if !std::mem::replace(&mut queued[x], true) {
                    wl.push_back(x);
                }
            };
            for &p in block.preds() {
                push(sp.base[ri] + p.index());
            }
            // Call blocks read their return point's liveness; callee exits
            // read the liveness of the return points they may return to.
            for &c in &sp.rt_watch_calls[g] {
                push(c);
            }
            for &x in &sp.rt_watch_exits[g] {
                push(x);
            }
        }
    }
    let phase2 = t.elapsed();

    // ---- Extract per-routine summaries. ----
    let mut summaries = Vec::with_capacity(cfg.cfgs().len());
    for (ri, rcfg) in cfg.cfgs().iter().enumerate() {
        let rid = RoutineId::from_index(ri);
        let f = sp.csr[ri];
        let entries = rcfg.entries();
        summaries.push(RoutineSummary {
            call_used: entries.iter().map(|&e| ins[sp.gid(rid, e)].may_use - f).collect(),
            call_defined: entries.iter().map(|&e| ins[sp.gid(rid, e)].must_def - f).collect(),
            call_killed: entries.iter().map(|&e| ins[sp.gid(rid, e)].may_def - f).collect(),
            live_at_entry: entries.iter().map(|&e| live_in[sp.gid(rid, e)]).collect(),
            live_at_exit: rcfg.exits().iter().map(|&x| live_out[sp.gid(rid, x)]).collect(),
            saved_restored: f,
        });
    }

    let counts = cfg.counts();
    // The paper's §4 accounting: each block holds six dataflow sets (three
    // in, three out) plus DEF/UBD; we keep `ins` as one Triple and the
    // transient out is recomputed, so charge both to match.
    let memory_bytes = cfg.heap_bytes()
        + ins.capacity() * std::mem::size_of::<Triple>() * 2
        + live_in.heap_bytes()
        + live_out.heap_bytes()
        + summaries.heap_bytes();

    BaselineAnalysis {
        summaries,
        cfg,
        counts,
        stats: BaselineStats {
            cfg_build,
            phase1,
            phase2,
            phase1_visits,
            phase2_visits,
            cfg_build_workers: workers,
            memory_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{BranchCond, Reg};
    use spike_program::ProgramBuilder;

    fn equivalent(program: &Program) {
        let psg = spike_core::analyze(program);
        let full = analyze_baseline(program);
        for (rid, r) in program.iter() {
            assert_eq!(
                psg.summary.routine(rid),
                &full.summaries[rid.index()],
                "summary mismatch for {} ({rid})",
                r.name()
            );
        }
    }

    #[test]
    fn paper_figure2_program_matches_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("p1").def(Reg::V0).def(Reg::T0).call("p2").use_reg(Reg::V0).ret();
        b.routine("p2")
            .cond(BranchCond::Eq, Reg::T0, "else")
            .def(Reg::T1)
            .def(Reg::T2)
            .br("join")
            .label("else")
            .def(Reg::T1)
            .label("join")
            .ret();
        b.routine("p3").def(Reg::T0).call("p2").ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn recursion_matches_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("fib").put_int().halt();
        b.routine("fib")
            .cond(BranchCond::Le, Reg::A0, "base")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 0)
            .op_imm(spike_isa::AluOp::Sub, Reg::A0, 1, Reg::A0)
            .call("fib")
            .load(Reg::RA, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret()
            .label("base")
            .lda(Reg::V0, Reg::ZERO, 1)
            .ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn mutual_recursion_matches_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("even").put_int().halt();
        b.routine("even")
            .cond(BranchCond::Eq, Reg::A0, "yes")
            .call("odd")
            .ret()
            .label("yes")
            .lda(Reg::V0, Reg::ZERO, 1)
            .ret();
        b.routine("odd")
            .cond(BranchCond::Eq, Reg::A0, "no")
            .call("even")
            .ret()
            .label("no")
            .lda(Reg::V0, Reg::ZERO, 0)
            .ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn indirect_and_unknown_calls_match_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_known(Reg::PV, &["a", "b"]).jsr_unknown(Reg::PV).halt();
        b.routine("a").def(Reg::V0).ret();
        b.routine("b").use_reg(Reg::A0).def(Reg::V0).def(Reg::T3).ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn callee_saved_filtering_matches_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::S0, Reg::SP, 0)
            .def(Reg::S0)
            .use_reg(Reg::S0)
            .load(Reg::S0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        equivalent(&p);
        let full = analyze_baseline(&p);
        let f = p.routine_by_name("f").unwrap();
        assert!(!full.summaries[f.index()].call_killed[0].contains(Reg::S0));
        assert_eq!(full.summaries[f.index()].saved_restored, RegSet::of(&[Reg::S0]));
    }

    #[test]
    fn multiway_branches_match_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .label("top")
            .switch(Reg::T0, &["c1", "c2", "c3"])
            .label("c1")
            .call("f")
            .br("top")
            .label("c2")
            .call("g")
            .br("top")
            .label("c3")
            .halt();
        b.routine("f").def(Reg::V0).ret();
        b.routine("g").use_reg(Reg::A1).ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn exported_routines_match_psg() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("api").halt();
        b.routine("api").export().def(Reg::V0).ret();
        equivalent(&b.build().unwrap());
    }

    #[test]
    fn synthetic_profiles_match_psg() {
        for name in ["compress", "li", "perl"] {
            let profile = spike_synth::profile(name).unwrap();
            let program = spike_synth::generate(&profile, 40.0 / profile.routines as f64, 17);
            equivalent(&program);
        }
    }

    #[test]
    fn executable_programs_match_psg() {
        for seed in 0..15 {
            let program = spike_synth::generate_executable(seed, 5);
            equivalent(&program);
        }
    }
}
