//! Per-request dispatch: turns a decoded [`Request`] plus its image blob
//! into a [`Response`], routing images through the warm
//! [`ProgramStore`](crate::cache::ProgramStore).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spike_core::AnalysisOptions;
use spike_program::Program;

use crate::cache::ProgramStore;
use crate::metrics::Metrics;
use crate::proto::{Command, ErrorKind, QueryKind, Request, Response};
use crate::render;

/// A request's processing budget, measured on the monotonic clock from
/// the moment the daemon finished reading its frame.
pub struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    /// Starts the clock with `limit_ms` to go. `0` is already expired.
    pub fn starting_now(limit_ms: u64) -> Deadline {
        Deadline { start: Instant::now(), limit: Duration::from_millis(limit_ms) }
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }
}

/// The shared state a worker needs to serve one request.
pub struct Handler {
    /// The cross-request analysis cache.
    pub store: Arc<ProgramStore>,
    /// Daemon counters.
    pub metrics: Arc<Metrics>,
    /// Work-queue capacity, echoed in `stats`.
    pub queue_capacity: usize,
    /// Set by the `shutdown` command; the accept loops watch it.
    pub shutdown: Arc<AtomicBool>,
    /// Cluster membership, when this instance is one shard of a
    /// cluster. Image-bearing requests owned by a different shard are
    /// forwarded there and the owner's reply relayed verbatim.
    pub cluster: Option<Arc<crate::cluster::ShardIdentity>>,
}

impl Handler {
    /// Serves one request. The frame blob is `image ++ profile` with the
    /// profile occupying the final `req.profile_len` bytes (zero for no
    /// profile). Returns the response and the response blob (non-empty
    /// only for `optimize`, which returns the rewritten image). Never
    /// panics outward for request-level failures — those become
    /// structured error responses; a genuine handler panic is the
    /// caller's `catch_unwind` problem.
    pub fn handle(&self, req: &Request, blob: &[u8], deadline: &Deadline) -> (Response, Vec<u8>) {
        if deadline.expired() {
            self.metrics.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            return (Response::error(ErrorKind::Deadline, "deadline expired"), Vec::new());
        }
        let Some(image_len) = blob.len().checked_sub(req.profile_len) else {
            return (
                Response::error(
                    ErrorKind::BadRequest,
                    format!(
                        "profile_len {} exceeds the {}-byte frame blob",
                        req.profile_len,
                        blob.len()
                    ),
                ),
                Vec::new(),
            );
        };
        let (image, profile_bytes) = blob.split_at(image_len);
        if req.cmd.wants_image() && image.is_empty() {
            return (
                Response::error(ErrorKind::BadRequest, "request carries no image"),
                Vec::new(),
            );
        }
        // Misroute forwarding: a request for an image another shard owns
        // is relayed to the owner, whose renderers produce the same
        // bytes this shard would — the client cannot tell which shard
        // answered, except through the diagnostics. Ownership is keyed
        // on the image alone; the forwarded frame carries the full blob
        // so the owner sees the profile too.
        if let Some(cluster) = &self.cluster {
            if let Some(owner) = cluster.misrouted(image) {
                self.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
                let addr = &cluster.ring.shards()[owner];
                return match crate::cluster::forward_frame(addr, &req.to_json(), blob) {
                    Ok((json, blob)) => match Response::from_json(&json) {
                        Ok(mut resp) => {
                            let _ =
                                writeln!(resp.diag, "cluster: forwarded to shard {owner} ({addr})");
                            (resp, blob)
                        }
                        Err(msg) => (Response::error(ErrorKind::Panic, msg), Vec::new()),
                    },
                    Err(msg) => (Response::error(ErrorKind::Busy, msg), Vec::new()),
                };
            }
        }
        // A profile blob must parse and must bind to *this* image; a
        // stale or corrupt profile is a clean structured error, exactly
        // like the local CLI's exit-2 message.
        let profile = if req.profile_len > 0 {
            match spike_profile::Profile::from_bytes(profile_bytes) {
                Ok(p) if !p.matches(image) => {
                    return (
                        Response::error(
                            ErrorKind::BadRequest,
                            "profile was collected from a different program image (stale profile)",
                        ),
                        Vec::new(),
                    );
                }
                Ok(p) => Some(p),
                Err(e) => {
                    return (
                        Response::error(ErrorKind::BadRequest, format!("bad profile blob: {e}")),
                        Vec::new(),
                    );
                }
            }
        } else {
            None
        };
        let (mut response, blob) = match &req.cmd {
            Command::Analyze { summaries, routine } => (
                self.analyze(req, image, profile.as_ref(), *summaries, routine.as_deref()),
                Vec::new(),
            ),
            Command::Lint { format } => (self.lint(req, image, *format), Vec::new()),
            Command::Optimize { out, iterate, incremental, licm } => {
                self.optimize(req, image, profile, out, *iterate, *incremental, *licm)
            }
            Command::Query { kind, routine, callee } => {
                (self.query(req, image, *kind, routine, callee.as_deref()), Vec::new())
            }
            Command::Compare => (self.compare(req, image), Vec::new()),
            Command::Stats => (self.stats(), Vec::new()),
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                (
                    Response::ok(String::new(), "draining; daemon exits when idle\n".into()),
                    Vec::new(),
                )
            }
        };
        // Work that outlived its budget is thrown away rather than
        // returned late: the client asked for a bound, not a result.
        if deadline.expired() && response.error.is_none() {
            self.metrics.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            response = Response::error(ErrorKind::Deadline, "deadline expired during processing");
            return (response, Vec::new());
        }
        (response, blob)
    }

    fn analyze(
        &self,
        req: &Request,
        image: &[u8],
        profile: Option<&spike_profile::Profile>,
        summaries: bool,
        routine: Option<&str>,
    ) -> Response {
        let (entry, outcome) = match self.store.get_or_analyze(image) {
            Ok(x) => x,
            Err(msg) => return Response::error(ErrorKind::BadImage, msg),
        };
        match render::analyze_report(
            &req.image_name,
            &entry.program,
            &entry.analysis,
            summaries,
            routine,
        ) {
            Ok(mut stdout) => {
                if let Some(p) = profile {
                    stdout.push_str(&render::profile_report(&entry.program, p));
                }
                let mut diag = render::analyze_diag(&entry.analysis.stats);
                let _ = writeln!(diag, "cache: {}", outcome.name());
                Response::ok(stdout, diag)
            }
            Err(msg) => Response::error(ErrorKind::BadRequest, msg),
        }
    }

    fn lint(&self, req: &Request, image: &[u8], format: crate::proto::LintFormat) -> Response {
        // Mirrors the local CLI's contract: an unreadable *file* is the
        // client's problem (exit 2 before any request is sent), but bytes
        // that fail image validation are a `malformed-image` finding with
        // exit 1, so automated callers see it in the report.
        let (report, diag) = match self.store.get_or_analyze(image) {
            Ok((entry, outcome)) => (
                spike_lint::lint_with(
                    &entry.program,
                    &entry.analysis,
                    &spike_lint::LintOptions::default(),
                ),
                format!("cache: {}\n", outcome.name()),
            ),
            Err(msg) => (spike_lint::malformed_image(msg), String::new()),
        };
        let stdout = render::lint_report(&req.image_name, &report, format);
        let exit = if report.errors() > 0 { 1 } else { 0 };
        Response { exit, stdout, diag, error: None }
    }

    fn query(
        &self,
        req: &Request,
        image: &[u8],
        kind: QueryKind,
        routine: &str,
        callee: Option<&str>,
    ) -> Response {
        let (entry, outcome) = match self.store.get_or_query(image) {
            Ok(x) => x,
            Err(msg) => return Response::error(ErrorKind::BadImage, msg),
        };
        let program = &entry.program;
        let Some(rid) = program.routine_by_name(routine) else {
            return Response::error(ErrorKind::BadRequest, format!("no routine named `{routine}`"));
        };
        let query = match kind {
            QueryKind::Summary => Some(spike_core::Query::Summary(rid)),
            QueryKind::LiveAtEntry => Some(spike_core::Query::LiveAtEntry(rid)),
            QueryKind::Uninit => None,
            QueryKind::Reaches => {
                let Some(callee) = callee else {
                    return Response::error(
                        ErrorKind::BadRequest,
                        "reaches query needs a callee routine",
                    );
                };
                let Some(cid) = program.routine_by_name(callee) else {
                    return Response::error(
                        ErrorKind::BadRequest,
                        format!("no routine named `{callee}`"),
                    );
                };
                Some(spike_core::Query::Reaches { caller: rid, callee: cid })
            }
        };

        let mut cache = entry.lock();
        let (mut response, stats) = match query {
            Some(q) => {
                let (answer, stats) = cache.query(program, &q);
                let stdout = render::query_report(routine, callee, &answer);
                (Response::ok(stdout, String::new()), stats)
            }
            None => {
                // `uninit` is a lint-shaped query: exit 1 with findings,
                // rendered exactly like `spike lint`'s human format.
                let (report, stats) = cache.with_uninit_facts(program, rid, |cfg, summary| {
                    spike_lint::uninit_routine(program, cfg, summary, rid)
                });
                let stdout =
                    render::lint_report(&req.image_name, &report, crate::proto::LintFormat::Human);
                let exit = if report.errors() > 0 { 1 } else { 0 };
                (Response { exit, stdout, diag: String::new(), error: None }, stats)
            }
        };
        // The engine may have grown while solving this query's cone;
        // re-charge the entry so the LRU budget stays honest.
        let bytes = image.len() + cache.heap_bytes();
        drop(cache);
        self.store.recharge_query(entry.key, bytes);

        let mut diag = render::query_diag(&stats);
        let _ = writeln!(diag, "cache: {}", outcome.name());
        response.diag = diag;
        response
    }

    #[allow(clippy::too_many_arguments)]
    fn optimize(
        &self,
        req: &Request,
        image: &[u8],
        profile: Option<spike_profile::Profile>,
        out: &str,
        iterate: bool,
        incremental: bool,
        licm: bool,
    ) -> (Response, Vec<u8>) {
        // Optimization rewrites the program, so there is nothing to share
        // across requests: parse and run fresh, exactly like the local
        // path. (The *analysis* passes inside optimize_with still use the
        // optimizer's own per-run incremental cache.)
        let program = match Program::from_image(image) {
            Ok(p) => p,
            Err(e) => return (Response::error(ErrorKind::BadImage, e.to_string()), Vec::new()),
        };
        let pgo = profile.is_some();
        let options = spike_opt::OptOptions {
            analysis: self.store.options().clone(),
            iterate,
            incremental,
            licm,
            profile,
            ..spike_opt::OptOptions::default()
        };
        match spike_opt::optimize_with(&program, &options) {
            Ok((optimized, report)) => {
                let stdout =
                    render::optimize_report(&req.image_name, out, &report, incremental, pgo);
                (Response::ok(stdout, String::new()), optimized.to_image())
            }
            Err(e) => (Response::error(ErrorKind::BadImage, e.to_string()), Vec::new()),
        }
    }

    fn compare(&self, _req: &Request, image: &[u8]) -> Response {
        let (entry, outcome) = match self.store.get_or_analyze(image) {
            Ok(x) => x,
            Err(msg) => return Response::error(ErrorKind::BadImage, msg),
        };
        // The PSG side comes warm from the cache; the whole-CFG baseline
        // is the expensive cross-check and always runs fresh.
        let opts: &AnalysisOptions = self.store.options();
        let full = spike_baseline::analyze_baseline_with(&entry.program, opts);
        match render::compare_report(&entry.program, &entry.analysis, &full) {
            Ok(stdout) => {
                let mut diag = render::compare_diag(&entry.analysis, &full);
                let _ = writeln!(diag, "cache: {}", outcome.name());
                Response::ok(stdout, diag)
            }
            Err(msg) => Response::error(ErrorKind::Panic, msg),
        }
    }

    fn stats(&self) -> Response {
        let snapshot = self.store.snapshot();
        let json = self.metrics.to_stats_json(&snapshot, self.queue_capacity);
        Response::ok(format!("{json}\n"), String::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::LintFormat;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn handler() -> Handler {
        Handler {
            store: Arc::new(ProgramStore::new(AnalysisOptions::default(), usize::MAX)),
            metrics: Arc::new(Metrics::default()),
            queue_capacity: 8,
            shutdown: Arc::new(AtomicBool::new(false)),
            cluster: None,
        }
    }

    fn image() -> Vec<u8> {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("leaf").put_int().halt();
        b.routine("leaf").copy(Reg::A0, Reg::V0).ret();
        b.build().unwrap().to_image()
    }

    fn req(cmd: Command) -> Request {
        Request { cmd, image_name: "x.img".into(), deadline_ms: None, profile_len: 0 }
    }

    fn far_deadline() -> Deadline {
        Deadline::starting_now(60_000)
    }

    #[test]
    fn analyze_matches_the_shared_renderer() {
        let h = handler();
        let img = image();
        let r = req(Command::Analyze { summaries: false, routine: None });
        let (resp, blob) = h.handle(&r, &img, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(blob.is_empty());

        let program = Program::from_image(&img).unwrap();
        let analysis = spike_core::analyze(&program);
        let expected = render::analyze_report("x.img", &program, &analysis, false, None).unwrap();
        assert_eq!(resp.stdout, expected);
        assert!(resp.diag.contains("cache: miss"));

        // Second identical request hits the cache, byte-identically.
        let (resp2, _) = h.handle(&r, &img, &far_deadline());
        assert_eq!(resp2.stdout, resp.stdout);
        assert!(resp2.diag.contains("cache: hit"));
    }

    /// A frame blob of `image ++ profile` plus the request that
    /// announces the split.
    fn with_profile(cmd: Command, image: &[u8]) -> (Request, Vec<u8>) {
        let program = Program::from_image(image).unwrap();
        let (_, exec) = spike_sim::run_profiled(&program, 10_000);
        let prof = spike_profile::Profile::collect(&program, &exec).to_bytes();
        let mut blob = image.to_vec();
        blob.extend_from_slice(&prof);
        let mut r = req(cmd);
        r.profile_len = prof.len();
        (r, blob)
    }

    #[test]
    fn analyze_with_profile_appends_the_hot_cold_section() {
        let h = handler();
        let img = image();
        let (r, blob) = with_profile(Command::Analyze { summaries: false, routine: None }, &img);
        let (resp, _) = h.handle(&r, &blob, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(resp.stdout.contains("hot/cold:"), "{}", resp.stdout);

        // The section is exactly what the shared renderer appends, so
        // the client path stays byte-identical to the local one.
        let program = Program::from_image(&img).unwrap();
        let (_, exec) = spike_sim::run_profiled(&program, 10_000);
        let prof = spike_profile::Profile::collect(&program, &exec);
        let analysis = spike_core::analyze(&program);
        let mut expected =
            render::analyze_report("x.img", &program, &analysis, false, None).unwrap();
        expected.push_str(&render::profile_report(&program, &prof));
        assert_eq!(resp.stdout, expected);
    }

    #[test]
    fn stale_or_corrupt_profiles_are_bad_requests() {
        let h = handler();
        let img = image();
        // A profile of a *different* program: parses, doesn't bind.
        let other = spike_synth::generate_executable(3, 2);
        let (_, exec) = spike_sim::run_profiled(&other, 10_000);
        let prof = spike_profile::Profile::collect(&other, &exec).to_bytes();
        let mut blob = img.clone();
        blob.extend_from_slice(&prof);
        let mut r = req(Command::Analyze { summaries: false, routine: None });
        r.profile_len = prof.len();
        let (resp, _) = h.handle(&r, &blob, &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));
        assert!(resp.error.unwrap().1.contains("stale profile"));

        // Garbage where the profile should be.
        let mut blob = img.clone();
        blob.extend_from_slice(b"not a profile");
        r.profile_len = 13;
        let (resp, _) = h.handle(&r, &blob, &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));

        // profile_len longer than the whole blob.
        r.profile_len = img.len() + 1000;
        let (resp, _) = h.handle(&r, &img, &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));
    }

    #[test]
    fn optimize_honors_licm_and_profile_flags() {
        let h = handler();
        let img = image();
        let opt = |licm| Command::Optimize {
            out: "o.img".into(),
            iterate: false,
            incremental: true,
            licm,
        };
        let (resp, blob) = h.handle(&req(opt(true)), &img, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(!blob.is_empty());
        assert!(resp.stdout.contains("(static loop-depth estimate)"), "{}", resp.stdout);

        let (r, pblob) = with_profile(opt(false), &img);
        let (resp, _) = h.handle(&r, &pblob, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(resp.stdout.contains("(profile-weighted)"), "{}", resp.stdout);
        assert!(resp.stdout.contains("licm: 0 load(s) + 0 op(s) hoisted"), "{}", resp.stdout);
    }

    #[test]
    fn lint_reports_malformed_images_as_findings() {
        let h = handler();
        let r = req(Command::Lint { format: LintFormat::Human });
        let (resp, _) = h.handle(&r, b"garbage", &far_deadline());
        assert_eq!(resp.exit, 1);
        assert!(resp.stdout.contains("error[malformed-image]"));
        assert!(resp.error.is_none());
    }

    #[test]
    fn expired_deadline_rejects_before_work() {
        let h = handler();
        let r = req(Command::Analyze { summaries: false, routine: None });
        let (resp, _) = h.handle(&r, &image(), &Deadline::starting_now(0));
        assert_eq!(resp.exit, 2);
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::Deadline));
        // The rejected request never touched the cache.
        assert_eq!(h.store.snapshot().entries, 0);
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let h = handler();
        let (resp, _) = h.handle(&req(Command::Shutdown), &[], &far_deadline());
        assert_eq!(resp.exit, 0);
        assert!(h.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn missing_image_is_a_bad_request() {
        let h = handler();
        let r = req(Command::Analyze { summaries: false, routine: None });
        let (resp, _) = h.handle(&r, &[], &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));
    }

    #[test]
    fn query_answers_match_the_analyze_slice() {
        let h = handler();
        let img = image();
        let q =
            req(Command::Query { kind: QueryKind::Summary, routine: "main".into(), callee: None });
        let (resp, blob) = h.handle(&q, &img, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(blob.is_empty());
        assert!(resp.diag.contains("query: cone"));
        assert!(resp.diag.contains("cache: miss"));

        // Every line of the demand-driven answer appears verbatim in the
        // whole-program analyze slice for the same routine.
        let program = Program::from_image(&img).unwrap();
        let analysis = spike_core::analyze(&program);
        let slice =
            render::analyze_report("x.img", &program, &analysis, false, Some("main")).unwrap();
        for line in resp.stdout.lines() {
            assert!(slice.contains(line), "query line {line:?} missing from analyze slice");
        }

        // A repeat hits the warm entry and re-solves nothing.
        let (resp2, _) = h.handle(&q, &img, &far_deadline());
        assert_eq!(resp2.stdout, resp.stdout);
        assert!(resp2.diag.contains("solved 0 + 0, 0 visit(s)"), "{}", resp2.diag);
        assert!(resp2.diag.contains("cache: hit"));
    }

    #[test]
    fn query_after_analyze_answers_from_the_full_state() {
        let h = handler();
        let img = image();
        h.handle(&req(Command::Analyze { summaries: false, routine: None }), &img, &far_deadline());
        let q = req(Command::Query {
            kind: QueryKind::LiveAtEntry,
            routine: "leaf".into(),
            callee: None,
        });
        let (resp, _) = h.handle(&q, &img, &far_deadline());
        assert_eq!(resp.exit, 0, "{:?}", resp.error);
        assert!(resp.diag.contains("query: answered from the full analysis"), "{}", resp.diag);
    }

    #[test]
    fn reaches_query_renders_both_verdicts() {
        let h = handler();
        let img = image();
        let q = |caller: &str, callee: &str| {
            req(Command::Query {
                kind: QueryKind::Reaches,
                routine: caller.into(),
                callee: Some(callee.into()),
            })
        };
        let (resp, _) = h.handle(&q("main", "leaf"), &img, &far_deadline());
        assert_eq!(resp.stdout, "main reaches leaf\n");
        let (resp, _) = h.handle(&q("leaf", "main"), &img, &far_deadline());
        assert_eq!(resp.stdout, "leaf does not reach main\n");
    }

    #[test]
    fn uninit_query_exits_like_lint() {
        let h = handler();
        let q =
            req(Command::Query { kind: QueryKind::Uninit, routine: "main".into(), callee: None });
        let (resp, _) = h.handle(&q, &image(), &far_deadline());
        assert_eq!(resp.exit, 0, "the sample image is clean: {:?}", resp.stdout);
        assert!(resp.stdout.ends_with("0 error(s), 0 warning(s)\n"));

        let (defective, _) =
            spike_synth::generate_executable_with_defect(7, 5, spike_synth::DefectKind::UninitRead);
        let rname = {
            let report = spike_lint::lint(&defective);
            report.diagnostics()[0].routine.clone()
        };
        let q = req(Command::Query { kind: QueryKind::Uninit, routine: rname, callee: None });
        let (resp, _) = h.handle(&q, &defective.to_image(), &far_deadline());
        assert_eq!(resp.exit, 1, "{}", resp.stdout);
        assert!(resp.stdout.contains("uninit"));
    }

    #[test]
    fn query_rejects_unknown_routines_and_missing_callees() {
        let h = handler();
        let img = image();
        let q =
            req(Command::Query { kind: QueryKind::Summary, routine: "nope".into(), callee: None });
        let (resp, _) = h.handle(&q, &img, &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));
        let q =
            req(Command::Query { kind: QueryKind::Reaches, routine: "main".into(), callee: None });
        let (resp, _) = h.handle(&q, &img, &far_deadline());
        assert_eq!(resp.error.as_ref().map(|(k, _)| *k), Some(ErrorKind::BadRequest));
    }

    #[test]
    fn stats_round_trips_through_the_parser() {
        let h = handler();
        h.handle(
            &req(Command::Analyze { summaries: false, routine: None }),
            &image(),
            &far_deadline(),
        );
        let (resp, _) = h.handle(&req(Command::Stats), &[], &far_deadline());
        let json = spike_core::json::Json::parse(resp.stdout.trim()).unwrap();
        let cache = json.get("cache").expect("cache section");
        assert_eq!(cache.get("entries").and_then(spike_core::json::Json::as_u64), Some(1));
    }
}
