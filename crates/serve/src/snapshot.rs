//! Warm-cache snapshot files: persist the daemon's analyzed-program LRU
//! across restarts so a replacement instance starts *warm*.
//!
//! # File format
//!
//! ```text
//! +----------------+-------------------+----------------+------------------+
//! | magic (8 B)    | header len (4 B)  | header (JSON)  | payload (binary) |
//! | "spiksnap"     | u32 LE            |                |  Snap-encoded    |
//! +----------------+-------------------+----------------+------------------+
//! ```
//!
//! The header is a `spike_core::json` object:
//!
//! ```json
//! {"tool": "spike-served", "format": 1, "entries": 3,
//!  "payload_bytes": 123456, "checksum": "<32 hex>", "options_fp": "<16 hex>"}
//! ```
//!
//! * `format` — bumped whenever the payload encoding changes; a
//!   mismatch rejects the file (old daemons never misread new payloads
//!   and vice versa).
//! * `checksum` — the dual-lane FNV-1a 128 of the payload bytes (the
//!   same [`CacheKey`] hash that content-addresses images), verified
//!   **before** any payload decoding runs.
//! * `options_fp` — fingerprint of the analysis options the entries
//!   were computed under (see [`spike_core::options_fingerprint`]); a
//!   daemon only restores snapshots matching its own configuration,
//!   because entries from a different calling standard or filter
//!   setting would be *wrong*, not just stale.
//!
//! The payload is `entry count` followed by `(key, image, analysis)`
//! triples in LRU order (least recently used first), each
//! [`Snap`]-encoded. Restore is all-or-nothing: any truncation, bad
//! tag, or per-entry validation failure abandons the whole snapshot
//! and the daemon starts cold — never a panic, never a silently wrong
//! cache.
//!
//! Writes go through a sibling temp file + atomic rename, so a crash
//! mid-write leaves the previous snapshot intact and a reader never
//! observes a half-written file.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use spike_core::json::Json;
use spike_core::{options_fingerprint, Analysis, AnalysisOptions};
use spike_isa::{Snap, SnapReader, SnapWriter};

use crate::cache::{AnalyzedProgram, CacheKey, ProgramStore};

/// Payload encoding version. Bump on any change to the `Snap` layout of
/// the analysis structures.
pub const FORMAT_VERSION: i64 = 2;

const MAGIC: &[u8; 8] = b"spiksnap";

/// Why a snapshot file was rejected. Every variant maps to "start
/// cold", never to an abort.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error reading or writing the file.
    Io(std::io::Error),
    /// Not a snapshot file, or one too mangled to carry a header.
    NotASnapshot(&'static str),
    /// A well-formed container produced by an incompatible writer.
    Incompatible(String),
    /// The payload failed its checksum or decode.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::NotASnapshot(what) => write!(f, "not a snapshot file: {what}"),
            SnapshotError::Incompatible(what) => write!(f, "incompatible snapshot: {what}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// What a successful restore did, for the startup log line.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreReport {
    /// Entries installed warm.
    pub entries: usize,
    /// Total image + analysis bytes charged for them.
    pub bytes: usize,
    /// Wall time spent reading, verifying, and decoding.
    pub elapsed_ms: u128,
}

fn hex32(lanes: [u64; 2]) -> String {
    format!("{:016x}{:016x}", lanes[0], lanes[1])
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn parse_hex32(s: &str) -> Option<[u64; 2]> {
    if s.len() != 32 {
        return None;
    }
    Some([parse_hex_u64(&s[..16])?, parse_hex_u64(&s[16..])?])
}

/// Serializes `entries` into snapshot-file bytes.
pub fn encode(entries: &[Arc<AnalyzedProgram>], options: &AnalysisOptions) -> Vec<u8> {
    let mut payload = SnapWriter::new();
    payload.put_usize(entries.len());
    for e in entries {
        e.key.lanes()[0].snap(&mut payload);
        e.key.lanes()[1].snap(&mut payload);
        e.image.snap(&mut payload);
        e.analysis.snap(&mut payload);
    }
    let payload = payload.into_bytes();
    let checksum = CacheKey::of(&payload).lanes();

    let header = Json::Obj(vec![
        ("tool".into(), Json::Str("spike-served".into())),
        ("format".into(), Json::Int(FORMAT_VERSION)),
        ("entries".into(), Json::Int(entries.len() as i64)),
        ("payload_bytes".into(), Json::Int(payload.len() as i64)),
        ("checksum".into(), Json::Str(hex32(checksum))),
        ("options_fp".into(), Json::Str(format!("{:016x}", options_fingerprint(options)))),
    ]);
    let mut header_text = String::new();
    header.write(&mut header_text);

    let mut out = Vec::with_capacity(MAGIC.len() + 4 + header_text.len() + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(header_text.len() as u32).to_le_bytes());
    out.extend_from_slice(header_text.as_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes a snapshot of `store`'s full-analysis entries to `path`,
/// atomically (temp file + rename). Returns the entry count and file
/// size written.
///
/// # Errors
///
/// Propagates filesystem errors; the previous snapshot at `path`, if
/// any, survives every failure mode.
pub fn write(
    path: &Path,
    store: &ProgramStore,
    options: &AnalysisOptions,
) -> Result<(usize, usize), SnapshotError> {
    let entries = store.export_entries();
    let bytes = encode(&entries, options);
    let tmp: PathBuf = {
        let mut name = path.as_os_str().to_owned();
        name.push(".tmp");
        PathBuf::from(name)
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok((entries.len(), bytes.len())),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Decoded snapshot entries, not yet installed anywhere.
pub struct DecodedSnapshot {
    /// `(key, image, analysis)` triples in LRU order (oldest first).
    pub entries: Vec<(CacheKey, Vec<u8>, Analysis)>,
}

/// Reads and fully validates the snapshot at `path` against `options`:
/// magic, header shape, format version, options fingerprint, payload
/// length, checksum — and only then the payload decode.
///
/// # Errors
///
/// Every way a file can be wrong maps to a [`SnapshotError`]; callers
/// treat all of them as "start cold".
pub fn read(path: &Path, options: &AnalysisOptions) -> Result<DecodedSnapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(SnapshotError::NotASnapshot("shorter than the fixed header"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::NotASnapshot("bad magic"));
    }
    let header_len =
        u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()) as usize;
    let header_start = MAGIC.len() + 4;
    let payload_start = header_start.checked_add(header_len).filter(|&p| p <= bytes.len());
    let Some(payload_start) = payload_start else {
        return Err(SnapshotError::NotASnapshot("header length overruns the file"));
    };
    let header_text = std::str::from_utf8(&bytes[header_start..payload_start])
        .map_err(|_| SnapshotError::NotASnapshot("header is not UTF-8"))?;
    let header = Json::parse(header_text)
        .map_err(|e| SnapshotError::Incompatible(format!("header does not parse: {e}")))?;

    let format = header.get("format").and_then(Json::as_i64);
    if format != Some(FORMAT_VERSION) {
        return Err(SnapshotError::Incompatible(format!(
            "format {} (this daemon writes {FORMAT_VERSION})",
            format.map_or_else(|| "missing".to_string(), |v| v.to_string())
        )));
    }
    let fp = header
        .get("options_fp")
        .and_then(Json::as_str)
        .and_then(parse_hex_u64)
        .ok_or_else(|| SnapshotError::Incompatible("missing options fingerprint".into()))?;
    let own_fp = options_fingerprint(options);
    if fp != own_fp {
        return Err(SnapshotError::Incompatible(format!(
            "analysis options fingerprint {fp:016x} != this daemon's {own_fp:016x}"
        )));
    }

    let payload = &bytes[payload_start..];
    let announced = header.get("payload_bytes").and_then(Json::as_i64);
    if announced != Some(payload.len() as i64) {
        return Err(SnapshotError::Corrupt(format!(
            "payload is {} bytes, header announces {announced:?}",
            payload.len()
        )));
    }
    let want = header
        .get("checksum")
        .and_then(Json::as_str)
        .and_then(parse_hex32)
        .ok_or_else(|| SnapshotError::Corrupt("missing checksum".into()))?;
    let got = CacheKey::of(payload).lanes();
    if want != got {
        return Err(SnapshotError::Corrupt(format!(
            "payload checksum {} != header's {}",
            hex32(got),
            hex32(want)
        )));
    }

    let mut r = SnapReader::new(payload);
    let decode = |r: &mut SnapReader<'_>| -> Result<Vec<(CacheKey, Vec<u8>, Analysis)>, String> {
        let count = r.get_usize().map_err(|e| e.to_string())?;
        let announced = header.get("entries").and_then(Json::as_i64);
        if announced != Some(count as i64) {
            return Err(format!("payload has {count} entries, header announces {announced:?}"));
        }
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let a = u64::unsnap(r).map_err(|e| e.to_string())?;
            let b = u64::unsnap(r).map_err(|e| e.to_string())?;
            let image = Vec::<u8>::unsnap(r).map_err(|e| e.to_string())?;
            let analysis = Analysis::unsnap(r).map_err(|e| e.to_string())?;
            entries.push((CacheKey::from_lanes([a, b]), image, analysis));
        }
        if !r.is_exhausted() {
            return Err(format!("{} trailing bytes after the last entry", r.remaining()));
        }
        Ok(entries)
    };
    let entries = decode(&mut r).map_err(SnapshotError::Corrupt)?;
    Ok(DecodedSnapshot { entries })
}

/// Reads the snapshot at `path` and installs every entry into `store`.
/// All-or-nothing at the validation level: the file must fully decode
/// and every entry must re-validate (image parses, key matches) or the
/// store is left exactly as it was.
///
/// # Errors
///
/// See [`read`]; additionally any per-entry validation failure.
pub fn restore(
    path: &Path,
    store: &ProgramStore,
    options: &AnalysisOptions,
) -> Result<RestoreReport, SnapshotError> {
    let started = Instant::now();
    let decoded = read(path, options)?;
    // Validate every entry *before* installing any: restore must not
    // leave a half-warm cache behind a corrupt tail.
    for (key, image, _) in &decoded.entries {
        if CacheKey::of(image) != *key {
            return Err(SnapshotError::Corrupt("entry key does not match its image bytes".into()));
        }
    }
    let mut report = RestoreReport::default();
    for (key, image, analysis) in decoded.entries {
        report.bytes += image.len() + analysis.stats.memory_bytes;
        store.restore_entry(key, image, analysis).map_err(SnapshotError::Corrupt)?;
        report.entries += 1;
    }
    report.elapsed_ms = started.elapsed().as_millis();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn image(tag: u32) -> Vec<u8> {
        let mut b = ProgramBuilder::new();
        let r = b.routine("main");
        for _ in 0..(tag % 4 + 1) {
            r.def(Reg::A0);
        }
        r.put_int().halt();
        b.build().unwrap().to_image()
    }

    fn warm_store(images: &[Vec<u8>]) -> ProgramStore {
        let store = ProgramStore::new(AnalysisOptions::default(), usize::MAX);
        for img in images {
            store.get_or_analyze(img).unwrap();
        }
        store
    }

    #[test]
    fn snapshot_roundtrip_restores_every_entry_warm() {
        let images: Vec<Vec<u8>> = (0..3).map(image).collect();
        let store = warm_store(&images);
        let dir = std::env::temp_dir().join(format!("spike-snap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        let options = AnalysisOptions::default();
        let (entries, _) = write(&path, &store, &options).unwrap();
        assert_eq!(entries, 3);

        let fresh = ProgramStore::new(options.clone(), usize::MAX);
        let report = restore(&path, &fresh, &options).unwrap();
        assert_eq!(report.entries, 3);
        for img in &images {
            let (_, outcome) = fresh.get_or_analyze(img).unwrap();
            assert_eq!(outcome, crate::cache::CacheOutcome::Hit, "restored entries serve warm");
        }
        assert_eq!(fresh.snapshot().counters.restored, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejections_are_clean_and_leave_the_store_cold() {
        let images: Vec<Vec<u8>> = (0..2).map(image).collect();
        let store = warm_store(&images);
        let options = AnalysisOptions::default();
        let good = encode(&store.export_entries(), &options);

        let dir = std::env::temp_dir().join(format!("spike-snap-rej-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty", Vec::new()),
            ("bad magic", b"notasnap".iter().chain(&good[8..]).copied().collect()),
            ("truncated header", good[..10].to_vec()),
            ("truncated payload", good[..good.len() - 7].to_vec()),
            ("flipped payload byte", {
                let mut b = good.clone();
                let last = b.len() - 1;
                b[last] ^= 0x5A;
                b
            }),
        ];
        for (what, bytes) in cases {
            std::fs::write(&path, &bytes).unwrap();
            let fresh = ProgramStore::new(options.clone(), usize::MAX);
            let err = restore(&path, &fresh, &options);
            assert!(err.is_err(), "{what}: must be rejected");
            assert_eq!(fresh.snapshot().entries, 0, "{what}: store must stay cold");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_options_mismatches_are_incompatible() {
        let store = warm_store(&[image(0)]);
        let options = AnalysisOptions::default();
        let good = encode(&store.export_entries(), &options);
        let dir = std::env::temp_dir().join(format!("spike-snap-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        // A future format version is refused up front. Splice a bumped
        // format field into the JSON header and fix up the length field.
        let header_len = u32::from_le_bytes(good[8..12].try_into().unwrap()) as usize;
        let header = std::str::from_utf8(&good[12..12 + header_len]).unwrap();
        let bumped_header =
            header.replacen(&format!("\"format\":{FORMAT_VERSION}"), "\"format\":999", 1);
        assert_ne!(bumped_header, header, "header must contain the format field");
        let mut bumped = good[..8].to_vec();
        bumped.extend_from_slice(&(bumped_header.len() as u32).to_le_bytes());
        bumped.extend_from_slice(bumped_header.as_bytes());
        bumped.extend_from_slice(&good[12 + header_len..]);
        std::fs::write(&path, &bumped).unwrap();
        let fresh = ProgramStore::new(options.clone(), usize::MAX);
        match restore(&path, &fresh, &options) {
            Err(SnapshotError::Incompatible(_)) => {}
            other => panic!("format bump must be Incompatible, got {other:?}"),
        }

        // A snapshot from a daemon with different analysis options is
        // refused even though the payload is pristine.
        std::fs::write(&path, &good).unwrap();
        let other_options = AnalysisOptions { branch_nodes: false, ..AnalysisOptions::default() };
        let fresh = ProgramStore::new(other_options.clone(), usize::MAX);
        match restore(&path, &fresh, &other_options) {
            Err(SnapshotError::Incompatible(_)) => {}
            other => panic!("options mismatch must be Incompatible, got {other:?}"),
        }
        assert_eq!(fresh.snapshot().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
