//! `spike-served`: a long-running analysis service over the Spike
//! reproduction's interprocedural dataflow engine.
//!
//! A post-link optimizer inside a build farm sees the same executables
//! over and over, usually differing by a handful of routines between
//! submissions. Re-running the whole PSG analysis per invocation throws
//! that locality away. This crate keeps the analysis *warm* across
//! requests:
//!
//! * [`cache::ProgramStore`] — a content-hash-keyed, byte-budgeted LRU of
//!   loaded programs with their converged analyses. Identical
//!   re-submissions are pure cache hits; near-identical ones are diffed
//!   ([`diff::diff_for_reanalysis`]) and re-solved incrementally through
//!   [`spike_core::AnalysisCache::reanalyze`] on just the dirty routines;
//!   concurrent requests for the same bytes coalesce into one analysis.
//! * [`proto`] — a std-only length-prefixed JSON+blob frame protocol over
//!   TCP and Unix sockets; one request per connection.
//! * [`server`] — bounded accept/work queues with explicit `busy`
//!   backpressure, per-request deadlines, frame-size caps, per-request
//!   panic isolation, and graceful drain on `shutdown`/SIGTERM.
//! * [`render`] — the deterministic report renderers shared with the
//!   local CLI, which is what makes `spike client <cmd>` byte-identical
//!   to `spike <cmd>`: both print exactly these strings, and everything
//!   non-deterministic (timings, cache disposition) travels separately
//!   as diagnostics.
//! * [`metrics`] — request/cache/queue counters and a fixed-bucket
//!   latency histogram, exported by the `stats` command as stable JSON.
//! * [`cluster`] — fleet mode: a consistent-hash [`cluster::Ring`] over
//!   image content hashes gives every image one owner shard (disjoint
//!   warm sets), a stateless [`cluster::Router`] relays frames to the
//!   owner byte-for-byte, and non-owner shards forward misroutes
//!   themselves, so stdout is byte-identical whichever address serves.
//! * [`snapshot`] — versioned, checksummed warm-cache persistence
//!   (periodic and at drain; all-or-nothing restore with cold fallback),
//!   so a plain restart starts warm.
//! * `reactor` (Linux) — an epoll event loop that reads frames from
//!   nonblocking sockets and hands only complete requests to the worker
//!   pool, letting one instance hold thousands of concurrent
//!   connections; [`loadgen`] measures exactly that.

pub mod cache;
pub mod client;
pub mod cluster;
pub mod diff;
pub mod handler;
pub mod loadgen;
pub mod metrics;
pub mod proto;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod render;
pub mod server;
pub mod snapshot;

pub use cache::{CacheOutcome, ProgramStore};
pub use client::{ClientError, Endpoint};
pub use cluster::{Ring, Router, RouterOptions, ShardIdentity};
pub use proto::{Command, ErrorKind, LintFormat, QueryKind, Request, Response};
pub use server::{ServeOptions, Server};
