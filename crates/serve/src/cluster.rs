//! Sharded cluster mode: consistent-hash request routing over image
//! content hashes.
//!
//! A cluster is N daemon instances ("shards"), each owning a disjoint
//! slice of the key space, so each shard's warm cache holds a disjoint
//! working set and the fleet's effective cache is the *sum* of the
//! shards' budgets instead of N copies of the same hot entries.
//!
//! Ownership is decided by a [`Ring`]: every shard contributes
//! [`VNODES`] points (FNV-1a of `"{addr}#{i}"`) to a shared hash
//! circle, and a key belongs to the shard owning the first point at or
//! after the key's position ([`CacheKey`] lane 0). The classic
//! consistent-hashing properties hold *exactly*, not just in
//! expectation, and are enforced by property tests:
//!
//! * removing a shard only moves the keys that shard owned;
//! * adding a shard only moves keys *to* the new shard;
//! * every other key keeps its owner.
//!
//! Three parties consult the ring, all computing identical ownership
//! because they hash identical bytes:
//!
//! * the [`Router`] — a thin stateless front that reads each request
//!   frame, hashes the image blob, and relays the frame to the owner;
//! * each shard — a request landing on the wrong shard (stale client
//!   config, mid-resize) is forwarded shard-to-shard to the owner and
//!   the owner's byte-identical response relayed back;
//! * `spike client --cluster` — computes ownership client-side and
//!   connects straight to the owner, no extra hop.
//!
//! Blob-less requests have no key: the router sends `stats` (and other
//! image-free commands) to shard 0, except `shutdown`, which broadcasts
//! to every shard so one command drains the whole cluster.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use spike_core::json::Json;

use crate::cache::CacheKey;
use crate::client::{request, ClientError, Endpoint};
use crate::proto::{read_frame, write_frame, ErrorKind, FrameRead, Request, Response};

/// Virtual nodes per shard: enough that each shard's slice of the
/// circle is fragmented into many arcs, keeping per-shard load within a
/// few percent of uniform without weighting.
pub const VNODES: usize = 64;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Murmur3's 64-bit finalizer. FNV-1a mixes new bytes into the *low*
/// bits, so hashes of short, similar strings (vnode labels differ in a
/// few characters) cluster in their high bits — exactly the bits that
/// dominate ordering on the ring. The finalizer avalanches every input
/// bit across the whole word, making ring positions uniform.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The consistent-hash circle over a cluster's shard addresses.
#[derive(Clone, Debug)]
pub struct Ring {
    shards: Vec<String>,
    /// `(point, shard index)`, sorted by point then index so ties (two
    /// vnode hashes colliding) resolve identically everywhere.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds the ring for `shards` (their order defines shard
    /// indices).
    pub fn new(shards: Vec<String>) -> Ring {
        let mut points = Vec::with_capacity(shards.len() * VNODES);
        for (index, addr) in shards.iter().enumerate() {
            for i in 0..VNODES {
                points.push((mix64(fnv64(format!("{addr}#{i}").as_bytes())), index as u32));
            }
        }
        points.sort_unstable();
        Ring { shards, points }
    }

    /// The shard addresses, in index order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The index of the shard owning `key`: the first ring point at or
    /// after the key's position, wrapping at the top.
    pub fn owner_of(&self, key: CacheKey) -> usize {
        let pos = mix64(key.lanes()[0]);
        let i = self.points.partition_point(|&(p, _)| p < pos);
        let (_, shard) = self.points[if i == self.points.len() { 0 } else { i }];
        shard as usize
    }

    /// The address of the shard owning `key`.
    pub fn owner_addr(&self, key: CacheKey) -> &str {
        &self.shards[self.owner_of(key)]
    }
}

/// Sends one request to the shard owning its image (computed
/// client-side over `shards`), avoiding the router hop entirely.
/// Blob-less requests go to shard 0. Ownership is keyed on the image
/// alone — `blob` may carry a profile after it (`req.profile_len`
/// trailing bytes), which must not perturb the shard choice.
///
/// # Errors
///
/// Connection and protocol failures, exactly like [`request`].
pub fn cluster_request(
    shards: &[String],
    req: &Request,
    blob: &[u8],
) -> Result<(Response, Vec<u8>), ClientError> {
    let ring = Ring::new(shards.to_vec());
    let image = &blob[..blob.len().saturating_sub(req.profile_len)];
    let addr = if image.is_empty() {
        ring.shards()[0].clone()
    } else {
        ring.owner_addr(CacheKey::of(image)).to_string()
    };
    request(&Endpoint::Tcp(addr), req, blob)
}

/// What this shard needs to know about its cluster: the ring plus its
/// own position in it. Carried by the request handler so misrouted
/// requests can be forwarded to their owner.
pub struct ShardIdentity {
    /// The cluster's ring.
    pub ring: Ring,
    /// This instance's index into [`Ring::shards`].
    pub index: usize,
}

impl ShardIdentity {
    /// `Some(owner index)` when `image` belongs to a *different* shard,
    /// `None` when this shard owns it (or there is no image to hash).
    pub fn misrouted(&self, image: &[u8]) -> Option<usize> {
        if image.is_empty() {
            return None;
        }
        let owner = self.ring.owner_of(CacheKey::of(image));
        (owner != self.index).then_some(owner)
    }
}

/// How the router front listens and where it forwards.
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// TCP listen address (`host:port`; port 0 binds ephemeral).
    pub listen: String,
    /// Shard addresses in index order.
    pub shards: Vec<String>,
    /// Maximum request frame size accepted from clients.
    pub max_frame_bytes: usize,
    /// Relay worker threads.
    pub workers: usize,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            listen: String::new(),
            shards: Vec::new(),
            max_frame_bytes: 64 << 20,
            workers: 4,
        }
    }
}

/// A running router front. Shut down like the [`Server`](crate::Server):
/// [`shutdown`](Router::shutdown) then [`join`](Router::join).
pub struct Router {
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Router {
    /// Binds the listener and starts the accept and relay threads.
    ///
    /// # Errors
    ///
    /// Fails when no shards are configured or the bind fails.
    pub fn start(options: &RouterOptions) -> io::Result<Router> {
        if options.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard address",
            ));
        }
        let listener = crate::server::bind_reuseaddr(&options.listen)?;
        let addr = listener.local_addr()?;
        let ring = Arc::new(Ring::new(options.shards.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(RelayQueue::new(options.workers.max(1) * 16));
        let mut threads = Vec::new();

        {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            threads.push(
                thread::Builder::new()
                    .name("router-acceptor".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::SeqCst) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if let Err(mut refused) = queue.push(stream) {
                                        let resp = Response::error(
                                            ErrorKind::Busy,
                                            "router relay queue is full",
                                        );
                                        let _ = prepare(&refused);
                                        let _ = write_frame(&mut refused, &resp.to_json(), &[]);
                                    }
                                }
                                Err(_) => thread::sleep(Duration::from_millis(5)),
                            }
                        }
                    })
                    .expect("spawn router acceptor"),
            );
        }
        for i in 0..options.workers.max(1) {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let ring = Arc::clone(&ring);
            let max_frame_bytes = options.max_frame_bytes;
            threads.push(
                thread::Builder::new()
                    .name(format!("router-relay-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop(&shutdown) {
                            relay(stream, &ring, max_frame_bytes);
                        }
                    })
                    .expect("spawn router relay"),
            );
        }
        Ok(Router { shutdown, threads, addr })
    }

    /// The bound listen address (the way to learn an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown; acceptor and relays exit after draining.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor parked in `accept`.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
    }

    /// Waits for the acceptor and every relay in flight to finish.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Serves until SIGTERM (see
    /// [`install_sigterm_handler`](crate::server::install_sigterm_handler))
    /// or [`shutdown`](Router::shutdown) from another thread, then joins.
    /// This is the `spike route` foreground path.
    pub fn run_to_completion(self) {
        while !self.shutdown.load(Ordering::SeqCst) && !crate::server::sigterm_requested() {
            thread::sleep(Duration::from_millis(250));
        }
        self.join();
    }
}

/// The router's bounded accept-to-relay handoff (same shape as the
/// daemon's queue, but over raw TCP streams).
struct RelayQueue {
    inner: std::sync::Mutex<std::collections::VecDeque<TcpStream>>,
    ready: std::sync::Condvar,
    capacity: usize,
}

impl RelayQueue {
    fn new(capacity: usize) -> RelayQueue {
        RelayQueue {
            inner: std::sync::Mutex::new(std::collections::VecDeque::new()),
            ready: std::sync::Condvar::new(),
            capacity,
        }
    }

    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(250))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
    }
}

fn prepare(stream: &TcpStream) -> io::Result<()> {
    let t = Some(Duration::from_secs(10));
    stream.set_read_timeout(t)?;
    stream.set_write_timeout(t)
}

/// Forwards one raw frame to `addr` and returns the shard's raw reply.
/// The frame travels verbatim — the router never re-encodes the JSON —
/// so the owner's response bytes are exactly what the client receives.
pub(crate) fn forward_frame(
    addr: &str,
    json: &Json,
    blob: &[u8],
) -> Result<(Json, Vec<u8>), String> {
    let mut upstream =
        TcpStream::connect(addr).map_err(|e| format!("shard {addr} unreachable: {e}"))?;
    // Shard-side work can legitimately take a while; this guards
    // against a dead shard, not a slow one.
    let t = Some(Duration::from_secs(600));
    upstream.set_read_timeout(t).map_err(|e| e.to_string())?;
    upstream.set_write_timeout(t).map_err(|e| e.to_string())?;
    write_frame(&mut upstream, json, blob).map_err(|e| format!("sending to shard {addr}: {e}"))?;
    match read_frame(&mut upstream, 256 << 20) {
        Ok(FrameRead::Frame(json, blob)) => Ok((json, blob)),
        Ok(FrameRead::Eof) => Err(format!("shard {addr} closed without replying")),
        Err(e) => Err(format!("reading from shard {addr}: {e}")),
    }
}

/// Handles one client connection: read the frame, pick the owner, relay.
fn relay(mut stream: TcpStream, ring: &Ring, max_frame_bytes: usize) {
    if prepare(&stream).is_err() {
        return;
    }
    let (json, blob) = match read_frame(&mut stream, max_frame_bytes) {
        Ok(FrameRead::Frame(json, blob)) => (json, blob),
        Ok(FrameRead::Eof) => return,
        Err(e) => {
            let resp = Response::error(ErrorKind::BadRequest, e.to_string());
            let _ = write_frame(&mut stream, &resp.to_json(), &[]);
            return;
        }
    };
    let cmd = json.get("cmd").and_then(Json::as_str).unwrap_or("");
    if cmd == "shutdown" && blob.is_empty() {
        // One shutdown drains the whole cluster; the client sees the
        // last shard's acknowledgement (they are identical anyway).
        let mut last = Err("no shards".to_string());
        for addr in ring.shards() {
            last = forward_frame(addr, &json, &blob);
        }
        finish(&mut stream, last);
        return;
    }
    // Ownership is keyed on the image alone; a request may append a
    // profile blob after it (`profile_len` trailing bytes), which must
    // not perturb the shard choice.
    let profile_len = json.get("profile_len").and_then(Json::as_u64).unwrap_or(0) as usize;
    let image = &blob[..blob.len().saturating_sub(profile_len)];
    let addr =
        if image.is_empty() { &ring.shards()[0] } else { ring.owner_addr(CacheKey::of(image)) };
    finish(&mut stream, forward_frame(addr, &json, &blob));
}

fn finish(stream: &mut TcpStream, result: Result<(Json, Vec<u8>), String>) {
    match result {
        Ok((json, blob)) => {
            let _ = write_frame(stream, &json, &blob);
        }
        Err(msg) => {
            let resp = Response::error(ErrorKind::Busy, msg);
            let _ = write_frame(stream, &resp.to_json(), &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    fn keys(n: u64) -> Vec<CacheKey> {
        (0..n).map(|i| CacheKey::of(format!("image-{i}").as_bytes())).collect()
    }

    #[test]
    fn ownership_is_total_and_deterministic() {
        let ring = Ring::new(addrs(3));
        let again = Ring::new(addrs(3));
        for key in keys(1000) {
            let owner = ring.owner_of(key);
            assert!(owner < 3);
            assert_eq!(owner, again.owner_of(key), "same shards => same ring => same owner");
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        let all = addrs(4);
        let ring = Ring::new(all.clone());
        // Drop the last shard. Keys it owned must move; every other
        // key must keep its owner (by address, since indices shift).
        let smaller = Ring::new(all[..3].to_vec());
        for key in keys(2000) {
            let before = ring.owner_addr(key).to_string();
            let after = smaller.owner_addr(key).to_string();
            if before == all[3] {
                assert_ne!(after, all[3], "removed shard cannot own anything");
            } else {
                assert_eq!(after, before, "keys of surviving shards must not move");
            }
        }
    }

    #[test]
    fn adding_a_shard_moves_keys_only_to_it() {
        let three = addrs(3);
        let mut four = three.clone();
        four.push("127.0.0.1:9100".to_string());
        let ring3 = Ring::new(three);
        let ring4 = Ring::new(four.clone());
        let mut moved = 0usize;
        let sample = keys(4000);
        for key in &sample {
            let before = ring3.owner_addr(*key).to_string();
            let after = ring4.owner_addr(*key).to_string();
            if after != before {
                assert_eq!(after, four[3], "a moved key may only move to the new shard");
                moved += 1;
            }
        }
        // ~K/N keys move (1/4 here). Allow a generous band: vnode
        // placement is hash-random, but 64 vnodes keep it near uniform.
        let expect = sample.len() / 4;
        assert!(
            moved > expect / 2 && moved < expect * 2,
            "moved {moved} of {} keys, expected about {expect}",
            sample.len()
        );
    }

    #[test]
    fn load_spreads_over_all_shards() {
        let ring = Ring::new(addrs(3));
        let mut per: HashMap<usize, usize> = HashMap::new();
        for key in keys(3000) {
            *per.entry(ring.owner_of(key)).or_default() += 1;
        }
        for shard in 0..3 {
            let n = per.get(&shard).copied().unwrap_or(0);
            assert!(n > 300, "shard {shard} owns only {n} of 3000 keys");
        }
    }

    #[test]
    fn misrouted_detects_ownership() {
        let ring = Ring::new(addrs(2));
        let image = b"some image bytes";
        let owner = ring.owner_of(CacheKey::of(image));
        let me = ShardIdentity { ring: ring.clone(), index: owner };
        assert_eq!(me.misrouted(image), None);
        assert_eq!(me.misrouted(&[]), None);
        let other = ShardIdentity { ring, index: 1 - owner };
        assert_eq!(other.misrouted(image), Some(owner));
    }
}
