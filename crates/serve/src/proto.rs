//! The wire protocol: length-prefixed JSON frames with an optional binary
//! attachment.
//!
//! A frame is an 8-byte big-endian header — `u32` JSON length, `u32` blob
//! length — followed by the JSON bytes and then the blob bytes. Requests
//! carry the executable image in the blob (no base64 inflation); the only
//! response that uses the blob is `optimize`, which returns the rewritten
//! image. One connection carries exactly one request/response exchange:
//! the client connects, writes one frame, reads one frame, and both sides
//! close. That keeps the server's worker loop free of idle-connection
//! bookkeeping, and connecting over a Unix socket is far cheaper than any
//! analysis the request triggers.
//!
//! All JSON is read and written through [`spike_core::json`], so the
//! daemon shares the workspace's one escaping implementation.

use std::fmt;
use std::io::{self, Read, Write};

use spike_core::json::Json;

/// Frame header size: two big-endian `u32` lengths.
const HEADER_LEN: usize = 8;

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame: the decoded JSON document and the blob.
    Frame(Json, Vec<u8>),
    /// The peer closed the connection before sending a header.
    Eof,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The header announced more than the configured byte limit. The
    /// frame body was *not* consumed; the connection must be dropped
    /// after the error reply.
    TooLarge {
        /// Announced total frame size in bytes.
        announced: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The JSON payload failed to parse.
    BadJson(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::TooLarge { announced, limit } => {
                write!(f, "frame of {announced} bytes exceeds the {limit}-byte limit")
            }
            FrameError::BadJson(e) => write!(f, "malformed JSON payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame. The JSON document is serialized in stored member
/// order, so identical values produce identical bytes.
pub fn write_frame(w: &mut impl Write, json: &Json, blob: &[u8]) -> io::Result<()> {
    let mut text = String::new();
    json.write(&mut text);
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(text.len() as u32).to_be_bytes());
    header[4..].copy_from_slice(&(blob.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(text.as_bytes())?;
    w.write_all(blob)?;
    w.flush()
}

/// Reads one frame, refusing to consume bodies larger than `max_bytes`
/// (JSON length + blob length combined).
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<FrameRead, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(FrameRead::Eof);
    }
    let json_len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let blob_len = u32::from_be_bytes(header[4..].try_into().expect("4 bytes")) as usize;
    let total = json_len.saturating_add(blob_len);
    if total > max_bytes {
        return Err(FrameError::TooLarge { announced: total, limit: max_bytes });
    }
    // The header has been read, so an EOF anywhere in the payloads is a
    // mid-frame close — report it as such, not as a generic short read.
    let mut json_bytes = vec![0u8; json_len];
    read_exact_mid_frame(r, &mut json_bytes)?;
    let mut blob = vec![0u8; blob_len];
    read_exact_mid_frame(r, &mut blob)?;
    let text = String::from_utf8(json_bytes)
        .map_err(|e| FrameError::BadJson(format!("payload is not UTF-8: {e}")))?;
    let json = Json::parse(&text).map_err(|e| FrameError::BadJson(e.to_string()))?;
    Ok(FrameRead::Frame(json, blob))
}

/// Fills `buf` completely; an EOF at any point (the frame header is
/// already consumed) is a mid-frame close.
fn read_exact_mid_frame(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    if read_exact_or_eof(r, buf)? {
        Ok(())
    } else {
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-frame"))
    }
}

/// Fills `buf` completely, or reports a clean EOF if the stream ended
/// before the first byte.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// How `lint` output should be formatted, mirroring `spike lint --format`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintFormat {
    /// One diagnostic per line plus a summary line.
    Human,
    /// The stable JSON report.
    Json,
}

impl LintFormat {
    fn name(self) -> &'static str {
        match self {
            LintFormat::Human => "human",
            LintFormat::Json => "json",
        }
    }

    /// Parses a `--format` value; the error text matches the local CLI's.
    ///
    /// # Errors
    ///
    /// Rejects anything other than `human` or `json`.
    pub fn parse(s: &str) -> Result<LintFormat, String> {
        match s {
            "human" => Ok(LintFormat::Human),
            "json" => Ok(LintFormat::Json),
            other => Err(format!("--format must be `human` or `json`, got `{other}`")),
        }
    }
}

/// Which demand-driven question a `query` request asks, mirroring
/// `spike query <kind>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// The routine's phase-1 entry summary.
    Summary,
    /// The routine's live-at-entry / live-at-exit sets.
    LiveAtEntry,
    /// The single-routine uninitialized-read check.
    Uninit,
    /// Whether one routine transitively calls another.
    Reaches,
}

impl QueryKind {
    /// The kebab-case wire name, identical to the CLI argument.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Summary => "summary",
            QueryKind::LiveAtEntry => "live-at-entry",
            QueryKind::Uninit => "uninit",
            QueryKind::Reaches => "reaches",
        }
    }

    /// Parses a query kind; the error text matches the local CLI's.
    ///
    /// # Errors
    ///
    /// Rejects anything other than the four kind names.
    pub fn parse(s: &str) -> Result<QueryKind, String> {
        match s {
            "summary" => Ok(QueryKind::Summary),
            "live-at-entry" => Ok(QueryKind::LiveAtEntry),
            "uninit" => Ok(QueryKind::Uninit),
            "reaches" => Ok(QueryKind::Reaches),
            other => Err(format!(
                "query kind must be `summary`, `live-at-entry`, `uninit` or `reaches`, \
                 got `{other}`"
            )),
        }
    }
}

/// What the client asks the daemon to do.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// Interprocedural dataflow analysis; the deterministic report of
    /// `spike analyze`.
    Analyze {
        /// Print every routine's summary (`--summaries`).
        summaries: bool,
        /// Print only this routine's summary (`--routine`).
        routine: Option<String>,
    },
    /// Static checks; the report of `spike lint`.
    Lint {
        /// Output format.
        format: LintFormat,
    },
    /// The Figure-1 optimizations; returns the rewritten image as the
    /// response blob.
    Optimize {
        /// Display name of the output path (report text only; the client
        /// decides where the blob is written).
        out: String,
        /// Loop the pass sequence to a fixpoint (`--iterate`).
        iterate: bool,
        /// Incremental re-analysis between passes (`--incremental`).
        incremental: bool,
        /// Run loop-invariant code motion (off under `--no-licm`).
        licm: bool,
    },
    /// A demand-driven query answered from the daemon's warm per-image
    /// engine; the report of `spike query`.
    Query {
        /// Which question to ask.
        kind: QueryKind,
        /// The routine the question is about (for `reaches`, the caller).
        routine: String,
        /// For `reaches`: the callee end of the path.
        callee: Option<String>,
    },
    /// PSG vs whole-CFG cross-validation; the report of `spike compare`.
    Compare,
    /// The daemon's counters as one JSON document.
    Stats,
    /// Graceful drain: stop accepting, finish queued work, exit 0.
    Shutdown,
}

impl Command {
    /// The wire name of the command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Analyze { .. } => "analyze",
            Command::Lint { .. } => "lint",
            Command::Optimize { .. } => "optimize",
            Command::Query { .. } => "query",
            Command::Compare => "compare",
            Command::Stats => "stats",
            Command::Shutdown => "shutdown",
        }
    }

    /// Whether the request must carry an image in the frame blob.
    pub fn wants_image(&self) -> bool {
        !matches!(self, Command::Stats | Command::Shutdown)
    }
}

/// One request: a command plus the metadata shared by all commands.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// The command to run.
    pub cmd: Command,
    /// Display name for the image (the client's path string); appears in
    /// report text exactly where the local CLI would print its path
    /// argument, which is what makes the two paths byte-identical.
    pub image_name: String,
    /// Processing deadline in milliseconds, measured from the moment the
    /// daemon finished reading the request. `Some(0)` is already expired
    /// (useful for probing); `None` uses the daemon's default.
    pub deadline_ms: Option<u64>,
    /// Length of the execution-profile blob appended after the image in
    /// the frame blob: the blob is `image ++ profile`, and the image ends
    /// `profile_len` bytes before the end. Zero means no profile.
    pub profile_len: usize,
}

impl Request {
    /// Serializes the request to its wire JSON document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("cmd".to_string(), Json::from(self.cmd.name()))];
        if !self.image_name.is_empty() {
            members.push(("image".to_string(), Json::from(self.image_name.as_str())));
        }
        if let Some(ms) = self.deadline_ms {
            members.push(("deadline_ms".to_string(), Json::from(ms)));
        }
        if self.profile_len > 0 {
            members.push(("profile_len".to_string(), Json::from(self.profile_len as u64)));
        }
        let mut opts: Vec<(String, Json)> = Vec::new();
        match &self.cmd {
            Command::Analyze { summaries, routine } => {
                if *summaries {
                    opts.push(("summaries".to_string(), Json::Bool(true)));
                }
                if let Some(r) = routine {
                    opts.push(("routine".to_string(), Json::from(r.as_str())));
                }
            }
            Command::Lint { format } => {
                opts.push(("format".to_string(), Json::from(format.name())));
            }
            Command::Optimize { out, iterate, incremental, licm } => {
                opts.push(("out".to_string(), Json::from(out.as_str())));
                opts.push(("iterate".to_string(), Json::Bool(*iterate)));
                opts.push(("incremental".to_string(), Json::Bool(*incremental)));
                opts.push(("licm".to_string(), Json::Bool(*licm)));
            }
            Command::Query { kind, routine, callee } => {
                opts.push(("query".to_string(), Json::from(kind.name())));
                opts.push(("routine".to_string(), Json::from(routine.as_str())));
                if let Some(c) = callee {
                    opts.push(("callee".to_string(), Json::from(c.as_str())));
                }
            }
            Command::Compare | Command::Stats | Command::Shutdown => {}
        }
        if !opts.is_empty() {
            members.push(("opts".to_string(), Json::Obj(opts)));
        }
        Json::Obj(members)
    }

    /// Decodes a request from its wire JSON document.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let name = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| "request is missing the `cmd` field".to_string())?;
        let opts = json.get("opts");
        let opt = |key: &str| opts.and_then(|o| o.get(key));
        let cmd = match name {
            "analyze" => Command::Analyze {
                summaries: opt("summaries").and_then(Json::as_bool).unwrap_or(false),
                routine: opt("routine").and_then(Json::as_str).map(str::to_string),
            },
            "lint" => Command::Lint {
                format: LintFormat::parse(opt("format").and_then(Json::as_str).unwrap_or("human"))?,
            },
            "optimize" => Command::Optimize {
                out: opt("out").and_then(Json::as_str).unwrap_or("out.img").to_string(),
                iterate: opt("iterate").and_then(Json::as_bool).unwrap_or(false),
                incremental: opt("incremental").and_then(Json::as_bool).unwrap_or(true),
                licm: opt("licm").and_then(Json::as_bool).unwrap_or(true),
            },
            "query" => Command::Query {
                kind: QueryKind::parse(opt("query").and_then(Json::as_str).unwrap_or(""))?,
                routine: opt("routine")
                    .and_then(Json::as_str)
                    .filter(|r| !r.is_empty())
                    .ok_or_else(|| "query request is missing the `routine` option".to_string())?
                    .to_string(),
                callee: opt("callee").and_then(Json::as_str).map(str::to_string),
            },
            "compare" => Command::Compare,
            "stats" => Command::Stats,
            "shutdown" => Command::Shutdown,
            other => return Err(format!("unknown command `{other}`")),
        };
        Ok(Request {
            cmd,
            image_name: json.get("image").and_then(Json::as_str).unwrap_or("").to_string(),
            deadline_ms: json.get("deadline_ms").and_then(Json::as_u64),
            profile_len: json.get("profile_len").and_then(Json::as_u64).unwrap_or(0) as usize,
        })
    }
}

/// Machine-readable failure category of a request. The daemon always
/// replies with a structured error — a request never silently drops — and
/// the client maps every kind to exit code 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The work queue was full; retry later.
    Busy,
    /// The request frame exceeded the daemon's byte limit.
    TooLarge,
    /// The request's processing deadline expired.
    Deadline,
    /// The request JSON was missing fields or malformed.
    BadRequest,
    /// The image failed to load or validate (commands other than `lint`,
    /// which reports this as a `malformed-image` finding instead).
    BadImage,
    /// The worker handling the request panicked; the daemon keeps
    /// serving.
    Panic,
    /// The daemon is draining and no longer accepts work.
    ShuttingDown,
}

impl ErrorKind {
    /// The kebab-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::TooLarge => "too-large",
            ErrorKind::Deadline => "deadline",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::BadImage => "bad-image",
            ErrorKind::Panic => "panic",
            ErrorKind::ShuttingDown => "shutting-down",
        }
    }

    fn parse(s: &str) -> Option<ErrorKind> {
        [
            ErrorKind::Busy,
            ErrorKind::TooLarge,
            ErrorKind::Deadline,
            ErrorKind::BadRequest,
            ErrorKind::BadImage,
            ErrorKind::Panic,
            ErrorKind::ShuttingDown,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }
}

/// One response. `stdout` holds the exact bytes the local CLI would have
/// printed to stdout; `diag` holds non-deterministic diagnostics (timings,
/// cache disposition) that belong on stderr.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// Suggested process exit code for the client (0 ok, 1 lint errors,
    /// 2 failures).
    pub exit: u8,
    /// Byte-stable report text.
    pub stdout: String,
    /// Timing and cache diagnostics; never part of the stability
    /// contract.
    pub diag: String,
    /// Present when the request failed.
    pub error: Option<(ErrorKind, String)>,
}

impl Response {
    /// A successful response.
    pub fn ok(stdout: String, diag: String) -> Response {
        Response { exit: 0, stdout, diag, error: None }
    }

    /// A failure response; the client exits 2.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            exit: 2,
            stdout: String::new(),
            diag: String::new(),
            error: Some((kind, message.into())),
        }
    }

    /// Serializes the response to its wire JSON document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("status".to_string(), Json::from(if self.error.is_some() { "error" } else { "ok" })),
            ("exit".to_string(), Json::from(u64::from(self.exit))),
        ];
        if !self.stdout.is_empty() {
            members.push(("stdout".to_string(), Json::from(self.stdout.as_str())));
        }
        if !self.diag.is_empty() {
            members.push(("diag".to_string(), Json::from(self.diag.as_str())));
        }
        if let Some((kind, message)) = &self.error {
            members.push((
                "error".to_string(),
                Json::Obj(vec![
                    ("kind".to_string(), Json::from(kind.name())),
                    ("message".to_string(), Json::from(message.as_str())),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Decodes a response from its wire JSON document.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        let exit = json
            .get("exit")
            .and_then(Json::as_u64)
            .ok_or_else(|| "response is missing the `exit` field".to_string())?;
        let error = match json.get("error") {
            Some(e) => {
                let kind = e
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::parse)
                    .ok_or_else(|| "error response has no recognizable kind".to_string())?;
                let message =
                    e.get("message").and_then(Json::as_str).unwrap_or_default().to_string();
                Some((kind, message))
            }
            None => None,
        };
        Ok(Response {
            exit: u8::try_from(exit).map_err(|_| format!("exit code {exit} out of range"))?,
            stdout: json.get("stdout").and_then(Json::as_str).unwrap_or("").to_string(),
            diag: json.get("diag").and_then(Json::as_str).unwrap_or("").to_string(),
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request {
                cmd: Command::Analyze { summaries: true, routine: Some("main".into()) },
                image_name: "a.img".into(),
                deadline_ms: Some(250),
                profile_len: 0,
            },
            Request {
                cmd: Command::Analyze { summaries: false, routine: None },
                image_name: "a.img".into(),
                deadline_ms: None,
                profile_len: 104,
            },
            Request {
                cmd: Command::Lint { format: LintFormat::Json },
                image_name: "b.img".into(),
                deadline_ms: None,
                profile_len: 0,
            },
            Request {
                cmd: Command::Optimize {
                    out: "o.img".into(),
                    iterate: true,
                    incremental: false,
                    licm: false,
                },
                image_name: "c.img".into(),
                deadline_ms: None,
                profile_len: 0,
            },
            Request {
                cmd: Command::Optimize {
                    out: "o.img".into(),
                    iterate: false,
                    incremental: true,
                    licm: true,
                },
                image_name: "c.img".into(),
                deadline_ms: None,
                profile_len: 4096,
            },
            Request {
                cmd: Command::Compare,
                image_name: "d.img".into(),
                deadline_ms: None,
                profile_len: 0,
            },
            Request {
                cmd: Command::Query {
                    kind: QueryKind::LiveAtEntry,
                    routine: "main".into(),
                    callee: None,
                },
                image_name: "e.img".into(),
                deadline_ms: None,
                profile_len: 0,
            },
            Request {
                cmd: Command::Query {
                    kind: QueryKind::Reaches,
                    routine: "main".into(),
                    callee: Some("leaf".into()),
                },
                image_name: "f.img".into(),
                deadline_ms: Some(100),
                profile_len: 0,
            },
            Request {
                cmd: Command::Stats,
                image_name: String::new(),
                deadline_ms: None,
                profile_len: 0,
            },
            Request {
                cmd: Command::Shutdown,
                image_name: String::new(),
                deadline_ms: Some(0),
                profile_len: 0,
            },
        ];
        for r in reqs {
            assert_eq!(Request::from_json(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let rs = [
            Response::ok("report\n".into(), "time 1ms\n".into()),
            Response { exit: 1, stdout: "error[x]\n".into(), diag: String::new(), error: None },
            Response::error(ErrorKind::Busy, "queue full"),
        ];
        for r in rs {
            assert_eq!(Response::from_json(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let req = Request {
            cmd: Command::Lint { format: LintFormat::Human },
            image_name: "x.img".into(),
            deadline_ms: None,
            profile_len: 0,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json(), b"image-bytes").unwrap();
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, 1 << 20).unwrap() {
            FrameRead::Frame(json, blob) => {
                assert_eq!(Request::from_json(&json).unwrap(), req);
                assert_eq!(blob, b"image-bytes");
            }
            FrameRead::Eof => panic!("expected a frame"),
        }
        match read_frame(&mut cursor, 1 << 20).unwrap() {
            FrameRead::Eof => {}
            FrameRead::Frame(..) => panic!("expected EOF"),
        }
    }

    #[test]
    fn oversized_frames_are_refused_without_reading_the_body() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Null, &[0u8; 4096]).unwrap();
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, 64) {
            Err(FrameError::TooLarge { announced, limit: 64 }) => assert!(announced >= 4096),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The body was left unread.
        assert_eq!(cursor.len(), buf.len() - 8);
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Bool(true), b"xyz").unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor, 1 << 20), Err(FrameError::Io(_))));
    }
}
