//! The client side of the protocol: connect, one request frame out, one
//! response frame back.

use std::fmt;
use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, FrameError, FrameRead, Request, Response};

/// Where the daemon listens. Parsed from the CLI's `--connect` value:
/// `unix:<path>` selects a Unix socket, anything else is a TCP
/// `host:port`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string.
    ///
    /// # Errors
    ///
    /// Rejects empty addresses.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a socket path after `unix:`".to_string());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if s.is_empty() {
            return Err("endpoint must be `host:port` or `unix:<path>`".to_string());
        }
        Ok(Endpoint::Tcp(s.to_string()))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Why a round-trip failed. All variants are connection/protocol-level
/// problems — the daemon's own refusals travel inside a [`Response`] —
/// and the CLI maps every one of them to exit code 2.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the endpoint.
    Connect(String),
    /// The connection broke or a frame was malformed.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(m) => write!(f, "cannot connect: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol failure: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The client tolerates responses bigger than any request it sends
/// (optimized images are never larger than their input plus framing, but
/// leave generous room).
const MAX_RESPONSE_BYTES: usize = 256 << 20;

fn io_timeouts<S>(
    stream: &S,
    set_read: impl Fn(&S, Option<Duration>) -> io::Result<()>,
    set_write: impl Fn(&S, Option<Duration>) -> io::Result<()>,
) -> io::Result<()> {
    // Requests can legitimately take a while (a cold gcc-scale analysis);
    // the timeout guards against a dead daemon, not a slow one.
    let t = Some(Duration::from_secs(600));
    set_read(stream, t)?;
    set_write(stream, t)
}

/// Performs one request round-trip: connect, send `request` with `image`
/// as the frame blob, read the response frame.
///
/// # Errors
///
/// Fails on connect, transport, or framing problems; a daemon-side
/// refusal (busy, deadline, bad image, …) is a successful round-trip
/// whose [`Response::error`] is set.
pub fn request(
    endpoint: &Endpoint,
    request: &Request,
    image: &[u8],
) -> Result<(Response, Vec<u8>), ClientError> {
    let connect_err = |e: io::Error| ClientError::Connect(format!("{endpoint}: {e}"));
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr).map_err(connect_err)?;
            io_timeouts(&stream, TcpStream::set_read_timeout, TcpStream::set_write_timeout)
                .map_err(connect_err)?;
            round_trip(stream, request, image)
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path).map_err(connect_err)?;
            io_timeouts(&stream, UnixStream::set_read_timeout, UnixStream::set_write_timeout)
                .map_err(connect_err)?;
            round_trip(stream, request, image)
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => {
            Err(ClientError::Connect("unix sockets are not available on this platform".into()))
        }
    }
}

fn round_trip(
    mut stream: impl io::Read + io::Write,
    req: &Request,
    image: &[u8],
) -> Result<(Response, Vec<u8>), ClientError> {
    write_frame(&mut stream, &req.to_json(), image)
        .map_err(|e| ClientError::Protocol(format!("sending request: {e}")))?;
    match read_frame(&mut stream, MAX_RESPONSE_BYTES) {
        Ok(FrameRead::Frame(json, blob)) => {
            let response = Response::from_json(&json).map_err(ClientError::Protocol)?;
            Ok((response, blob))
        }
        Ok(FrameRead::Eof) => {
            Err(ClientError::Protocol("daemon closed the connection without replying".into()))
        }
        Err(e @ (FrameError::Io(_) | FrameError::TooLarge { .. } | FrameError::BadJson(_))) => {
            Err(ClientError::Protocol(format!("reading response: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/s.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:4100").unwrap(),
            Endpoint::Tcp("127.0.0.1:4100".to_string())
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("").is_err());
        assert_eq!(Endpoint::parse("unix:/a b/s.sock").unwrap().to_string(), "unix:/a b/s.sock");
    }

    #[test]
    fn connect_failure_is_reported_as_connect() {
        // Port 1 on localhost is essentially never listening.
        let ep = Endpoint::Tcp("127.0.0.1:1".to_string());
        let req = Request {
            cmd: crate::proto::Command::Stats,
            image_name: String::new(),
            deadline_ms: None,
            profile_len: 0,
        };
        match request(&ep, &req, &[]) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {other:?}"),
        }
    }
}
