//! Structural diffing of two program images to drive incremental
//! re-analysis.
//!
//! When a client re-submits an image that differs only slightly from one
//! the daemon has already analyzed, the cheap path is
//! [`spike_core::AnalysisCache::reanalyze`] seeded with the cached
//! analysis and the set of changed routines. That is only sound when the
//! "clean" routines really are dataflow-identical between the two
//! programs, so the diff errs relentlessly toward *dirty*: any doubt
//! about a routine marks it changed, and any doubt about the program
//! shape (routine count, names, entry routine) gives up entirely and
//! reports the pair as incomparable.

use std::collections::BTreeMap;

use spike_isa::Instruction;
use spike_program::{IndirectTargets, Program, Routine, RoutineId};

/// Side-table contents attributed to one routine, with every address
/// rewritten as an offset from the routine base so that a pure layout
/// shift (routines moved, bodies unchanged) compares equal.
#[derive(PartialEq, Default)]
struct RoutineAux {
    /// Jump tables: jump offset → target offsets (targets stay inside the
    /// jump's routine, a `Program` validation invariant).
    jump_tables: Vec<(u32, Vec<u32>)>,
    /// Indirect-call targets: call offset → normalized targets. `Known`
    /// entry addresses are rewritten as `(routine index, entry index)`
    /// via the owning program's entry map.
    indirect: Vec<(u32, NormalizedTargets)>,
    /// Live-register hints on unknown-target jumps: jump offset → set.
    jump_hints: Vec<(u32, spike_isa::RegSet)>,
    /// Address-materialization records: instruction offset → encoded
    /// word address. The encoded value equals the `lda` displacement (a
    /// validation invariant), so for byte-identical routine bodies these
    /// only differ if the record set itself changed.
    relocations: Vec<(u32, u32)>,
}

/// [`IndirectTargets`] with `Known` entry addresses made layout-free.
#[derive(PartialEq)]
enum NormalizedTargets {
    Unknown,
    Known(Vec<(usize, usize)>),
    Hinted { used: spike_isa::RegSet, defined: spike_isa::RegSet, killed: spike_isa::RegSet },
}

fn normalize_targets(p: &Program, t: &IndirectTargets) -> NormalizedTargets {
    match t {
        IndirectTargets::Unknown => NormalizedTargets::Unknown,
        IndirectTargets::Known(addrs) => NormalizedTargets::Known(
            addrs
                .iter()
                .map(|&a| {
                    let (rid, ei) = p.entry_at(a).expect("validated known target is an entrance");
                    (rid.index(), ei)
                })
                .collect(),
        ),
        IndirectTargets::Hinted { used, defined, killed } => {
            NormalizedTargets::Hinted { used: *used, defined: *defined, killed: *killed }
        }
    }
}

/// Groups a program's side tables by owning routine, normalized to
/// routine-relative offsets. Map iteration is in address order, so the
/// per-routine vectors are deterministically ordered and comparable.
fn aux_by_routine(p: &Program) -> BTreeMap<usize, RoutineAux> {
    let mut out: BTreeMap<usize, RoutineAux> = BTreeMap::new();
    let owner = |addr: u32| {
        let rid = p.routine_containing(addr).expect("validated aux info lies in a routine");
        (rid.index(), addr - p.routine(rid).addr())
    };
    for (&addr, targets) in p.jump_tables() {
        let (ri, off) = owner(addr);
        let base = p.routine(RoutineId::from_index(ri)).addr();
        let rel = targets.iter().map(|&t| t - base).collect();
        out.entry(ri).or_default().jump_tables.push((off, rel));
    }
    for (&addr, targets) in p.indirect_calls() {
        let (ri, off) = owner(addr);
        out.entry(ri).or_default().indirect.push((off, normalize_targets(p, targets)));
    }
    for (&addr, &set) in p.jump_hints() {
        let (ri, off) = owner(addr);
        out.entry(ri).or_default().jump_hints.push((off, set));
    }
    for (&addr, &target) in p.relocations() {
        let (ri, off) = owner(addr);
        out.entry(ri).or_default().relocations.push((off, target));
    }
    out
}

/// Whether the direct calls in two byte-identical routine bodies resolve
/// to the same callees. Equal instructions do not guarantee this: a `bsr`
/// displacement is layout-relative, so when surrounding routines grow or
/// shrink, an unchanged caller body can land on a different routine (or a
/// different entrance of the same routine).
fn calls_resolve_identically(old: &Program, new: &Program, or: &Routine, nr: &Routine) -> bool {
    debug_assert_eq!(or.insns(), nr.insns());
    for (i, insn) in or.insns().iter().enumerate() {
        if let Instruction::Bsr { .. } = insn {
            // A routine based near the top of the address space can make
            // `base + i` wrap, which would panic in debug builds and
            // compare the wrong address's call target in release builds
            // (unsound: a changed callee could look clean). Overflow
            // means we cannot prove the calls identical, so report dirty.
            let insn_addr = |base: u32| u32::try_from(i).ok().and_then(|i| base.checked_add(i));
            let (Some(oa), Some(na)) = (insn_addr(or.addr()), insn_addr(nr.addr())) else {
                return false;
            };
            let ot = old.direct_call_target(oa);
            let nt = new.direct_call_target(na);
            let norm = |t: Option<(RoutineId, usize)>| t.map(|(rid, ei)| (rid.index(), ei));
            if norm(ot) != norm(nt) {
                return false;
            }
        }
    }
    true
}

/// Computes the set of routines whose analysis facts may differ between
/// `old` and `new`.
///
/// Returns `None` when the programs are structurally incomparable —
/// different routine counts, names, export flags, or entry routine — in
/// which case the caller must analyze `new` from scratch. Otherwise
/// returns the dirty-routine ids (possibly empty, for a byte-level change
/// that turned out to be dataflow-neutral, e.g. a pure layout shift); the
/// set may be a superset of the truly changed routines, never a subset.
pub fn diff_for_reanalysis(old: &Program, new: &Program) -> Option<Vec<RoutineId>> {
    if old.routines().len() != new.routines().len() || old.entry().index() != new.entry().index() {
        return None;
    }
    for (or, nr) in old.routines().iter().zip(new.routines()) {
        if or.name() != nr.name() || or.exported() != nr.exported() {
            return None;
        }
    }

    let old_aux = aux_by_routine(old);
    let new_aux = aux_by_routine(new);
    let empty = RoutineAux::default();

    let mut dirty = Vec::new();
    for (i, (or, nr)) in old.routines().iter().zip(new.routines()).enumerate() {
        let body_equal = or.insns() == nr.insns() && or.entry_offsets() == nr.entry_offsets();
        let aux_equal = old_aux.get(&i).unwrap_or(&empty) == new_aux.get(&i).unwrap_or(&empty);
        let clean = body_equal && aux_equal && calls_resolve_identically(old, new, or, nr);
        if !clean {
            dirty.push(RoutineId::from_index(i));
        }
    }
    Some(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::{ProgramBuilder, Rewriter};

    fn base_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).def(Reg::A1).call("helper").call("leaf").halt();
        b.routine("helper").def(Reg::T0).def(Reg::V0).ret();
        b.routine("leaf").def(Reg::V0).ret();
        b.build().unwrap()
    }

    #[test]
    fn identical_programs_have_no_dirty_routines() {
        let p = base_program();
        assert_eq!(diff_for_reanalysis(&p, &p.clone()), Some(Vec::new()));
    }

    #[test]
    fn deleting_an_instruction_dirties_its_routine() {
        let p = base_program();
        let helper = p.routine_by_name("helper").unwrap();
        let addr = p.routine(helper).addr();
        let (q, changed) = Rewriter::new(&p).delete(addr).finish().unwrap();
        let dirty = diff_for_reanalysis(&p, &q).unwrap();
        assert!(dirty.contains(&helper));
        // Everything the rewriter reports changed must be in our dirty
        // set (ours may be larger, never smaller).
        for rid in changed {
            assert!(dirty.contains(&rid), "{rid} changed but not marked dirty");
        }
    }

    #[test]
    fn renamed_routine_is_incomparable() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).def(Reg::A1).call("renamed").call("leaf").halt();
        b.routine("renamed").def(Reg::T0).def(Reg::V0).ret();
        b.routine("leaf").def(Reg::V0).ret();
        let q = b.build().unwrap();
        assert_eq!(diff_for_reanalysis(&base_program(), &q), None);
    }

    #[test]
    fn different_routine_count_is_incomparable() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).halt();
        let q = b.build().unwrap();
        assert_eq!(diff_for_reanalysis(&base_program(), &q), None);
    }

    #[test]
    fn near_overflow_call_addresses_mark_the_routine_dirty() {
        // A routine based at the very top of the address space: the bsr
        // at index 1 makes `base + i` wrap. Such a routine can only come
        // from a corrupt or adversarial image; the diff must answer
        // "cannot prove identical" (dirty), not panic in debug builds or
        // compare a wrapped address's call target in release builds.
        let p = base_program();
        let r = spike_program::Routine::new(
            "edge",
            u32::MAX,
            vec![Instruction::Bsr { disp: 0 }, Instruction::Bsr { disp: 0 }],
            vec![0],
            false,
        );
        assert!(!calls_resolve_identically(&p, &p, &r, &r));
    }

    #[test]
    fn unchanged_body_with_retargeted_call_is_dirty() {
        // `helper` shrinks by one instruction, which shifts `leaf` down.
        // `main`'s second call keeps its encoding semantics (the rewriter
        // fixes displacements), so main's body changes; but the key
        // property is that the diff never reports a caller clean while
        // its resolved callee set changed.
        let p = base_program();
        let helper = p.routine_by_name("helper").unwrap();
        let (q, _) = Rewriter::new(&p).delete(p.routine(helper).addr()).finish().unwrap();
        let dirty = diff_for_reanalysis(&p, &q).unwrap();
        for (rid, or) in p.iter() {
            let nr = q.routine(rid);
            if or.insns() == nr.insns() && !dirty.contains(&rid) {
                assert!(calls_resolve_identically(&p, &q, or, nr));
            }
        }
    }
}
