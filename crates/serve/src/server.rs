//! The daemon runtime: listeners, a bounded work queue, a worker pool
//! with panic isolation, and graceful drain.
//!
//! Life of a request:
//!
//! 1. An acceptor thread (one per listener, blocking `accept`) accepts
//!    the connection. If the bounded queue is full, the acceptor itself
//!    writes a `busy` error frame and closes — explicit backpressure,
//!    never an unbounded backlog.
//! 2. A worker pops the connection, reads the request frame (size-capped,
//!    socket read/write timeouts armed), dispatches through
//!    [`Handler`](crate::handler::Handler) under `catch_unwind`, and
//!    writes the response frame. A panicking handler costs that request
//!    a `panic` error reply, not the daemon.
//! 3. `shutdown` (the command, [`Server::shutdown`], or SIGTERM in the
//!    daemon binary) flips one flag: acceptors stop accepting and exit,
//!    workers drain the queue, then everything joins and the Unix socket
//!    is unlinked. Requests already accepted are always answered.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use spike_core::AnalysisOptions;

use crate::cache::ProgramStore;
use crate::handler::{Deadline, Handler};
use crate::metrics::Metrics;
use crate::proto::{read_frame, write_frame, ErrorKind, FrameError, FrameRead, Request, Response};

/// How the daemon listens, queues, and bounds work.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP listen address (`host:port`), if any. Port 0 binds an
    /// ephemeral port; see [`Server::tcp_addr`].
    pub tcp: Option<String>,
    /// Unix socket path, if any. An existing socket file at the path is
    /// replaced.
    pub unix: Option<PathBuf>,
    /// Worker threads; 0 picks a small default from the machine size.
    pub workers: usize,
    /// Byte budget for the program/analysis cache.
    pub cache_bytes: usize,
    /// Bounded work-queue capacity; accepts beyond it are refused with a
    /// `busy` reply.
    pub queue_capacity: usize,
    /// Maximum request frame size (JSON + image blob) in bytes.
    pub max_frame_bytes: usize,
    /// Default per-request processing deadline (ms) when the request
    /// does not carry its own.
    pub default_deadline_ms: u64,
    /// `threads` knob passed into every analysis.
    pub analysis_threads: usize,
    /// Value representation passed into every analysis (`--sparse` /
    /// `--dense` on the CLI).
    pub analysis_representation: spike_core::Representation,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tcp: None,
            unix: None,
            workers: 0,
            cache_bytes: 256 << 20,
            queue_capacity: 64,
            max_frame_bytes: 64 << 20,
            default_deadline_ms: 300_000,
            analysis_threads: 0,
            analysis_representation: spike_core::Representation::default(),
        }
    }
}

/// One accepted connection, transport-erased.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn prepare(&mut self) -> io::Result<()> {
        // Workers want blocking I/O with timeouts so a stalled client
        // cannot pin a worker forever.
        let timeout = Some(Duration::from_secs(10));
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bounded handoff between acceptors and workers.
struct Queue {
    inner: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue { inner: Mutex::new(VecDeque::new()), ready: Condvar::new(), capacity }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues unless full; reports the depth after the push.
    fn push(&self, conn: Conn) -> Result<usize, Conn> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back(conn);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pops the next connection; `None` once `shutdown` is set and the
    /// queue is empty (the drain guarantee: accepted work is finished).
    fn pop(&self, shutdown: &AtomicBool) -> Option<Conn> {
        let mut q = self.lock();
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(250))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// SIGTERM flag, set by the handler installed with
/// [`install_sigterm_handler`].
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler that requests graceful drain (the accept
/// loops watch the flag). Call once, from a binary's `main`, before
/// starting the server; libraries and tests should use
/// [`Server::shutdown`] or the `shutdown` command instead.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signum: std::os::raw::c_int) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    // std links libc but exposes no signal API; `signal(2)` is the one
    // call needed, declared here directly. SIG_ERR (usize::MAX) is
    // ignored: failing to install only costs graceful-on-SIGTERM.
    extern "C" {
        fn signal(signum: std::os::raw::c_int, handler: usize) -> usize;
    }
    const SIGTERM_NUM: std::os::raw::c_int = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`shutdown`](Server::shutdown) then [`join`](Server::join).
pub struct Server {
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured listeners and starts the acceptor and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Fails when no listener is configured or a bind fails.
    pub fn start(options: &ServeOptions) -> io::Result<Server> {
        if options.tcp.is_none() && options.unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs --listen and/or --unix",
            ));
        }
        let analysis = AnalysisOptions {
            threads: options.analysis_threads,
            representation: options.analysis_representation,
            ..AnalysisOptions::default()
        };
        let store = Arc::new(ProgramStore::new(analysis, options.cache_bytes));
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::new(options.queue_capacity.max(1)));
        let mut threads = Vec::new();

        let tcp_addr = match &options.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                threads.push(spawn_acceptor(
                    "tcp-acceptor",
                    Arc::clone(&shutdown),
                    Arc::clone(&queue),
                    Arc::clone(&metrics),
                    move || listener.accept().map(|(s, _)| Conn::Tcp(s)),
                ));
                Some(local)
            }
            None => None,
        };

        #[cfg(unix)]
        let unix_path = match &options.unix {
            Some(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                threads.push(spawn_acceptor(
                    "unix-acceptor",
                    Arc::clone(&shutdown),
                    Arc::clone(&queue),
                    Arc::clone(&metrics),
                    move || listener.accept().map(|(s, _)| Conn::Unix(s)),
                ));
                Some(path.clone())
            }
            None => None,
        };
        #[cfg(not(unix))]
        let unix_path = {
            if options.unix.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
            None
        };

        let workers = if options.workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(2).clamp(2, 8)
        } else {
            options.workers
        };
        for i in 0..workers {
            let handler = Handler {
                store: Arc::clone(&store),
                metrics: Arc::clone(&metrics),
                queue_capacity: options.queue_capacity.max(1),
                shutdown: Arc::clone(&shutdown),
            };
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let default_deadline_ms = options.default_deadline_ms;
            let max_frame_bytes = options.max_frame_bytes;
            threads.push(
                thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = queue.pop(&shutdown) {
                            serve_connection(conn, &handler, default_deadline_ms, max_frame_bytes);
                        }
                    })
                    .expect("spawn worker"),
            );
        }

        Ok(Server { shutdown, threads, tcp_addr, unix_path })
    }

    /// The bound TCP address, if a TCP listener was configured — the way
    /// to learn the port after binding `:0`.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Whether a drain has been requested (by [`shutdown`](Self::shutdown),
    /// the `shutdown` command, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGTERM.load(Ordering::SeqCst)
    }

    /// Requests graceful drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_acceptors();
    }

    /// Unblocks acceptors parked in `accept` so they re-check the
    /// shutdown flag now rather than at the next real client. The
    /// throwaway connections are accepted, queued, and drain as
    /// immediate-EOF requests.
    fn wake_acceptors(&self) {
        if let Some(mut addr) = self.tcp_addr {
            if addr.ip().is_unspecified() {
                addr.set_ip(match addr {
                    SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
    }

    /// Waits for every acceptor and worker to finish, then removes the
    /// Unix socket file. Only returns once all accepted requests are
    /// answered.
    pub fn join(mut self) {
        // SIGTERM and the in-band shutdown command both funnel into the
        // same flag the threads watch.
        if SIGTERM.load(Ordering::SeqCst) {
            self.shutdown.store(true, Ordering::SeqCst);
        }
        // The in-band `shutdown` command sets the flag from a worker
        // without going through [`Server::shutdown`]; acceptors may
        // still be parked in `accept`.
        self.wake_acceptors();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until a drain is requested, polling the shutdown and
    /// SIGTERM flags, then joins.
    pub fn run_to_completion(self) {
        while !self.draining() {
            thread::sleep(Duration::from_millis(25));
        }
        self.shutdown();
        self.join();
    }
}

fn spawn_acceptor(
    name: &str,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Queue>,
    metrics: Arc<Metrics>,
    mut accept: impl FnMut() -> io::Result<Conn> + Send + 'static,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) && !SIGTERM.load(Ordering::SeqCst) {
                match accept() {
                    Ok(conn) => match queue.push(conn) {
                        Ok(depth) => metrics.observe_queue_depth(depth),
                        Err(mut refused) => {
                            metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            // Backpressure is explicit: the refused client
                            // gets a structured reply, not a hang.
                            if refused.prepare().is_ok() {
                                let resp = Response::error(ErrorKind::Busy, "work queue is full");
                                let _ = write_frame(&mut refused, &resp.to_json(), &[]);
                            }
                        }
                    },
                    // Blocking accept only fails transiently (e.g. the
                    // peer reset before the handshake finished); back
                    // off briefly rather than spin on a persistent one.
                    Err(_) => thread::sleep(Duration::from_millis(5)),
                }
            }
        })
        .expect("spawn acceptor")
}

/// Reads one request from `conn`, serves it, writes one response.
fn serve_connection(
    mut conn: Conn,
    handler: &Handler,
    default_deadline_ms: u64,
    max_frame_bytes: usize,
) {
    if conn.prepare().is_err() {
        return;
    }
    let (json, blob) = match read_frame(&mut conn, max_frame_bytes) {
        Ok(FrameRead::Frame(json, blob)) => (json, blob),
        Ok(FrameRead::Eof) => return,
        Err(e @ FrameError::TooLarge { .. }) => {
            handler.metrics.rejected_oversized.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::TooLarge, e.to_string());
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
        Err(e @ FrameError::BadJson(_)) => {
            handler.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::BadRequest, e.to_string());
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
        Err(FrameError::Io(_)) => return,
    };
    let request = match Request::from_json(&json) {
        Ok(r) => r,
        Err(msg) => {
            handler.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::BadRequest, msg);
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
    };
    handler.metrics.count_request(request.cmd.name());

    let started = Instant::now();
    let deadline = Deadline::starting_now(request.deadline_ms.unwrap_or(default_deadline_ms));
    let outcome = catch_unwind(AssertUnwindSafe(|| handler.handle(&request, &blob, &deadline)));
    let (response, out_blob) = match outcome {
        Ok(x) => x,
        Err(panic) => {
            handler.metrics.panics.fetch_add(1, Ordering::Relaxed);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "request handler panicked".to_string());
            (Response::error(ErrorKind::Panic, msg), Vec::new())
        }
    };
    handler.metrics.latency.record(started.elapsed());
    let _ = write_frame(&mut conn, &response.to_json(), &out_blob);
}
