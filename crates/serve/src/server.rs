//! The daemon runtime: listeners, a bounded work queue, a worker pool
//! with panic isolation, and graceful drain.
//!
//! Life of a request:
//!
//! 1. An acceptor thread (one per listener, blocking `accept`) accepts
//!    the connection. If the bounded queue is full, the acceptor itself
//!    writes a `busy` error frame and closes — explicit backpressure,
//!    never an unbounded backlog.
//! 2. A worker pops the connection, reads the request frame (size-capped,
//!    socket read/write timeouts armed), dispatches through
//!    [`Handler`](crate::handler::Handler) under `catch_unwind`, and
//!    writes the response frame. A panicking handler costs that request
//!    a `panic` error reply, not the daemon.
//! 3. `shutdown` (the command, [`Server::shutdown`], or SIGTERM in the
//!    daemon binary) flips one flag: acceptors stop accepting and exit,
//!    workers drain the queue, then everything joins and the Unix socket
//!    is unlinked. Requests already accepted are always answered.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use spike_core::json::Json;
use spike_core::AnalysisOptions;

use crate::cache::ProgramStore;
use crate::handler::{Deadline, Handler};
use crate::metrics::Metrics;
use crate::proto::{read_frame, write_frame, ErrorKind, FrameError, FrameRead, Request, Response};
use crate::snapshot::{self, RestoreReport};

/// How the daemon listens, queues, and bounds work.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP listen address (`host:port`), if any. Port 0 binds an
    /// ephemeral port; see [`Server::tcp_addr`].
    pub tcp: Option<String>,
    /// Unix socket path, if any. An existing socket file at the path is
    /// replaced.
    pub unix: Option<PathBuf>,
    /// Worker threads; 0 picks a small default from the machine size.
    pub workers: usize,
    /// Byte budget for the program/analysis cache.
    pub cache_bytes: usize,
    /// Bounded work-queue capacity; accepts beyond it are refused with a
    /// `busy` reply.
    pub queue_capacity: usize,
    /// Maximum request frame size (JSON + image blob) in bytes.
    pub max_frame_bytes: usize,
    /// Default per-request processing deadline (ms) when the request
    /// does not carry its own.
    pub default_deadline_ms: u64,
    /// `threads` knob passed into every analysis.
    pub analysis_threads: usize,
    /// Value representation passed into every analysis (`--sparse` /
    /// `--dense` on the CLI).
    pub analysis_representation: spike_core::Representation,
    /// Warm-cache snapshot file. When set, the daemon restores the cache
    /// from it at startup (falling back to cold on any mismatch or
    /// corruption) and writes a final snapshot after draining, so a
    /// plain restart starts warm.
    pub snapshot: Option<PathBuf>,
    /// Also write the snapshot every this many milliseconds while
    /// serving, so a crash loses at most one interval of warmth.
    /// Ignored without [`snapshot`](Self::snapshot).
    pub snapshot_interval_ms: Option<u64>,
    /// Drive connections through the event-driven reactor (epoll) rather
    /// than thread-per-connection acceptors, so thousands of idle
    /// clients cost one thread plus a few bytes each. Only effective on
    /// Linux; elsewhere the threaded acceptors are always used.
    pub event_driven: bool,
    /// All shard addresses of the cluster this instance belongs to, in
    /// shard-index order. Empty means standalone (no ownership checks,
    /// no forwarding).
    pub cluster: Vec<String>,
    /// This instance's index into [`cluster`](Self::cluster). Required
    /// when `cluster` is non-empty.
    pub shard_index: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tcp: None,
            unix: None,
            workers: 0,
            cache_bytes: 256 << 20,
            queue_capacity: 64,
            max_frame_bytes: 64 << 20,
            default_deadline_ms: 300_000,
            analysis_threads: 0,
            analysis_representation: spike_core::Representation::default(),
            snapshot: None,
            snapshot_interval_ms: None,
            event_driven: cfg!(target_os = "linux"),
            cluster: Vec::new(),
            shard_index: None,
        }
    }
}

/// One accepted connection, transport-erased.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn prepare(&mut self) -> io::Result<()> {
        // Workers want blocking I/O with timeouts so a stalled client
        // cannot pin a worker forever.
        let timeout = Some(Duration::from_secs(10));
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One unit of work for the pool: either a raw accepted connection
/// (threaded acceptors — the worker reads the frame itself) or a frame
/// the reactor already read off a nonblocking socket (the worker only
/// dispatches and replies).
pub(crate) enum Work {
    Conn(Conn),
    Frame(Conn, Json, Vec<u8>),
}

/// The bounded handoff between acceptors (or the reactor) and workers.
pub(crate) struct Queue {
    inner: Mutex<VecDeque<Work>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue { inner: Mutex::new(VecDeque::new()), ready: Condvar::new(), capacity }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Work>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues unless full; reports the depth after the push.
    pub(crate) fn push(&self, work: Work) -> Result<usize, Work> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(work);
        }
        q.push_back(work);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pops the next work item; `None` once `shutdown` is set and the
    /// queue is empty (the drain guarantee: accepted work is finished).
    fn pop(&self, shutdown: &AtomicBool) -> Option<Work> {
        let mut q = self.lock();
        loop {
            if let Some(work) = q.pop_front() {
                return Some(work);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(250))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// Binds a TCP listener with `SO_REUSEADDR`, so a restarted daemon can
/// reclaim its port immediately instead of waiting out the TIME_WAIT
/// sockets its predecessor left behind. std's `TcpListener::bind` does
/// not set the option, which makes fixed-port restarts — the whole
/// point of warm snapshot restores, and what a cluster shard *must* do
/// to keep its ring position — fail with `EADDRINUSE` for up to a
/// minute.
#[cfg(target_os = "linux")]
pub(crate) fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }
    #[repr(C)]
    struct SockaddrIn6 {
        sin6_family: u16,
        sin6_port: u16,
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("cannot resolve {addr}"))
    })?;
    let domain = if resolved.is_ipv4() { AF_INET } else { AF_INET6 };
    // SAFETY: plain syscalls on an owned fd; on any failure the fd is
    // closed before returning, on success it becomes a TcpListener.
    unsafe {
        let fd = socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, size_of::<i32>() as u32) < 0 {
            return Err(fail(fd));
        }
        let rc = match resolved {
            SocketAddr::V4(a) => {
                let sa = SockaddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: a.port().to_be(),
                    sin_addr: u32::from_ne_bytes(a.ip().octets()),
                    sin_zero: [0; 8],
                };
                bind(fd, (&sa as *const SockaddrIn).cast(), size_of::<SockaddrIn>() as u32)
            }
            SocketAddr::V6(a) => {
                let sa = SockaddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: a.port().to_be(),
                    sin6_flowinfo: a.flowinfo(),
                    sin6_addr: a.ip().octets(),
                    sin6_scope_id: a.scope_id(),
                };
                bind(fd, (&sa as *const SockaddrIn6).cast(), size_of::<SockaddrIn6>() as u32)
            }
        };
        if rc < 0 || listen(fd, 1024) < 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Off Linux, plain `bind` (the reactor is Linux-only anyway and tests
/// there use ephemeral ports).
#[cfg(not(target_os = "linux"))]
pub(crate) fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// SIGTERM flag, set by the handler installed with
/// [`install_sigterm_handler`].
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM has requested a drain; the reactor polls this
/// alongside the server's own shutdown flag.
pub(crate) fn sigterm_requested() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Installs a SIGTERM handler that requests graceful drain (the accept
/// loops watch the flag). Call once, from a binary's `main`, before
/// starting the server; libraries and tests should use
/// [`Server::shutdown`] or the `shutdown` command instead.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_signum: std::os::raw::c_int) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    // std links libc but exposes no signal API; `signal(2)` is the one
    // call needed, declared here directly. SIG_ERR (usize::MAX) is
    // ignored: failing to install only costs graceful-on-SIGTERM.
    extern "C" {
        fn signal(signum: std::os::raw::c_int, handler: usize) -> usize;
    }
    const SIGTERM_NUM: std::os::raw::c_int = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`shutdown`](Server::shutdown) then [`join`](Server::join).
pub struct Server {
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    store: Arc<ProgramStore>,
    snapshot_path: Option<PathBuf>,
    restored: Option<RestoreReport>,
}

impl Server {
    /// Binds the configured listeners and starts the acceptor and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Fails when no listener is configured or a bind fails.
    pub fn start(options: &ServeOptions) -> io::Result<Server> {
        if options.tcp.is_none() && options.unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs --listen and/or --unix",
            ));
        }
        let analysis = AnalysisOptions {
            threads: options.analysis_threads,
            representation: options.analysis_representation,
            ..AnalysisOptions::default()
        };
        let cluster = if options.cluster.is_empty() {
            None
        } else {
            let index = options.shard_index.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cluster mode needs --shard-index to say which shard this is",
                )
            })?;
            if index >= options.cluster.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "shard index {index} is out of range for a {}-shard cluster",
                        options.cluster.len()
                    ),
                ));
            }
            Some(Arc::new(crate::cluster::ShardIdentity {
                ring: crate::cluster::Ring::new(options.cluster.clone()),
                index,
            }))
        };
        let store = Arc::new(ProgramStore::new(analysis, options.cache_bytes));
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::new(options.queue_capacity.max(1)));
        let mut threads = Vec::new();

        // Warm restart: try the snapshot before accepting anything, so
        // the first request already sees the restored entries. Every
        // failure mode degrades to a cold start.
        let restored = match &options.snapshot {
            Some(path) => match snapshot::restore(path, &store, store.options()) {
                Ok(report) => {
                    eprintln!(
                        "spike-served: restored {} cached analyses ({} bytes) from {} in {} ms",
                        report.entries,
                        report.bytes,
                        path.display(),
                        report.elapsed_ms,
                    );
                    Some(report)
                }
                Err(snapshot::SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => None,
                Err(e) => {
                    eprintln!(
                        "spike-served: ignoring snapshot {}: {e}; starting cold",
                        path.display()
                    );
                    None
                }
            },
            None => None,
        };

        let event_driven = options.event_driven && cfg!(target_os = "linux");
        let tcp_listener = match &options.tcp {
            Some(addr) => Some(bind_reuseaddr(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        #[cfg(unix)]
        let unix_listener = match &options.unix {
            Some(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                Some(UnixListener::bind(path)?)
            }
            None => None,
        };
        #[cfg(unix)]
        let unix_path = options.unix.clone();
        #[cfg(not(unix))]
        let unix_path = {
            if options.unix.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
            None
        };

        if event_driven {
            // `event_driven` is false off-Linux, so this arm only
            // compiles (and only runs) where epoll exists.
            #[cfg(target_os = "linux")]
            {
                let mut listeners = Vec::new();
                if let Some(l) = tcp_listener {
                    listeners.push(crate::reactor::Listener::Tcp(l));
                }
                if let Some(l) = unix_listener {
                    listeners.push(crate::reactor::Listener::Unix(l));
                }
                threads.push(crate::reactor::spawn_reactor(
                    listeners,
                    Arc::clone(&shutdown),
                    Arc::clone(&queue),
                    Arc::clone(&metrics),
                    options.max_frame_bytes,
                )?);
            }
        } else {
            if let Some(listener) = tcp_listener {
                threads.push(spawn_acceptor(
                    "tcp-acceptor",
                    Arc::clone(&shutdown),
                    Arc::clone(&queue),
                    Arc::clone(&metrics),
                    move || listener.accept().map(|(s, _)| Conn::Tcp(s)),
                ));
            }
            #[cfg(unix)]
            if let Some(listener) = unix_listener {
                threads.push(spawn_acceptor(
                    "unix-acceptor",
                    Arc::clone(&shutdown),
                    Arc::clone(&queue),
                    Arc::clone(&metrics),
                    move || listener.accept().map(|(s, _)| Conn::Unix(s)),
                ));
            }
        }

        let workers = if options.workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(2).clamp(2, 8)
        } else {
            options.workers
        };
        for i in 0..workers {
            let handler = Handler {
                store: Arc::clone(&store),
                metrics: Arc::clone(&metrics),
                queue_capacity: options.queue_capacity.max(1),
                shutdown: Arc::clone(&shutdown),
                cluster: cluster.clone(),
            };
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let default_deadline_ms = options.default_deadline_ms;
            let max_frame_bytes = options.max_frame_bytes;
            threads.push(
                thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn(move || {
                        while let Some(work) = queue.pop(&shutdown) {
                            match work {
                                Work::Conn(conn) => serve_connection(
                                    conn,
                                    &handler,
                                    default_deadline_ms,
                                    max_frame_bytes,
                                ),
                                Work::Frame(conn, json, blob) => {
                                    serve_frame(conn, json, blob, &handler, default_deadline_ms);
                                }
                            }
                        }
                    })
                    .expect("spawn worker"),
            );
        }

        // The periodic snapshotter: bounds how much warmth a crash can
        // lose. The graceful paths (drain, SIGTERM) write their own
        // final snapshot in `join`.
        if let (Some(path), Some(interval_ms)) = (&options.snapshot, options.snapshot_interval_ms) {
            let path = path.clone();
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let interval = Duration::from_millis(interval_ms.max(1));
            threads.push(
                thread::Builder::new()
                    .name("snapshotter".into())
                    .spawn(move || {
                        let mut last = Instant::now();
                        while !shutdown.load(Ordering::SeqCst) && !SIGTERM.load(Ordering::SeqCst) {
                            thread::sleep(Duration::from_millis(100).min(interval));
                            if last.elapsed() < interval {
                                continue;
                            }
                            if let Err(e) = snapshot::write(&path, &store, store.options()) {
                                eprintln!(
                                    "spike-served: periodic snapshot to {} failed: {e}",
                                    path.display()
                                );
                            }
                            last = Instant::now();
                        }
                    })
                    .expect("spawn snapshotter"),
            );
        }

        Ok(Server {
            shutdown,
            threads,
            tcp_addr,
            unix_path,
            store,
            snapshot_path: options.snapshot.clone(),
            restored,
        })
    }

    /// The bound TCP address, if a TCP listener was configured — the way
    /// to learn the port after binding `:0`.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// What the startup snapshot restore installed, if a snapshot was
    /// configured, present, and valid.
    pub fn restored(&self) -> Option<RestoreReport> {
        self.restored
    }

    /// Whether a drain has been requested (by [`shutdown`](Self::shutdown),
    /// the `shutdown` command, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGTERM.load(Ordering::SeqCst)
    }

    /// Requests graceful drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_acceptors();
    }

    /// Unblocks acceptors parked in `accept` so they re-check the
    /// shutdown flag now rather than at the next real client. The
    /// throwaway connections are accepted, queued, and drain as
    /// immediate-EOF requests.
    fn wake_acceptors(&self) {
        if let Some(mut addr) = self.tcp_addr {
            if addr.ip().is_unspecified() {
                addr.set_ip(match addr {
                    SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
    }

    /// Waits for every acceptor and worker to finish, then removes the
    /// Unix socket file. Only returns once all accepted requests are
    /// answered.
    pub fn join(mut self) {
        // SIGTERM and the in-band shutdown command both funnel into the
        // same flag the threads watch.
        if SIGTERM.load(Ordering::SeqCst) {
            self.shutdown.store(true, Ordering::SeqCst);
        }
        // The in-band `shutdown` command sets the flag from a worker
        // without going through [`Server::shutdown`]; acceptors may
        // still be parked in `accept`.
        self.wake_acceptors();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Drain-time snapshot: every accepted request has been answered
        // and the workers are gone, so this captures the final warm
        // state. A plain restart pointed at the same file starts warm.
        if let Some(path) = &self.snapshot_path {
            match snapshot::write(path, &self.store, self.store.options()) {
                Ok((entries, bytes)) => eprintln!(
                    "spike-served: wrote snapshot of {entries} cached analyses ({bytes} bytes) to {}",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("spike-served: final snapshot to {} failed: {e}", path.display());
                }
            }
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until a drain is requested, polling the shutdown and
    /// SIGTERM flags, then joins.
    pub fn run_to_completion(self) {
        while !self.draining() {
            thread::sleep(Duration::from_millis(25));
        }
        self.shutdown();
        self.join();
    }
}

fn spawn_acceptor(
    name: &str,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Queue>,
    metrics: Arc<Metrics>,
    mut accept: impl FnMut() -> io::Result<Conn> + Send + 'static,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) && !SIGTERM.load(Ordering::SeqCst) {
                match accept() {
                    Ok(conn) => match queue.push(Work::Conn(conn)) {
                        Ok(depth) => metrics.observe_queue_depth(depth),
                        Err(refused) => {
                            let Work::Conn(mut refused) = refused else { unreachable!() };
                            metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            // Backpressure is explicit: the refused client
                            // gets a structured reply, not a hang.
                            if refused.prepare().is_ok() {
                                let resp = Response::error(ErrorKind::Busy, "work queue is full");
                                let _ = write_frame(&mut refused, &resp.to_json(), &[]);
                            }
                        }
                    },
                    // Blocking accept only fails transiently (e.g. the
                    // peer reset before the handshake finished); back
                    // off briefly rather than spin on a persistent one.
                    Err(_) => thread::sleep(Duration::from_millis(5)),
                }
            }
        })
        .expect("spawn acceptor")
}

/// Reads one request from `conn`, serves it, writes one response.
fn serve_connection(
    mut conn: Conn,
    handler: &Handler,
    default_deadline_ms: u64,
    max_frame_bytes: usize,
) {
    if conn.prepare().is_err() {
        return;
    }
    let (json, blob) = match read_frame(&mut conn, max_frame_bytes) {
        Ok(FrameRead::Frame(json, blob)) => (json, blob),
        Ok(FrameRead::Eof) => return,
        Err(e @ FrameError::TooLarge { .. }) => {
            handler.metrics.rejected_oversized.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::TooLarge, e.to_string());
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
        Err(e @ FrameError::BadJson(_)) => {
            handler.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::BadRequest, e.to_string());
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
        Err(FrameError::Io(_)) => return,
    };
    dispatch(conn, json, blob, handler, default_deadline_ms);
}

/// Serves a frame the reactor already read: re-arms blocking I/O with
/// timeouts for the reply write, then dispatches like the threaded path.
pub(crate) fn serve_frame(
    mut conn: Conn,
    json: Json,
    blob: Vec<u8>,
    handler: &Handler,
    default_deadline_ms: u64,
) {
    if conn.prepare().is_err() {
        return;
    }
    dispatch(conn, json, blob, handler, default_deadline_ms);
}

/// The shared tail of both intake paths: decode the request, run it
/// under `catch_unwind`, record latency, write the reply.
fn dispatch(
    mut conn: Conn,
    json: Json,
    blob: Vec<u8>,
    handler: &Handler,
    default_deadline_ms: u64,
) {
    let request = match Request::from_json(&json) {
        Ok(r) => r,
        Err(msg) => {
            handler.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(ErrorKind::BadRequest, msg);
            let _ = write_frame(&mut conn, &resp.to_json(), &[]);
            return;
        }
    };
    handler.metrics.count_request(request.cmd.name());

    let started = Instant::now();
    let deadline = Deadline::starting_now(request.deadline_ms.unwrap_or(default_deadline_ms));
    let outcome = catch_unwind(AssertUnwindSafe(|| handler.handle(&request, &blob, &deadline)));
    let (response, out_blob) = match outcome {
        Ok(x) => x,
        Err(panic) => {
            handler.metrics.panics.fetch_add(1, Ordering::Relaxed);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "request handler panicked".to_string());
            (Response::error(ErrorKind::Panic, msg), Vec::new())
        }
    };
    handler.metrics.latency.record(started.elapsed());
    let _ = write_frame(&mut conn, &response.to_json(), &out_blob);
}
