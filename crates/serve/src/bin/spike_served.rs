//! The standalone daemon binary. `spike serve` is the same runtime
//! reached through the main CLI; this binary exists so a deployment can
//! ship the service without the rest of the toolchain.

use std::path::PathBuf;
use std::process::ExitCode;

use spike_serve::{server, ServeOptions, Server};

const USAGE: &str = "\
usage: spike-served [--listen HOST:PORT] [--unix PATH] [--workers N]
                    [--cache-bytes N] [--queue N] [--max-frame-bytes N]
                    [--deadline-ms N] [--threads N] [--snapshot PATH]
                    [--snapshot-interval-ms N] [--no-reactor]
                    [--cluster A,B,C --shard-index I]

At least one of --listen / --unix is required. Runs until SIGTERM or a
client sends the `shutdown` command; both drain gracefully and exit 0.

--snapshot restores the warm cache from PATH at startup (cold fallback
on any mismatch) and writes a final snapshot on drain; with
--snapshot-interval-ms it also snapshots periodically while serving.
--cluster/--shard-index join a sharded cluster: this instance owns its
consistent-hash slice and forwards misrouted requests to the owner.
";

fn parse(args: &[String]) -> Result<ServeOptions, String> {
    let mut o = ServeOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut want = |name: &str| -> Result<&str, String> {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        let num = |name: &str, v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("{name} needs a number, got `{v}`"))
        };
        match a.as_str() {
            "--listen" => o.tcp = Some(want("--listen")?.to_string()),
            "--unix" => o.unix = Some(PathBuf::from(want("--unix")?)),
            "--workers" => o.workers = num("--workers", want("--workers")?)? as usize,
            "--cache-bytes" => {
                o.cache_bytes = num("--cache-bytes", want("--cache-bytes")?)? as usize
            }
            "--queue" => o.queue_capacity = num("--queue", want("--queue")?)? as usize,
            "--max-frame-bytes" => {
                o.max_frame_bytes = num("--max-frame-bytes", want("--max-frame-bytes")?)? as usize
            }
            "--deadline-ms" => {
                o.default_deadline_ms = num("--deadline-ms", want("--deadline-ms")?)?
            }
            "--threads" => o.analysis_threads = num("--threads", want("--threads")?)? as usize,
            "--snapshot" => o.snapshot = Some(PathBuf::from(want("--snapshot")?)),
            "--snapshot-interval-ms" => {
                o.snapshot_interval_ms =
                    Some(num("--snapshot-interval-ms", want("--snapshot-interval-ms")?)?)
            }
            "--no-reactor" => o.event_driven = false,
            "--cluster" => {
                o.cluster = want("--cluster")?.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--shard-index" => {
                o.shard_index = Some(num("--shard-index", want("--shard-index")?)? as usize)
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    #[cfg(unix)]
    server::install_sigterm_handler();
    let server = match Server::start(&options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = server.tcp_addr() {
        eprintln!("spike-served: listening on tcp {addr}");
    }
    if let Some(path) = &options.unix {
        eprintln!("spike-served: listening on unix {}", path.display());
    }
    server.run_to_completion();
    eprintln!("spike-served: drained, exiting");
    ExitCode::SUCCESS
}
