//! Deterministic report rendering shared by the local CLI and the daemon.
//!
//! The byte-identity contract — `spike client <cmd>` must print exactly
//! what `spike <cmd>` prints — is enforced *by construction*: both paths
//! call the renderers in this module to produce the stdout text, and both
//! route everything non-deterministic (wall-clock timings, scheduler
//! effort, cache disposition) through the separate `*_diag` renderers,
//! which go to stderr locally and to the response's `diag` field over the
//! wire. Nothing in a report string may depend on timing, thread count,
//! or cache state.

use std::fmt::Write as _;

use spike_baseline::BaselineAnalysis;
use spike_core::{Analysis, AnalysisStats, QueryAnswer, QueryStats};
use spike_lint::LintReport;
use spike_opt::OptReport;
use spike_program::Program;

use crate::proto::LintFormat;

/// The deterministic `spike analyze` report: structure counts, reduction
/// ratios, memory, and (optionally) routine summaries.
///
/// # Errors
///
/// Returns the usage message when `routine` names a routine the program
/// does not contain (checked before anything is rendered, so a failing
/// request produces no partial report).
pub fn analyze_report(
    image_name: &str,
    program: &Program,
    analysis: &Analysis,
    summaries: bool,
    routine: Option<&str>,
) -> Result<String, String> {
    if let Some(name) = routine {
        if program.routine_by_name(name).is_none() {
            return Err(format!("no routine named `{name}`"));
        }
    }
    let stats = &analysis.stats;
    let psg = analysis.psg.stats();
    let counts = analysis.cfg.counts();
    let cg = spike_callgraph::CallGraph::build(program, &analysis.cfg);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} routines, {} basic blocks, {} instructions",
        image_name,
        program.routines().len(),
        analysis.cfg.total_blocks(),
        program.total_instructions()
    );
    let _ = writeln!(out, "call graph: {}", cg.stats());
    let _ = writeln!(
        out,
        "psg: {} nodes, {} edges ({} flow, {} call-return, {} branch nodes)",
        psg.nodes, psg.edges, psg.flow_edges, psg.call_return_edges, psg.branch_nodes
    );
    let _ = writeln!(
        out,
        "cfg: {} blocks, {} arcs -> psg is {:.0}% / {:.0}% smaller",
        counts.basic_blocks,
        counts.total_arcs(),
        100.0 * (1.0 - psg.nodes as f64 / counts.basic_blocks as f64),
        100.0 * (1.0 - psg.edges as f64 / counts.total_arcs() as f64)
    );
    let _ = writeln!(
        out,
        "stack: {} slots in {} frames ({} escaped)",
        analysis.stack.slot_count(),
        program.routines().len() - analysis.stack.escaped_count(),
        analysis.stack.escaped_count()
    );
    let _ = writeln!(out, "memory {:.2} MB", stats.memory_bytes as f64 / 1e6);

    let wanted = |name: &str| routine.map_or(summaries, |r| r == name);
    for (rid, r) in program.iter() {
        if !wanted(r.name()) {
            continue;
        }
        let s = analysis.summary.routine(rid);
        let _ = writeln!(out, "\n{}:", r.name());
        for (i, _) in s.call_used.iter().enumerate() {
            let _ = writeln!(
                out,
                "  entrance {i}: call-used={} call-defined={} call-killed={}",
                s.call_used[i], s.call_defined[i], s.call_killed[i]
            );
            let _ = writeln!(out, "  live-at-entry[{i}] = {}", s.live_at_entry[i]);
        }
        for (i, live) in s.live_at_exit.iter().enumerate() {
            let _ = writeln!(out, "  live-at-exit[{i}]  = {live}");
        }
        if !s.saved_restored.is_empty() {
            let _ = writeln!(out, "  saves/restores {}", s.saved_restored);
        }
    }
    Ok(out)
}

/// The non-deterministic half of the analyze report: wall-clock phase
/// timings and scheduler effort.
pub fn analyze_diag(stats: &AnalysisStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "time {:?} (cfg {:?}, init {:?}, psg {:?}, phase1 {:?}, phase2 {:?}, stack {:?}), \
         {} front-end worker(s)",
        stats.total(),
        stats.cfg_build,
        stats.init,
        stats.psg_build,
        stats.phase1,
        stats.phase2,
        stats.stack_build,
        stats.front_end_workers,
    );
    let visits = match stats.representation {
        spike_core::Representation::Sparse => "chain visits",
        spike_core::Representation::Dense => "node visits",
    };
    let _ = writeln!(
        out,
        "schedule: {} representation, {} + {} {} (phase 1 + 2), {} wave(s), {} wave worker(s)",
        stats.representation.name(),
        stats.phase1_visits,
        stats.phase2_visits,
        visits,
        stats.waves,
        stats.phase_workers
    );
    let _ = writeln!(
        out,
        "stack slots: {} + {} block visits (must-defined + live)",
        stats.stack_forward_visits, stats.stack_backward_visits
    );
    out
}

/// The deterministic `spike optimize` report (edit counts, loop motion,
/// and the rounds/reuse accounting, which are exact replay properties of
/// the pass pipeline, not timings). `pgo` records whether an execution
/// profile weighted the loop and spill decisions.
pub fn optimize_report(
    image_name: &str,
    out_name: &str,
    report: &OptReport,
    incremental: bool,
    pgo: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} -> {}: {} -> {} instructions ({} dead, {} spill pairs, {} reallocations, \
         {} dead stack stores, {} frame bytes shrunk)",
        image_name,
        out_name,
        report.instructions_before,
        report.instructions_after,
        report.dead_deleted,
        report.spill_pairs_removed,
        report.registers_reallocated,
        report.stack_stores_deleted,
        report.frame_bytes_shrunk
    );
    let _ = writeln!(
        out,
        "licm: {} load(s) + {} op(s) hoisted; spill placement saved {} dynamic instruction(s) \
         ({})",
        report.loads_hoisted,
        report.ops_hoisted,
        report.spill_dynamic_saved,
        if pgo { "profile-weighted" } else { "static loop-depth estimate" }
    );
    let _ = writeln!(
        out,
        "{} round(s); analysis re-ran {} routine(s), reused {} from cache{}",
        report.rounds,
        report.routines_reanalyzed,
        report.routines_reused,
        if incremental { "" } else { " (incremental re-analysis disabled)" }
    );
    out
}

/// A profile is *hot* for a routine when that routine's measured share of
/// executed instructions reaches this fraction.
pub const HOT_FRACTION: f64 = 0.05;

/// The deterministic hot/cold classification section appended to `spike
/// analyze --profile` output (and to the daemon's analyze response when
/// the request carries a profile blob). Fully derived from the profile's
/// counters, so it is byte-stable for a given (image, profile) pair.
pub fn profile_report(program: &Program, profile: &spike_profile::Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} run(s), {} instructions executed, {} call(s)",
        profile.runs, profile.total_steps, profile.calls
    );
    // Hot routines sorted by measured steps (descending), ties broken by
    // routine id so the listing is deterministic.
    let mut hot: Vec<(usize, u64)> = program
        .iter()
        .map(|(rid, _)| {
            let i = rid.index();
            (i, profile.steps_per_routine.get(i).copied().unwrap_or(0))
        })
        .filter(|&(i, steps)| steps > 0 && profile.routine_fraction(i) >= HOT_FRACTION)
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let covered: u64 = hot.iter().map(|&(_, s)| s).sum();
    let coverage = if profile.total_steps == 0 {
        0.0
    } else {
        100.0 * covered as f64 / profile.total_steps as f64
    };
    let _ = writeln!(
        out,
        "hot/cold: {} hot routine(s) of {} (>= {:.0}% of execution each, {:.1}% together)",
        hot.len(),
        program.routines().len(),
        100.0 * HOT_FRACTION,
        coverage
    );
    for (i, steps) in hot {
        let r = program.routines().get(i).expect("routine index from program iteration");
        let _ = writeln!(
            out,
            "  hot {:<24} {:>12} steps ({:.1}%)",
            r.name(),
            steps,
            100.0 * profile.routine_fraction(i)
        );
    }
    out
}

/// The deterministic `spike query` report for summary, live-at-entry and
/// reaches queries (`uninit` renders through [`lint_report`] instead).
///
/// The per-routine lines are byte-identical to the corresponding lines of
/// `analyze_report`'s routine slice, so a demand-driven answer can be
/// diffed directly against the whole-program report.
pub fn query_report(routine: &str, callee: Option<&str>, answer: &QueryAnswer) -> String {
    let mut out = String::new();
    match answer {
        QueryAnswer::Summary { call_used, call_defined, call_killed, saved_restored } => {
            let _ = writeln!(out, "{routine}:");
            for (i, _) in call_used.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  entrance {i}: call-used={} call-defined={} call-killed={}",
                    call_used[i], call_defined[i], call_killed[i]
                );
            }
            if !saved_restored.is_empty() {
                let _ = writeln!(out, "  saves/restores {saved_restored}");
            }
        }
        QueryAnswer::LiveAtEntry { live_at_entry, live_at_exit } => {
            let _ = writeln!(out, "{routine}:");
            for (i, live) in live_at_entry.iter().enumerate() {
                let _ = writeln!(out, "  live-at-entry[{i}] = {live}");
            }
            for (i, live) in live_at_exit.iter().enumerate() {
                let _ = writeln!(out, "  live-at-exit[{i}]  = {live}");
            }
        }
        QueryAnswer::Reaches(reaches) => {
            let callee = callee.unwrap_or("?");
            let verb = if *reaches { "reaches" } else { "does not reach" };
            let _ = writeln!(out, "{routine} {verb} {callee}");
        }
    }
    out
}

/// The non-deterministic half of the query report: how much of the
/// program the demand engine actually solved.
pub fn query_diag(stats: &QueryStats) -> String {
    if stats.answered_from_full {
        "query: answered from the full analysis\n".into()
    } else {
        format!(
            "query: cone {} + {} component(s) ({} routine(s)), solved {} + {}, {} visit(s)\n",
            stats.phase1_cone_components,
            stats.phase2_cone_components,
            stats.cone_routines,
            stats.phase1_components_solved,
            stats.phase2_components_solved,
            stats.visits,
        )
    }
}

/// The `spike lint` report in either format. Fully deterministic.
pub fn lint_report(image_name: &str, report: &LintReport, format: LintFormat) -> String {
    let mut out = String::new();
    match format {
        LintFormat::Json => {
            let _ = writeln!(out, "{}", report.to_json(Some(image_name)));
        }
        LintFormat::Human => {
            for d in report.diagnostics() {
                let _ = writeln!(out, "{d}");
            }
            let _ = writeln!(
                out,
                "{image_name}: {} error(s), {} warning(s)",
                report.errors(),
                report.warnings()
            );
        }
    }
    out
}

/// The deterministic `spike compare` report: summary identity plus the
/// PSG-vs-supergraph size comparison.
///
/// # Errors
///
/// Returns the mismatch message when a PSG summary disagrees with the
/// whole-CFG baseline — which is a bug in the analysis, surfaced the same
/// way the local CLI surfaces it.
pub fn compare_report(
    program: &Program,
    psg: &Analysis,
    full: &BaselineAnalysis,
) -> Result<String, String> {
    for (rid, r) in program.iter() {
        if psg.summary.routine(rid) != &full.summaries[rid.index()] {
            return Err(format!("summary mismatch for {} — this is a bug", r.name()));
        }
    }
    let s = psg.psg.stats();
    let c = &full.counts;
    let mut out = String::new();
    let _ = writeln!(out, "summaries identical for all {} routines", program.routines().len());
    let _ = writeln!(
        out,
        "psg: {} nodes / {} edges; full cfg: {} blocks / {} arcs",
        s.nodes,
        s.edges,
        c.basic_blocks,
        c.total_arcs(),
    );
    Ok(out)
}

/// The non-deterministic half of the compare report: the two analyses'
/// wall-clock times.
pub fn compare_diag(psg: &Analysis, full: &BaselineAnalysis) -> String {
    format!("psg time {:?}; full cfg time {:?}\n", psg.stats.total(), full.stats.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_core::{analyze, AnalysisOptions};
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("leaf").put_int().halt();
        b.routine("leaf").copy(Reg::A0, Reg::V0).ret();
        b.build().unwrap()
    }

    #[test]
    fn analyze_report_is_deterministic_and_structural() {
        let p = sample();
        let a = analyze(&p);
        let r1 = analyze_report("x.img", &p, &a, true, None).unwrap();
        let r2 = analyze_report("x.img", &p, &a, true, None).unwrap();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("x.img: 2 routines"));
        assert!(r1.contains("call graph:"));
        assert!(r1.contains("\nmain:\n"));
        assert!(r1.contains("call-used"));
        // Timings live in the diag renderer, never in the report.
        assert!(!r1.contains("time "));
        assert!(analyze_diag(&a.stats).contains("time "));
    }

    #[test]
    fn analyze_report_rejects_unknown_routines_before_rendering() {
        let p = sample();
        let a = analyze(&p);
        let err = analyze_report("x.img", &p, &a, false, Some("nope")).unwrap_err();
        assert_eq!(err, "no routine named `nope`");
    }

    #[test]
    fn compare_report_confirms_identity() {
        let p = sample();
        let a = analyze(&p);
        let full = spike_baseline::analyze_baseline_with(&p, &AnalysisOptions::default());
        let report = compare_report(&p, &a, &full).unwrap();
        assert!(report.starts_with("summaries identical for all 2 routines\n"));
        assert!(!report.contains("in "));
        assert!(compare_diag(&a, &full).contains("psg time"));
    }

    #[test]
    fn query_report_lines_match_the_analyze_slice() {
        let p = sample();
        let a = analyze(&p);
        let slice = analyze_report("x.img", &p, &a, false, Some("main")).unwrap();
        let mut cache =
            spike_core::AnalysisCache::from_analysis(AnalysisOptions::default(), analyze(&p));
        let main = p.routine_by_name("main").unwrap();
        let (summary, _) = cache.query(&p, &spike_core::Query::Summary(main));
        let (live, _) = cache.query(&p, &spike_core::Query::LiveAtEntry(main));
        for report in [query_report("main", None, &summary), query_report("main", None, &live)] {
            for line in report.lines() {
                assert!(slice.contains(line), "query line {line:?} missing from analyze slice");
            }
        }
        let leaf = p.routine_by_name("leaf").unwrap();
        let (r, _) = cache.query(&p, &spike_core::Query::Reaches { caller: main, callee: leaf });
        assert_eq!(query_report("main", Some("leaf"), &r), "main reaches leaf\n");
        let (r, _) = cache.query(&p, &spike_core::Query::Reaches { caller: leaf, callee: main });
        assert_eq!(query_report("leaf", Some("main"), &r), "leaf does not reach main\n");
    }

    #[test]
    fn optimize_report_names_the_weighting_mode() {
        let report = OptReport {
            instructions_before: 10,
            instructions_after: 8,
            loads_hoisted: 1,
            spill_dynamic_saved: 42,
            rounds: 1,
            ..OptReport::default()
        };
        let s = optimize_report("x.img", "o.img", &report, true, false);
        assert!(s.contains("licm: 1 load(s) + 0 op(s) hoisted"), "{s}");
        assert!(s.contains("saved 42 dynamic instruction(s) (static loop-depth estimate)"), "{s}");
        let s = optimize_report("x.img", "o.img", &report, true, true);
        assert!(s.contains("(profile-weighted)"), "{s}");
    }

    #[test]
    fn profile_report_classifies_hot_routines() {
        let p = sample();
        let (_, exec) = spike_sim::run_profiled(&p, 10_000);
        let prof = spike_profile::Profile::collect(&p, &exec);
        let s = profile_report(&p, &prof);
        assert!(s.starts_with("profile: 1 run(s)"), "{s}");
        // Both routines run once in a 7-instruction program, so both
        // clear the 5% bar and together cover everything.
        assert!(s.contains("hot/cold: 2 hot routine(s) of 2"), "{s}");
        assert!(s.contains("100.0% together"), "{s}");
        assert!(s.contains("hot main"), "{s}");
        assert!(s.contains("hot leaf"), "{s}");
        // Deterministic, like every report.
        assert_eq!(s, profile_report(&p, &prof));
    }

    #[test]
    fn lint_report_matches_cli_shapes() {
        let p = sample();
        let report = spike_lint::lint(&p);
        let human = lint_report("x.img", &report, LintFormat::Human);
        assert!(human.ends_with("error(s), 0 warning(s)\n"));
        let json = lint_report("x.img", &report, LintFormat::Json);
        assert!(json.starts_with("{\"tool\":\"spike-lint\""));
        assert!(json.ends_with("}\n"));
    }
}
