//! Daemon counters and a fixed-bucket latency histogram.
//!
//! Everything here is monotonic-clock or counter based — no wall-clock
//! reads — so the `stats` output is reproducible modulo scheduling. The
//! counters are plain relaxed atomics: they are statistics, not
//! synchronization, and every reader tolerates a momentarily stale view.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use spike_core::json::Json;

use crate::cache::CacheSnapshot;

/// Number of finite latency buckets. Bucket 0 counts sub-microsecond
/// observations (an elapsed time of `0µs`); bucket `i ≥ 1` counts
/// observations in `[2^(i-1), 2^i)` microseconds, so every finite
/// bucket's exclusive upper bound is `2^i` — the value the percentiles
/// report. Observations of `2^(BUCKETS-1)` microseconds or more land in
/// a separate overflow bucket rather than being silently merged into the
/// top finite bucket (which would make bucket `BUCKETS-1`'s bound a
/// lie); the overflow count is reported explicitly and percentiles that
/// fall into it return `u64::MAX`.
const BUCKETS: usize = 40;

/// A lock-free power-of-two-bucket histogram of request latencies.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = 64 - us.leading_zeros() as usize;
        match self.counts.get(bucket) {
            Some(slot) => slot.fetch_add(1, Relaxed),
            None => self.overflow.fetch_add(1, Relaxed),
        };
    }

    fn snapshot(&self) -> ([u64; BUCKETS], u64) {
        let mut out = [0u64; BUCKETS];
        for (o, c) in out.iter_mut().zip(&self.counts) {
            *o = c.load(Relaxed);
        }
        (out, self.overflow.load(Relaxed))
    }

    /// The exclusive upper bound (in µs) of the bucket containing the
    /// `p`-th percentile observation; 0 when nothing was recorded and
    /// `u64::MAX` when the percentile falls in the overflow bucket. `p`
    /// is in `(0, 100]`.
    fn percentile(counts: &[u64; BUCKETS], overflow: u64, p: u64) -> u64 {
        let total: u64 = counts.iter().sum::<u64>() + overflow;
        if total == 0 {
            return 0;
        }
        let rank = (total * p).div_ceil(100);
        let mut cumulative = 0;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return 1u64 << i;
            }
        }
        u64::MAX
    }
}

/// Per-command request counters, indexed by wire command name.
#[derive(Default)]
pub struct CommandCounters {
    analyze: AtomicU64,
    lint: AtomicU64,
    optimize: AtomicU64,
    query: AtomicU64,
    compare: AtomicU64,
    stats: AtomicU64,
    shutdown: AtomicU64,
}

impl CommandCounters {
    fn slot(&self, cmd: &str) -> Option<&AtomicU64> {
        match cmd {
            "analyze" => Some(&self.analyze),
            "lint" => Some(&self.lint),
            "optimize" => Some(&self.optimize),
            "query" => Some(&self.query),
            "compare" => Some(&self.compare),
            "stats" => Some(&self.stats),
            "shutdown" => Some(&self.shutdown),
            _ => None,
        }
    }
}

/// All daemon counters. One instance lives in an `Arc` shared by the
/// acceptors, the workers, and the `stats` handler.
#[derive(Default)]
pub struct Metrics {
    /// Requests whose frame was successfully read (including ones later
    /// rejected for deadline or bad content).
    pub requests_total: AtomicU64,
    per_command: CommandCounters,
    /// Requests refused because the bounded work queue was full.
    pub rejected_busy: AtomicU64,
    /// Frames refused for exceeding the byte limit.
    pub rejected_oversized: AtomicU64,
    /// Requests whose deadline expired before or during processing.
    pub rejected_deadline: AtomicU64,
    /// Frames that parsed as JSON but not as a request.
    pub bad_requests: AtomicU64,
    /// Handler panics survived via `catch_unwind`.
    pub panics: AtomicU64,
    /// Image-bearing requests forwarded to their owning shard because
    /// they landed on the wrong cluster member.
    pub forwarded: AtomicU64,
    /// Highest queue depth ever observed.
    pub queue_depth_highwater: AtomicU64,
    /// End-to-end handler latency (dequeue to reply written).
    pub latency: Histogram,
}

impl Metrics {
    /// Counts one dispatched request of the given wire command.
    pub fn count_request(&self, cmd: &str) {
        self.requests_total.fetch_add(1, Relaxed);
        if let Some(slot) = self.per_command.slot(cmd) {
            slot.fetch_add(1, Relaxed);
        }
    }

    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_highwater.fetch_max(depth as u64, Relaxed);
    }

    /// Renders the full `stats` document. Schema (stable, checked by the
    /// CI dogfood job): `{tool, version, requests: {total, analyze, lint,
    /// optimize, query, compare, stats, shutdown}, cache: {entries,
    /// bytes, budget_bytes, hits, misses, incremental_warm, coalesced,
    /// evictions, restored}, queue: {capacity, depth_highwater,
    /// rejected_busy}, rejected: {oversized, deadline, bad_request},
    /// panics, forwarded, latency_us: {p50, p95, p99, buckets,
    /// overflow}}`.
    pub fn to_stats_json(&self, cache: &CacheSnapshot, queue_capacity: usize) -> Json {
        let n = |v: u64| Json::from(v);
        let (counts, overflow) = self.latency.snapshot();
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        obj(vec![
            ("tool", Json::from("spike-served")),
            ("version", Json::from(env!("CARGO_PKG_VERSION"))),
            (
                "requests",
                obj(vec![
                    ("total", n(self.requests_total.load(Relaxed))),
                    ("analyze", n(self.per_command.analyze.load(Relaxed))),
                    ("lint", n(self.per_command.lint.load(Relaxed))),
                    ("optimize", n(self.per_command.optimize.load(Relaxed))),
                    ("query", n(self.per_command.query.load(Relaxed))),
                    ("compare", n(self.per_command.compare.load(Relaxed))),
                    ("stats", n(self.per_command.stats.load(Relaxed))),
                    ("shutdown", n(self.per_command.shutdown.load(Relaxed))),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("entries", Json::from(cache.entries)),
                    ("bytes", Json::from(cache.bytes)),
                    ("budget_bytes", Json::from(cache.budget_bytes)),
                    ("hits", n(cache.counters.hits)),
                    ("misses", n(cache.counters.misses_cold)),
                    ("incremental_warm", n(cache.counters.misses_incremental)),
                    ("coalesced", n(cache.counters.coalesced)),
                    ("evictions", n(cache.counters.evictions)),
                    ("restored", n(cache.counters.restored)),
                ]),
            ),
            (
                "queue",
                obj(vec![
                    ("capacity", Json::from(queue_capacity)),
                    ("depth_highwater", n(self.queue_depth_highwater.load(Relaxed))),
                    ("rejected_busy", n(self.rejected_busy.load(Relaxed))),
                ]),
            ),
            (
                "rejected",
                obj(vec![
                    ("oversized", n(self.rejected_oversized.load(Relaxed))),
                    ("deadline", n(self.rejected_deadline.load(Relaxed))),
                    ("bad_request", n(self.bad_requests.load(Relaxed))),
                ]),
            ),
            ("panics", n(self.panics.load(Relaxed))),
            ("forwarded", n(self.forwarded.load(Relaxed))),
            (
                "latency_us",
                obj(vec![
                    ("p50", n(Histogram::percentile(&counts, overflow, 50))),
                    ("p95", n(Histogram::percentile(&counts, overflow, 95))),
                    ("p99", n(Histogram::percentile(&counts, overflow, 99))),
                    ("buckets", Json::Arr(counts.iter().map(|&c| n(c)).collect())),
                    ("overflow", n(overflow)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheCounters;

    fn empty_cache() -> CacheSnapshot {
        CacheSnapshot {
            entries: 0,
            bytes: 0,
            budget_bytes: 1 << 20,
            counters: CacheCounters::default(),
        }
    }

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let h = Histogram::default();
        for us in [3u64, 5, 9, 900, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        let (counts, overflow) = h.snapshot();
        let p50 = Histogram::percentile(&counts, overflow, 50);
        let p99 = Histogram::percentile(&counts, overflow, 99);
        // p50 lands in the bucket holding 9µs (<16), p99 in the bucket
        // holding 1s (<2^20 µs is too small; 1e6 < 2^20 = 1048576).
        assert_eq!(p50, 16);
        assert_eq!(p99, 1 << 20);
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_buckets_hold_exact_half_open_ranges() {
        let h = Histogram::default();
        // Bucket i ≥ 1 holds [2^(i-1), 2^i); bucket 0 holds only 0µs.
        // Probe every boundary of the first few buckets plus interior
        // points, and both sides of the overflow boundary.
        for us in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(Duration::from_micros(us));
        }
        h.record(Duration::from_micros((1 << 39) - 1)); // top finite bucket
        h.record(Duration::from_micros(1 << 39)); // first overflow value
        h.record(Duration::from_micros(u64::MAX));
        let (counts, overflow) = h.snapshot();
        let mut expected = [0u64; BUCKETS];
        expected[0] = 1; // 0
        expected[1] = 1; // 1
        expected[2] = 2; // 2, 3
        expected[3] = 2; // 4, 7
        expected[4] = 1; // 8
        expected[10] = 1; // 1023
        expected[11] = 1; // 1024
        expected[39] = 1; // 2^39 - 1
        assert_eq!(counts, expected);
        assert_eq!(overflow, 2, "≥ 2^39µs observations go to the overflow bucket");
        // A percentile that falls in the overflow bucket says so rather
        // than reporting the top finite bound.
        assert_eq!(Histogram::percentile(&counts, overflow, 99), u64::MAX);
        assert_eq!(Histogram::percentile(&counts, overflow, 50), 8);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let (counts, overflow) = Histogram::default().snapshot();
        assert_eq!(Histogram::percentile(&counts, overflow, 50), 0);
        assert_eq!(Histogram::percentile(&counts, overflow, 99), 0);
    }

    #[test]
    fn stats_json_has_the_documented_shape() {
        let m = Metrics::default();
        m.count_request("analyze");
        m.count_request("analyze");
        m.count_request("stats");
        m.observe_queue_depth(3);
        m.latency.record(Duration::from_micros(7));
        let json = m.to_stats_json(&empty_cache(), 64);
        assert_eq!(json.get("tool").and_then(Json::as_str), Some("spike-served"));
        let requests = json.get("requests").expect("requests");
        assert_eq!(requests.get("total").and_then(Json::as_u64), Some(3));
        assert_eq!(requests.get("analyze").and_then(Json::as_u64), Some(2));
        assert_eq!(
            json.get("queue").and_then(|q| q.get("depth_highwater")).and_then(Json::as_u64),
            Some(3)
        );
        let lat = json.get("latency_us").expect("latency_us");
        assert!(lat.get("p50").and_then(Json::as_u64).unwrap() >= 8);
        assert_eq!(lat.get("buckets").and_then(Json::as_array).unwrap().len(), BUCKETS);
        // The document round-trips through the shared parser.
        let text = json.to_string();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }
}
