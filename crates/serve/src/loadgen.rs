//! Load generator for the daemon: opens thousands of concurrent
//! connections against one instance and measures per-request latency
//! percentiles.
//!
//! The run has two phases that match what the event-driven connection
//! core is built for:
//!
//! 1. **Open** — every connection is established up front, so the
//!    daemon holds all of them simultaneously (idle sockets parked in
//!    epoll, no thread each).
//! 2. **Drive** — a small pool of sender threads walks the open
//!    connections, sending one `analyze` request per connection
//!    (round-robin over a few pre-warmed images) and timing the full
//!    write-to-reply round trip.
//!
//! The daemon and the generator each hold one file descriptor per
//! connection, so a 10k-connection run wants the two in *separate
//! processes* — `spike loadgen` exists for exactly that.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use spike_core::json::Json;

use crate::proto::{read_frame, write_frame, FrameRead, Request, Response};

/// What to aim at and how hard. The request mix (the program images
/// cycled over) is supplied by the caller — the daemon crate does not
/// generate programs.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Daemon TCP address (`host:port`).
    pub connect: String,
    /// Concurrent connections to hold open (one request each).
    pub connections: usize,
    /// Sender threads draining the open connections.
    pub inflight: usize,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions { connect: String::new(), connections: 10_000, inflight: 32 }
    }
}

/// What a run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Connections successfully opened (and therefore requests sent).
    pub connections: usize,
    /// Requests answered with exit 0.
    pub ok: usize,
    /// Requests that failed (daemon error, protocol error, connect
    /// failure).
    pub errors: usize,
    /// Wall time to open every connection.
    pub open_ms: u128,
    /// Wall time to drive one request over every connection.
    pub drive_ms: u128,
    /// Requests per second over the drive phase.
    pub rps: f64,
    /// Round-trip latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// The report as JSON, the shape committed in `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            [
                ("connections", Json::from(self.connections)),
                ("ok", Json::from(self.ok)),
                ("errors", Json::from(self.errors)),
                ("open_ms", Json::Int(self.open_ms as i64)),
                ("drive_ms", Json::Int(self.drive_ms as i64)),
                ("rps", Json::Float((self.rps * 1000.0).round() / 1000.0)),
                ("p50_us", Json::Int(self.p50_us as i64)),
                ("p95_us", Json::Int(self.p95_us as i64)),
                ("p99_us", Json::Int(self.p99_us as i64)),
                ("max_us", Json::Int(self.max_us as i64)),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        )
    }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

fn analyze_request(name: &str) -> Request {
    Request {
        cmd: crate::proto::Command::Analyze { summaries: false, routine: None },
        image_name: name.to_string(),
        deadline_ms: None,
        profile_len: 0,
    }
}

/// One timed round trip over an already-open connection.
fn round_trip(stream: &mut TcpStream, json: &Json, image: &[u8]) -> Result<u64, String> {
    let t = Instant::now();
    write_frame(stream, json, image).map_err(|e| format!("send: {e}"))?;
    match read_frame(stream, 256 << 20) {
        Ok(FrameRead::Frame(reply, _)) => {
            let elapsed = t.elapsed().as_micros() as u64;
            let response = Response::from_json(&reply).map_err(|e| format!("reply: {e}"))?;
            match response.error {
                None => Ok(elapsed),
                Some((kind, message)) => {
                    Err(format!("daemon refused ({}): {message}", kind.name()))
                }
            }
        }
        Ok(FrameRead::Eof) => Err("daemon closed without replying".to_string()),
        Err(e) => Err(format!("reply: {e}")),
    }
}

/// Runs one load generation pass against a live daemon, cycling the
/// request stream over `images` (each is pre-warmed before timing).
///
/// # Errors
///
/// Fails when no images are given, the daemon is unreachable, or a
/// warm-up request is refused; individual drive-phase failures are
/// *counted*, not fatal.
pub fn run(options: &LoadgenOptions, images: &[Vec<u8>]) -> Result<LoadgenReport, String> {
    if images.is_empty() {
        return Err("loadgen needs at least one image".to_string());
    }
    let requests: Vec<Json> =
        (0..images.len()).map(|i| analyze_request(&format!("load{i}")).to_json()).collect();

    // Warm every image once so the drive phase measures the serving
    // path (cache hit + render + wire), not N analyses of one image
    // serialized behind the single-flight lock.
    for (i, image) in images.iter().enumerate() {
        let mut stream = TcpStream::connect(&options.connect)
            .map_err(|e| format!("cannot connect to {}: {e}", options.connect))?;
        prepare(&stream)?;
        round_trip(&mut stream, &requests[i], image).map_err(|e| format!("warm-up: {e}"))?;
    }

    // Phase 1: open every connection before sending anything. The
    // daemon now holds `connections` concurrent sockets.
    let t_open = Instant::now();
    let mut conns = Vec::with_capacity(options.connections);
    let mut errors = 0usize;
    for i in 0..options.connections {
        match connect_with_retry(&options.connect) {
            Ok(stream) => conns.push((i, stream)),
            Err(_) => errors += 1,
        }
    }
    let open_ms = t_open.elapsed().as_millis();
    let connections = conns.len();

    // Phase 2: drain them from a bounded sender pool, one request per
    // connection, timing each round trip.
    let work = Mutex::new(conns);
    let results = Mutex::new(Vec::with_capacity(connections));
    let t_drive = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..options.inflight.max(1) {
            scope.spawn(|| loop {
                let Some((i, mut stream)) = work.lock().unwrap().pop() else { break };
                let which = i % images.len();
                let outcome = round_trip(&mut stream, &requests[which], &images[which]);
                results.lock().unwrap().push(outcome);
            });
        }
    });
    let drive_ms = t_drive.elapsed().as_millis();

    let mut latencies = Vec::with_capacity(connections);
    for outcome in results.into_inner().unwrap() {
        match outcome {
            Ok(us) => latencies.push(us),
            Err(_) => errors += 1,
        }
    }
    latencies.sort_unstable();
    let ok = latencies.len();
    Ok(LoadgenReport {
        connections,
        ok,
        errors,
        open_ms,
        drive_ms,
        rps: ok as f64 / (drive_ms.max(1) as f64 / 1000.0),
        p50_us: percentile(&latencies, 50),
        p95_us: percentile(&latencies, 95),
        p99_us: percentile(&latencies, 99),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

fn prepare(stream: &TcpStream) -> Result<(), String> {
    let t = Some(Duration::from_secs(600));
    stream.set_read_timeout(t).map_err(|e| e.to_string())?;
    stream.set_write_timeout(t).map_err(|e| e.to_string())
}

/// Connects with a few short retries: under a mass-open the listener
/// backlog can momentarily fill while the reactor drains it.
fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..5 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                prepare(&stream)?;
                return Ok(stream);
            }
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(1 << attempt));
            }
        }
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeOptions, Server};

    #[test]
    fn percentiles_index_the_sorted_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 95), 95);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn a_small_run_measures_every_connection() {
        let server = Server::start(&ServeOptions {
            tcp: Some("127.0.0.1:0".into()),
            ..ServeOptions::default()
        })
        .expect("daemon starts");
        let options = LoadgenOptions {
            connect: server.tcp_addr().expect("tcp bound").to_string(),
            connections: 64,
            inflight: 8,
        };
        let images: Vec<Vec<u8>> =
            (0..2).map(|i| spike_synth::generate_executable(0x10AD ^ i, 4).to_image()).collect();
        let report = run(&options, &images).expect("loadgen runs");
        assert_eq!(report.connections, 64);
        assert_eq!(report.ok, 64, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
        assert!(report.max_us > 0);
        let json = report.to_json();
        for key in ["connections", "ok", "errors", "rps", "p50_us", "p95_us", "p99_us"] {
            assert!(json.get(key).is_some(), "loadgen JSON must carry {key}");
        }
        server.shutdown();
        server.join();
    }
}
