//! The daemon's warm heart: a content-addressed, byte-budgeted LRU of
//! analyzed programs with single-flight request coalescing.
//!
//! Every request that carries an image goes through
//! [`ProgramStore::get_or_analyze`]:
//!
//! * **Hit** — the image's content hash is cached; the request reuses the
//!   converged [`Analysis`] without touching the analyzer.
//! * **Coalesced hit** — another request is analyzing the same bytes
//!   right now; this one blocks on a condvar and wakes to the shared
//!   result instead of duplicating the work.
//! * **Incremental miss** — the image is new but structurally diffable
//!   against a cached program with a small dirty set; the analysis is
//!   seeded from the cached result via
//!   [`spike_core::AnalysisCache::reanalyze`], re-solving only the dirty
//!   routines.
//! * **Cold miss** — nothing comparable is cached; full from-scratch
//!   analysis.
//!
//! Entries are charged their image size plus the analysis' own
//! [`heap-byte estimate`](spike_core::AnalysisCache::heap_bytes); when
//! the total exceeds the configured budget, least-recently-used entries
//! are dropped (never the one just inserted, so a single oversized
//! program still caches).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use spike_core::{analyze_with, Analysis, AnalysisCache, AnalysisOptions};
use spike_isa::CloneExact;
use spike_program::Program;

use crate::diff::diff_for_reanalysis;

/// Content hash of an image: two independent FNV-1a 64 lanes (different
/// offset bases, second lane salted), 128 bits total. Not cryptographic —
/// this guards against accidental collisions between benign inputs, and
/// 2⁻¹²⁸ is beyond accidental.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey([u64; 2]);

impl CacheKey {
    /// Hashes image bytes to a cache key.
    pub fn of(bytes: &[u8]) -> CacheKey {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut a: u64 = 0xCBF2_9CE4_8422_2325;
        let mut b: u64 = 0x6C62_272E_07BB_0142;
        for &byte in bytes {
            a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
            b = (b ^ u64::from(byte ^ 0xA5)).wrapping_mul(PRIME);
        }
        CacheKey([a, b])
    }

    /// The two 64-bit lanes, for serialization and for the cluster's
    /// consistent-hash ring (which positions keys by the first lane).
    pub const fn lanes(self) -> [u64; 2] {
        self.0
    }

    /// Rebuilds a key from its serialized lanes.
    pub const fn from_lanes(lanes: [u64; 2]) -> CacheKey {
        CacheKey(lanes)
    }
}

/// How a request's image was resolved; feeds the daemon's counters and
/// the per-response diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The exact image was cached.
    Hit,
    /// Another in-flight request for the same image produced the result.
    CoalescedHit,
    /// Analyzed from scratch.
    MissCold,
    /// Analyzed incrementally, seeded from a cached near-identical
    /// program.
    MissIncremental,
}

impl CacheOutcome {
    /// Short name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::CoalescedHit => "coalesced-hit",
            CacheOutcome::MissCold => "miss",
            CacheOutcome::MissIncremental => "incremental-miss",
        }
    }
}

/// A cached program with its converged analysis, shared by every request
/// that resolves to the same image bytes.
pub struct AnalyzedProgram {
    /// Content hash of the image this was built from.
    pub key: CacheKey,
    /// The validated program.
    pub program: Program,
    /// The converged interprocedural analysis.
    pub analysis: Analysis,
    /// The raw image bytes. Retained because they are the canonical
    /// program representation for warm-cache snapshots: a snapshot
    /// stores `(image, analysis)` and re-parses the program on restore
    /// (`Program::from_image` is deterministic), and the cluster router
    /// hashes them for ownership checks.
    pub image: Vec<u8>,
}

/// A cached program served by the demand-driven query engine. Unlike
/// [`AnalyzedProgram`] the analysis state is mutable — each query may
/// grow the memoized cone — so it sits behind a mutex and the store
/// re-charges its heap footprint after every query.
pub struct QueriedProgram {
    /// Content hash of the image this was built from.
    pub key: CacheKey,
    /// The validated program.
    pub program: Program,
    /// Query-capable analysis state (demand engine or full analysis).
    pub cache: Mutex<AnalysisCache>,
}

impl QueriedProgram {
    /// Locks the analysis state, shrugging off poison: a panicking query
    /// leaves the engine in a consistent converged-prefix state.
    pub fn lock(&self) -> MutexGuard<'_, AnalysisCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct Entry {
    shared: Arc<AnalyzedProgram>,
    /// LRU + heap charge for this entry.
    bytes: usize,
    last_used: u64,
}

struct QueryEntry {
    shared: Arc<QueriedProgram>,
    /// LRU + heap charge for this entry.
    bytes: usize,
    last_used: u64,
}

/// Monotonically increasing counters, snapshot under the store lock.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheCounters {
    /// Exact-image cache hits.
    pub hits: u64,
    /// Requests that piggybacked on another request's in-flight analysis.
    pub coalesced: u64,
    /// From-scratch analyses.
    pub misses_cold: u64,
    /// Diff-seeded incremental analyses.
    pub misses_incremental: u64,
    /// Entries dropped by the byte-budget LRU.
    pub evictions: u64,
    /// Entries installed warm from a snapshot file at startup.
    pub restored: u64,
}

/// Point-in-time cache occupancy, for the `stats` command.
#[derive(Clone, Copy, Debug)]
pub struct CacheSnapshot {
    /// Cached programs.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
    /// The counters at snapshot time.
    pub counters: CacheCounters,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    /// Demand-query entries, keyed like `entries` but disjoint from it:
    /// a key lives in at most one map (queries reuse a full entry by
    /// seeding from it rather than sharing it).
    query_entries: HashMap<CacheKey, QueryEntry>,
    /// Keys currently being analyzed by some thread.
    in_flight: HashSet<CacheKey>,
    /// LRU clock.
    tick: u64,
    total_bytes: usize,
    counters: CacheCounters,
}

impl Inner {
    /// Evicts least-recently-used entries (from either map) until the
    /// budget holds, never evicting `keep` so a single oversized program
    /// still caches.
    fn evict_to_budget(&mut self, budget_bytes: usize, keep: CacheKey) {
        while self.total_bytes > budget_bytes && self.entries.len() + self.query_entries.len() > 1 {
            let full_victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (*k, e.last_used));
            let query_victim = self
                .query_entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (*k, e.last_used));
            let victim = match (full_victim, query_victim) {
                (Some(f), Some(q)) => {
                    if f.1 <= q.1 {
                        Some((f.0, true))
                    } else {
                        Some((q.0, false))
                    }
                }
                (Some(f), None) => Some((f.0, true)),
                (None, Some(q)) => Some((q.0, false)),
                (None, None) => None,
            };
            let Some((key, is_full)) = victim else { break };
            let bytes = if is_full {
                self.entries.remove(&key).expect("victim exists").bytes
            } else {
                self.query_entries.remove(&key).expect("victim exists").bytes
            };
            self.total_bytes -= bytes;
            self.counters.evictions += 1;
        }
    }
}

/// The shared cache. All public methods are `&self`; the store is meant
/// to live in an `Arc` shared by every worker thread.
pub struct ProgramStore {
    inner: Mutex<Inner>,
    flights: Condvar,
    options: AnalysisOptions,
    budget_bytes: usize,
}

/// Clears the in-flight mark even if analysis panics, so waiting
/// requests wake up and retry instead of hanging forever.
struct FlightGuard<'a> {
    store: &'a ProgramStore,
    key: CacheKey,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.store.lock();
        inner.in_flight.remove(&self.key);
        self.store.flights.notify_all();
    }
}

impl ProgramStore {
    /// Creates a store that analyzes with `options` and holds at most
    /// about `budget_bytes` of cached images + analyses.
    pub fn new(options: AnalysisOptions, budget_bytes: usize) -> ProgramStore {
        ProgramStore {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                query_entries: HashMap::new(),
                in_flight: HashSet::new(),
                tick: 0,
                total_bytes: 0,
                counters: CacheCounters::default(),
            }),
            flights: Condvar::new(),
            options,
            budget_bytes,
        }
    }

    /// The options every analysis through this store uses.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// A worker panicking while holding the lock leaves only counters and
    /// map bookkeeping, all of which stay internally consistent under
    /// every early exit, so the poison flag carries no information here.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Occupancy and counters, for `stats`.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = self.lock();
        CacheSnapshot {
            entries: inner.entries.len() + inner.query_entries.len(),
            bytes: inner.total_bytes,
            budget_bytes: self.budget_bytes,
            counters: inner.counters,
        }
    }

    /// Resolves image bytes to a cached (or freshly computed) analyzed
    /// program.
    ///
    /// # Errors
    ///
    /// Returns the image loader's error message when `image` does not
    /// decode to a valid [`Program`]. Parse failures are not cached.
    pub fn get_or_analyze(
        &self,
        image: &[u8],
    ) -> Result<(Arc<AnalyzedProgram>, CacheOutcome), String> {
        let key = CacheKey::of(image);

        // Fast path / single-flight gate.
        let donors: Vec<Arc<AnalyzedProgram>> = {
            let mut inner = self.lock();
            let mut waited = false;
            loop {
                if inner.entries.contains_key(&key) {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let e = inner.entries.get_mut(&key).expect("entry just seen");
                    e.last_used = tick;
                    let shared = Arc::clone(&e.shared);
                    let outcome =
                        if waited { CacheOutcome::CoalescedHit } else { CacheOutcome::Hit };
                    match outcome {
                        CacheOutcome::CoalescedHit => inner.counters.coalesced += 1,
                        _ => inner.counters.hits += 1,
                    }
                    return Ok((shared, outcome));
                }
                if inner.in_flight.contains(&key) {
                    waited = true;
                    inner = self.flights.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                inner.in_flight.insert(key);
                break;
            }
            // Donor candidates for the incremental path, most recently
            // used first. Snapshot the Arcs so the expensive work below
            // runs outside the lock.
            let mut donors: Vec<(u64, Arc<AnalyzedProgram>)> =
                inner.entries.values().map(|e| (e.last_used, Arc::clone(&e.shared))).collect();
            donors.sort_by_key(|d| std::cmp::Reverse(d.0));
            donors.into_iter().map(|(_, shared)| shared).collect()
        };
        let _flight = FlightGuard { store: self, key };

        let program = Program::from_image(image).map_err(|e| e.to_string())?;

        // Diff against cached programs: the first comparable donor wins
        // (donors are freshest-first, and a recent re-submission is the
        // most likely near-duplicate). Reanalysis pays per dirty routine,
        // so give up when the diff would dirty more than half the
        // program.
        let n = program.routines().len();
        let seeded = donors.iter().find_map(|donor| {
            let dirty = diff_for_reanalysis(&donor.program, &program)?;
            (dirty.len() * 2 <= n).then_some((donor, dirty))
        });

        let analysis = match &seeded {
            Some((donor, dirty)) => {
                // `clone_exact`, not `clone`: the incremental result's
                // `memory_bytes` (and with it the analyze report) must be
                // bit-identical to a from-scratch run, which a plain
                // capacity-compacting clone of the donor would break.
                let mut cache = AnalysisCache::from_analysis(
                    self.options.clone(),
                    donor.analysis.clone_exact(),
                );
                cache.reanalyze(&program, dirty);
                cache.into_analysis().expect("reanalyze always fills the cache")
            }
            None => analyze_with(&program, &self.options),
        };
        let outcome = if analysis.stats.routines_reused > 0 {
            CacheOutcome::MissIncremental
        } else {
            CacheOutcome::MissCold
        };

        let bytes = image.len() + analysis.stats.memory_bytes;
        let shared = Arc::new(AnalyzedProgram { key, program, analysis, image: image.to_vec() });

        let mut inner = self.lock();
        match outcome {
            CacheOutcome::MissIncremental => inner.counters.misses_incremental += 1,
            _ => inner.counters.misses_cold += 1,
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.total_bytes += bytes;
        inner.entries.insert(key, Entry { shared: Arc::clone(&shared), bytes, last_used: tick });
        inner.evict_to_budget(self.budget_bytes, key);
        drop(inner);
        // FlightGuard drops here: removes the in-flight mark and wakes
        // the coalesced waiters, who now find the entry (or, on the error
        // path above, find nothing and become leaders themselves).
        Ok((shared, outcome))
    }

    /// Resolves image bytes to a query-capable cached program.
    ///
    /// A warm query entry is a hit. Otherwise the image is parsed and a
    /// fresh [`AnalysisCache`] is installed — seeded from the full
    /// analysis when `get_or_analyze` already converged this image (so
    /// queries answer from the whole-program solution), empty otherwise
    /// (so the first query builds the demand engine and solves only its
    /// cone). No single-flight: creating a cold entry costs one image
    /// parse, not an analysis; the actual solving happens under the
    /// entry's own mutex, serialized per image.
    ///
    /// # Errors
    ///
    /// Returns the image loader's error message when `image` does not
    /// decode to a valid [`Program`]. Parse failures are not cached.
    pub fn get_or_query(
        &self,
        image: &[u8],
    ) -> Result<(Arc<QueriedProgram>, CacheOutcome), String> {
        let key = CacheKey::of(image);
        let seed: Option<Arc<AnalyzedProgram>> = {
            let mut inner = self.lock();
            if inner.query_entries.contains_key(&key) {
                inner.tick += 1;
                inner.counters.hits += 1;
                let tick = inner.tick;
                let e = inner.query_entries.get_mut(&key).expect("entry just seen");
                e.last_used = tick;
                return Ok((Arc::clone(&e.shared), CacheOutcome::Hit));
            }
            inner.entries.get(&key).map(|e| Arc::clone(&e.shared))
        };

        let (program, cache, outcome) = match seed {
            // `clone_exact` for the same reason as the incremental seed:
            // a query answered from this state must be bit-identical to
            // one answered from the original full analysis.
            Some(donor) => (
                donor.program.clone(),
                AnalysisCache::from_analysis(self.options.clone(), donor.analysis.clone_exact()),
                CacheOutcome::Hit,
            ),
            None => (
                Program::from_image(image).map_err(|e| e.to_string())?,
                AnalysisCache::new(self.options.clone()),
                CacheOutcome::MissCold,
            ),
        };

        let bytes = image.len() + cache.heap_bytes();
        let shared = Arc::new(QueriedProgram { key, program, cache: Mutex::new(cache) });

        let mut inner = self.lock();
        match outcome {
            CacheOutcome::Hit => inner.counters.hits += 1,
            _ => inner.counters.misses_cold += 1,
        }
        // Lost race: another thread installed the same key while we were
        // parsing. Use theirs; the work above is wasted but consistent.
        if inner.query_entries.contains_key(&key) {
            inner.tick += 1;
            let tick = inner.tick;
            let e = inner.query_entries.get_mut(&key).expect("entry just seen");
            e.last_used = tick;
            return Ok((Arc::clone(&e.shared), outcome));
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.total_bytes += bytes;
        inner
            .query_entries
            .insert(key, QueryEntry { shared: Arc::clone(&shared), bytes, last_used: tick });
        inner.evict_to_budget(self.budget_bytes, key);
        Ok((shared, outcome))
    }

    /// The full-analysis entries in LRU order (least recently used
    /// first), for snapshotting. Writing them oldest-first means a
    /// restore that replays insertion order reproduces the eviction
    /// order too. Query entries are *not* exported: their state is
    /// derived (seeded from full entries or rebuilt on demand) and a
    /// partially-memoized demand engine is cheap to regrow.
    pub fn export_entries(&self) -> Vec<Arc<AnalyzedProgram>> {
        let inner = self.lock();
        let mut entries: Vec<(u64, Arc<AnalyzedProgram>)> =
            inner.entries.values().map(|e| (e.last_used, Arc::clone(&e.shared))).collect();
        drop(inner);
        entries.sort_by_key(|(last_used, _)| *last_used);
        entries.into_iter().map(|(_, shared)| shared).collect()
    }

    /// Installs one decoded snapshot entry, warm. The caller (the
    /// snapshot loader) has already verified the container checksum and
    /// the options fingerprint; this re-validates the entry itself: the
    /// image must parse and must hash to `key`, otherwise the entry is
    /// refused and the cache state is untouched.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch; the caller treats any
    /// error as "fall back to cold" for the whole snapshot.
    pub fn restore_entry(
        &self,
        key: CacheKey,
        image: Vec<u8>,
        analysis: Analysis,
    ) -> Result<(), String> {
        if CacheKey::of(&image) != key {
            return Err("snapshot entry key does not match its image bytes".into());
        }
        let program = Program::from_image(&image).map_err(|e| e.to_string())?;
        let bytes = image.len() + analysis.stats.memory_bytes;
        let shared = Arc::new(AnalyzedProgram { key, program, analysis, image });
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // A live entry for the same key wins over the snapshot: it is at
        // least as fresh.
        if inner.entries.contains_key(&key) {
            return Ok(());
        }
        inner.total_bytes += bytes;
        inner.entries.insert(key, Entry { shared, bytes, last_used: tick });
        inner.counters.restored += 1;
        inner.evict_to_budget(self.budget_bytes, key);
        Ok(())
    }

    /// Re-charges a query entry after a query may have grown its engine,
    /// and re-runs eviction against the new total. No-op if the entry
    /// was evicted in the meantime.
    pub fn recharge_query(&self, key: CacheKey, bytes: usize) {
        let mut inner = self.lock();
        let Some(e) = inner.query_entries.get_mut(&key) else { return };
        let old = e.bytes;
        e.bytes = bytes;
        inner.total_bytes = inner.total_bytes - old + bytes;
        inner.evict_to_budget(self.budget_bytes, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn image(tag: u32) -> Vec<u8> {
        let mut b = ProgramBuilder::new();
        let r = b.routine("main");
        for _ in 0..(tag % 3 + 1) {
            r.def(Reg::A0);
        }
        r.put_int().halt();
        b.build().unwrap().to_image()
    }

    fn store(budget: usize) -> ProgramStore {
        ProgramStore::new(AnalysisOptions::default(), budget)
    }

    #[test]
    fn second_lookup_hits() {
        let s = store(usize::MAX);
        let img = image(0);
        let (_, o1) = s.get_or_analyze(&img).unwrap();
        let (_, o2) = s.get_or_analyze(&img).unwrap();
        assert_eq!(o1, CacheOutcome::MissCold);
        assert_eq!(o2, CacheOutcome::Hit);
        let snap = s.snapshot();
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.counters.hits, 1);
        assert_eq!(snap.counters.misses_cold, 1);
    }

    #[test]
    fn bad_images_error_and_are_not_cached() {
        let s = store(usize::MAX);
        assert!(s.get_or_analyze(b"not an image").is_err());
        assert_eq!(s.snapshot().entries, 0);
        // The flight mark was cleared: a retry errors again rather than
        // deadlocking on a stale in-flight entry.
        assert!(s.get_or_analyze(b"not an image").is_err());
    }

    #[test]
    fn tiny_budget_keeps_exactly_the_newest_entry() {
        let s = store(1);
        for tag in 0..3 {
            s.get_or_analyze(&image(tag)).unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.entries, 1, "every insert evicts the previous sole entry");
        assert_eq!(snap.counters.evictions, 2);
        // The survivor is the most recent image.
        let (_, o) = s.get_or_analyze(&image(2)).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn keys_differ_across_images() {
        assert_ne!(CacheKey::of(&image(0)), CacheKey::of(&image(1)));
        assert_eq!(CacheKey::of(&image(1)), CacheKey::of(&image(1)));
    }

    #[test]
    fn query_entries_cache_and_seed_from_full_analyses() {
        let s = store(usize::MAX);
        let img = image(0);
        let (e1, o1) = s.get_or_query(&img).unwrap();
        assert_eq!(o1, CacheOutcome::MissCold);
        let (e2, o2) = s.get_or_query(&img).unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!(s.snapshot().entries, 1);

        // A converged full analysis seeds the query entry, so queries
        // answer from the whole-program solution.
        let s = store(usize::MAX);
        s.get_or_analyze(&img).unwrap();
        let (entry, outcome) = s.get_or_query(&img).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let rid = entry.program.routine_by_name("main").unwrap();
        let (_, stats) = entry.lock().query(&entry.program, &spike_core::Query::Summary(rid));
        assert!(stats.answered_from_full);
        assert_eq!(s.snapshot().entries, 2, "full and query entries are distinct");
    }

    #[test]
    fn recharge_evicts_when_a_grown_engine_busts_the_budget() {
        let s = store(10_000);
        let img_a = image(0);
        let img_b = image(1);
        let (ea, _) = s.get_or_query(&img_a).unwrap();
        s.get_or_query(&img_b).unwrap();
        assert_eq!(s.snapshot().entries, 2);
        // Pretend entry A's engine grew past the whole budget: B (the
        // older untouched entry is A... A was just recharged, so the
        // LRU victim is B).
        s.recharge_query(ea.key, 1_000_000);
        let snap = s.snapshot();
        assert_eq!(snap.entries, 1, "over-budget recharge evicts the other entry");
        assert_eq!(snap.counters.evictions, 1);
        let (_, o) = s.get_or_query(&img_a).unwrap();
        assert_eq!(o, CacheOutcome::Hit, "the recharged entry itself survives");
    }

    #[test]
    fn concurrent_same_image_coalesces_to_one_analysis() {
        let s = Arc::new(store(usize::MAX));
        let img = Arc::new(image(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            let img = Arc::clone(&img);
            handles.push(std::thread::spawn(move || s.get_or_analyze(&img).unwrap().1));
        }
        let outcomes: Vec<CacheOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let misses = outcomes.iter().filter(|o| **o == CacheOutcome::MissCold).count();
        assert_eq!(misses, 1, "exactly one thread does the work: {outcomes:?}");
        let c = s.snapshot().counters;
        assert_eq!(c.misses_cold, 1);
        assert_eq!(c.hits + c.coalesced, 3);
    }
}
