//! The event-driven connection core (Linux only): one epoll-driven
//! thread owns every listener and every in-flight *read*, so thousands
//! of idle or slow clients cost a few buffer bytes each instead of a
//! parked worker thread.
//!
//! Division of labor:
//!
//! * The reactor accepts connections (nonblocking listeners), keeps each
//!   socket nonblocking, and incrementally assembles its one request
//!   frame across however many `EPOLLIN` wakeups it takes.
//! * A **complete** frame is unregistered from epoll and handed to the
//!   bounded worker queue as [`Work::Frame`]; the worker re-arms
//!   blocking I/O with timeouts, dispatches, and writes the reply. CPU
//!   work and response writes never run on the reactor thread.
//! * Backpressure is unchanged: a full queue gets an immediate `busy`
//!   reply, an oversized header a `too-large` reply, and malformed JSON
//!   a `bad-request` reply — all written by the reactor, which is safe
//!   because error replies are tiny (they fit a socket send buffer).
//!
//! The epoll syscalls are declared directly against libc (which std
//! already links), mirroring how the daemon installs its SIGTERM
//! handler: three calls do not justify a dependency.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::TcpListener;
use std::os::raw::c_int;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use spike_core::json::Json;

use crate::metrics::Metrics;
use crate::proto::{write_frame, ErrorKind, FrameError, Response};
use crate::server::{Conn, Queue, Work};

/// A bound, not-yet-nonblocking listener handed over by the server.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn fd(&self) -> c_int {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

impl Conn {
    fn fd(&self) -> c_int {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(true),
            Conn::Unix(s) => s.set_nonblocking(true),
        }
    }
}

// glibc packs `struct epoll_event` on x86-64 (the kernel ABI there has
// no padding between the two fields); other architectures use natural
// alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// RAII epoll instance.
struct Epoll {
    fd: c_int,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // 0x80000 = EPOLL_CLOEXEC, so child processes spawned elsewhere
        // in the host binary do not inherit the instance.
        let fd = unsafe { epoll_create1(0x8_0000) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn add(&self, fd: c_int, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: EPOLLIN, data: token };
        if unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn del(&self, fd: c_int) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // Failure here means the fd is already gone; nothing to recover.
        unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits up to `timeout_ms`, filling `events`; EINTR reads as "no
    /// events" so the caller just re-checks its flags and loops.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: c_int) -> usize {
        let n =
            unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n < 0 {
            return 0;
        }
        n as usize
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A connection whose request frame is still being assembled.
struct Pending {
    conn: Conn,
    /// Raw bytes received so far: 8-byte header, then JSON, then blob.
    buf: Vec<u8>,
    /// Total frame size (header + JSON + blob) once the header is in.
    total: Option<usize>,
}

/// What one readiness wakeup did to a pending connection.
enum Pump {
    /// Still waiting for more bytes.
    More,
    /// A full frame: decoded JSON plus blob.
    Done(Json, Vec<u8>),
    /// Peer went away (EOF or hard error); drop silently.
    Gone,
    /// Protocol failure to report before closing.
    Reject(FrameError),
}

impl Pending {
    /// Reads whatever the socket has, returning as soon as the frame
    /// completes, the peer blocks, or something is wrong.
    fn pump(&mut self, max_frame_bytes: usize) -> Pump {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.total.is_none() && self.buf.len() >= 8 {
                let json_len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes"));
                let blob_len = u32::from_be_bytes(self.buf[4..8].try_into().expect("4 bytes"));
                let announced = (json_len as usize).saturating_add(blob_len as usize);
                if announced > max_frame_bytes {
                    return Pump::Reject(FrameError::TooLarge {
                        announced,
                        limit: max_frame_bytes,
                    });
                }
                self.total = Some(8 + announced);
            }
            if let Some(total) = self.total {
                if self.buf.len() >= total {
                    return self.decode();
                }
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => return Pump::Gone,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Pump::More,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Pump::Gone,
            }
        }
    }

    fn decode(&mut self) -> Pump {
        let json_len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        let body = &self.buf[8..];
        let text = match std::str::from_utf8(&body[..json_len]) {
            Ok(t) => t,
            Err(e) => {
                return Pump::Reject(FrameError::BadJson(format!("payload is not UTF-8: {e}")))
            }
        };
        let json = match Json::parse(text) {
            Ok(j) => j,
            Err(e) => return Pump::Reject(FrameError::BadJson(e.to_string())),
        };
        Pump::Done(json, body[json_len..].to_vec())
    }
}

/// Writes a tiny error reply on the reactor thread and drops the
/// connection. The socket is flipped back to blocking with timeouts
/// first so a reply to a wedged peer cannot stall the event loop long.
fn reject(mut conn: Conn, kind: ErrorKind, msg: String) {
    if conn.prepare().is_ok() {
        let resp = Response::error(kind, msg);
        let _ = write_frame(&mut conn, &resp.to_json(), &[]);
    }
}

/// Starts the reactor thread.
pub(crate) fn spawn_reactor(
    listeners: Vec<Listener>,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Queue>,
    metrics: Arc<Metrics>,
    max_frame_bytes: usize,
) -> io::Result<JoinHandle<()>> {
    let epoll = Epoll::new()?;
    for (i, l) in listeners.iter().enumerate() {
        l.set_nonblocking()?;
        epoll.add(l.fd(), i as u64)?;
    }
    thread::Builder::new()
        .name("reactor".into())
        .spawn(move || run(epoll, listeners, &shutdown, &queue, &metrics, max_frame_bytes))
}

fn run(
    epoll: Epoll,
    listeners: Vec<Listener>,
    shutdown: &AtomicBool,
    queue: &Queue,
    metrics: &Metrics,
    max_frame_bytes: usize,
) {
    // Connection tokens start above the listener range and are keyed by
    // a monotonically increasing id, never reused, so a stale event for
    // a closed connection (possible within one wait batch) misses the
    // map instead of hitting an unrelated newcomer.
    let base = listeners.len() as u64;
    let mut next_token = base;
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut events = [EpollEvent { events: 0, data: 0 }; 256];

    while !shutdown.load(Ordering::SeqCst) && !crate::server::sigterm_requested() {
        let n = epoll.wait(&mut events, 250);
        for ev in &events[..n] {
            let token = ev.data;
            if token < base {
                // Listener readiness: accept everything available now.
                let listener = &listeners[token as usize];
                loop {
                    match listener.accept() {
                        Ok(conn) => {
                            if conn.set_nonblocking().is_err() {
                                continue;
                            }
                            let t = next_token;
                            next_token += 1;
                            if epoll.add(conn.fd(), t).is_ok() {
                                pending.insert(t, Pending { conn, buf: Vec::new(), total: None });
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        // Transient (peer reset mid-handshake) or fd
                        // exhaustion; either way there is nothing more
                        // to accept right now.
                        Err(_) => break,
                    }
                }
                continue;
            }
            let Some(mut p) = pending.remove(&token) else { continue };
            match p.pump(max_frame_bytes) {
                Pump::More => {
                    pending.insert(token, p);
                }
                Pump::Gone => {
                    epoll.del(p.conn.fd());
                }
                Pump::Reject(e @ FrameError::TooLarge { .. }) => {
                    epoll.del(p.conn.fd());
                    metrics.rejected_oversized.fetch_add(1, Ordering::Relaxed);
                    reject(p.conn, ErrorKind::TooLarge, e.to_string());
                }
                Pump::Reject(e) => {
                    epoll.del(p.conn.fd());
                    metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    reject(p.conn, ErrorKind::BadRequest, e.to_string());
                }
                Pump::Done(json, blob) => {
                    epoll.del(p.conn.fd());
                    match queue.push(Work::Frame(p.conn, json, blob)) {
                        Ok(depth) => metrics.observe_queue_depth(depth),
                        Err(refused) => {
                            let Work::Frame(conn, _, _) = refused else { unreachable!() };
                            metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                            reject(conn, ErrorKind::Busy, "work queue is full".into());
                        }
                    }
                }
            }
        }
    }
    // Drain: connections that never completed a frame are dropped
    // (their clients see EOF); completed frames are already queued and
    // the workers will answer them.
}
