//! End-to-end tests against a live in-process daemon: byte-identity
//! under concurrency, cache eviction and re-warming, the incremental
//! path, and the robustness rejections (deadline, oversized frames,
//! garbage JSON).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use spike_core::json::Json;
use spike_core::AnalysisOptions;
use spike_isa::Reg;
use spike_program::{Program, ProgramBuilder, Rewriter};
use spike_serve::proto::{read_frame, FrameError, FrameRead};
use spike_serve::render;
use spike_serve::{
    client, Command, Endpoint, ErrorKind, LintFormat, Request, Response, Ring, RouterOptions,
    ServeOptions, Server,
};

/// Starts a daemon on an ephemeral TCP port and returns it with its
/// client endpoint.
fn start(mutate: impl FnOnce(&mut ServeOptions)) -> (Server, Endpoint) {
    let mut options = ServeOptions { tcp: Some("127.0.0.1:0".into()), ..ServeOptions::default() };
    mutate(&mut options);
    let server = Server::start(&options).expect("daemon starts");
    let addr = server.tcp_addr().expect("tcp listener bound");
    (server, Endpoint::Tcp(addr.to_string()))
}

fn req(cmd: Command, image_name: &str) -> Request {
    Request { cmd, image_name: image_name.to_string(), deadline_ms: None, profile_len: 0 }
}

fn send(endpoint: &Endpoint, request: &Request, image: &[u8]) -> Response {
    client::request(endpoint, request, image).expect("round trip").0
}

/// Sends `shutdown` and waits for the daemon to drain.
fn stop(server: Server, endpoint: &Endpoint) {
    let r = send(endpoint, &req(Command::Shutdown, ""), &[]);
    assert_eq!(r.exit, 0, "{:?}", r.error);
    server.join();
}

fn stats(endpoint: &Endpoint) -> Json {
    let r = send(endpoint, &req(Command::Stats, ""), &[]);
    assert_eq!(r.exit, 0, "{:?}", r.error);
    Json::parse(&r.stdout).expect("stats is valid JSON")
}

fn counter(stats: &Json, group: &str, name: &str) -> u64 {
    stats.get(group).and_then(|g| g.get(name)).and_then(Json::as_u64).unwrap()
}

/// A program with one hub routine and `leaves` callees, so a one-leaf
/// edit dirties a small fraction of the routine set.
fn fanout_program(leaves: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let names: Vec<String> = (0..leaves).map(|i| format!("leaf{i}")).collect();
    let main = b.routine("main");
    main.def(Reg::A0);
    for name in &names {
        main.call(name);
    }
    main.halt();
    for name in &names {
        b.routine(name).def(Reg::T0).def(Reg::V0).ret();
    }
    b.build().unwrap()
}

#[test]
fn concurrent_mixed_requests_return_byte_identical_reports() {
    let images: Vec<(String, Vec<u8>)> = (0..2)
        .map(|i| {
            let program = spike_synth::generate_executable(11 + i, 12);
            (format!("img{i}"), program.to_image())
        })
        .collect();

    // The expected bytes come straight from the library path the local
    // CLI uses, not from a first daemon round-trip: this pins the daemon
    // to the local CLI's output, not merely to itself.
    let expected: Vec<(String, String)> = images
        .iter()
        .map(|(name, image)| {
            let program = Program::from_image(image).unwrap();
            let analysis = spike_core::analyze_with(&program, &AnalysisOptions::default());
            let analyze = render::analyze_report(name, &program, &analysis, false, None).unwrap();
            let report =
                spike_lint::lint_with(&program, &analysis, &spike_lint::LintOptions::default());
            let lint = render::lint_report(name, &report, LintFormat::Json);
            (analyze, lint)
        })
        .collect();

    let (server, endpoint) = start(|o| o.workers = 4);
    let images = Arc::new(images);
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for t in 0..8 {
        let endpoint = endpoint.clone();
        let images = Arc::clone(&images);
        let expected = Arc::clone(&expected);
        handles.push(thread::spawn(move || {
            for round in 0..2 {
                let which = (t + round) % images.len();
                let (name, image) = &images[which];
                let (want_analyze, want_lint) = &expected[which];
                let cmd = if t % 2 == 0 {
                    Command::Analyze { summaries: false, routine: None }
                } else {
                    Command::Lint { format: LintFormat::Json }
                };
                let r = send(&endpoint, &req(cmd, name), image);
                assert_eq!(r.exit, 0, "{:?}", r.error);
                let want = if t % 2 == 0 { want_analyze } else { want_lint };
                assert_eq!(&r.stdout, want, "thread {t} round {round} diverged");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let s = stats(&endpoint);
    assert!(counter(&s, "cache", "hits") >= 1, "repeat submissions must warm-hit: {s}");
    assert_eq!(counter(&s, "cache", "entries"), 2);
    assert_eq!(counter(&s, "requests", "total"), 17, "16 work requests + this stats call");
    stop(server, &endpoint);
}

#[test]
fn evicted_entries_rewarm_as_cold_misses() {
    // A one-byte budget keeps exactly one entry, so every new image
    // evicts the previous one.
    let (server, endpoint) = start(|o| o.cache_bytes = 1);
    let images: Vec<Vec<u8>> =
        (0..3).map(|i| spike_synth::generate_executable(31 + i, 6).to_image()).collect();
    let analyze = || Command::Analyze { summaries: false, routine: None };
    for (i, image) in images.iter().enumerate() {
        let r = send(&endpoint, &req(analyze(), &format!("img{i}")), image);
        assert_eq!(r.exit, 0, "{:?}", r.error);
        assert!(r.diag.contains("cache: miss"), "{}", r.diag);
    }
    let s = stats(&endpoint);
    assert_eq!(counter(&s, "cache", "entries"), 1);
    assert!(counter(&s, "cache", "evictions") >= 2, "{s}");

    // The survivor is the last image; the first was evicted and must be
    // analyzed again from scratch, after which it hits.
    let r = send(&endpoint, &req(analyze(), "img2"), &images[2]);
    assert!(r.diag.contains("cache: hit"), "{}", r.diag);
    let r = send(&endpoint, &req(analyze(), "img0"), &images[0]);
    assert!(r.diag.contains("cache: miss"), "{}", r.diag);
    let r = send(&endpoint, &req(analyze(), "img0"), &images[0]);
    assert!(r.diag.contains("cache: hit"), "{}", r.diag);
    stop(server, &endpoint);
}

#[test]
fn small_edits_take_the_incremental_path() {
    let base = fanout_program(10);
    let victim = base.routine_by_name("leaf5").unwrap();
    let (edited, _) = Rewriter::new(&base).delete(base.routine(victim).addr()).finish().unwrap();

    let (server, endpoint) = start(|_| {});
    let analyze = Command::Analyze { summaries: false, routine: None };
    let r = send(&endpoint, &req(analyze.clone(), "base"), &base.to_image());
    assert!(r.diag.contains("cache: miss\n"), "{}", r.diag);
    let r = send(&endpoint, &req(analyze, "edited"), &edited.to_image());
    assert_eq!(r.exit, 0, "{:?}", r.error);
    assert!(
        r.diag.contains("cache: incremental-miss"),
        "a one-routine edit should reanalyze incrementally: {}",
        r.diag
    );
    let s = stats(&endpoint);
    assert_eq!(counter(&s, "cache", "incremental_warm"), 1, "{s}");
    stop(server, &endpoint);
}

#[test]
fn expired_deadlines_are_refused() {
    let (server, endpoint) = start(|_| {});
    let image = fanout_program(3).to_image();
    let request = Request {
        cmd: Command::Analyze { summaries: false, routine: None },
        image_name: "img".into(),
        deadline_ms: Some(0),
        profile_len: 0,
    };
    let (r, _) = client::request(&endpoint, &request, &image).unwrap();
    assert_eq!(r.exit, 2);
    let (kind, _) = r.error.expect("structured error");
    assert_eq!(kind, ErrorKind::Deadline);
    let s = stats(&endpoint);
    assert_eq!(counter(&s, "rejected", "deadline"), 1);
    stop(server, &endpoint);
}

#[test]
fn oversized_and_garbage_frames_get_structured_refusals() {
    let (server, endpoint) = start(|o| o.max_frame_bytes = 4096);
    let addr = match &endpoint {
        Endpoint::Tcp(a) => a.clone(),
        Endpoint::Unix(_) => unreachable!(),
    };

    // A header announcing more bytes than the daemon will accept is
    // refused from the header alone, before any body is transferred.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&8u32.to_be_bytes());
    header.extend_from_slice(&(1u32 << 30).to_be_bytes());
    stream.write_all(&header).unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream, usize::MAX).expect("refusal frame") {
        FrameRead::Frame(json, _) => {
            assert_eq!(
                json.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("too-large"),
                "{json}"
            );
        }
        FrameRead::Eof => panic!("connection closed without a refusal"),
    }

    // A well-sized frame whose JSON does not parse is a bad-request.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let body = b"this is not json";
    let mut frame = Vec::new();
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&0u32.to_be_bytes());
    frame.extend_from_slice(body);
    stream.write_all(&frame).unwrap();
    match read_frame(&mut stream, usize::MAX).expect("refusal frame") {
        FrameRead::Frame(json, _) => {
            assert_eq!(
                json.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("bad-request"),
                "{json}"
            );
        }
        FrameRead::Eof => panic!("connection closed without a refusal"),
    }

    let s = stats(&endpoint);
    assert_eq!(counter(&s, "rejected", "oversized"), 1, "{s}");
    assert_eq!(counter(&s, "rejected", "bad_request"), 1, "{s}");
    stop(server, &endpoint);

    // Sanity: the raw TooLarge error our client would see on a response
    // that large names both numbers.
    let e = FrameError::TooLarge { announced: 9, limit: 8 };
    assert!(format!("{e}").contains('9'));
}

#[test]
fn concurrent_submissions_of_one_image_coalesce_to_a_single_analysis() {
    let (server, endpoint) = start(|o| o.workers = 4);
    let image = Arc::new(spike_synth::generate_executable(47, 16).to_image());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let endpoint = endpoint.clone();
        let image = Arc::clone(&image);
        handles.push(thread::spawn(move || {
            let cmd = Command::Analyze { summaries: false, routine: None };
            let r = send(&endpoint, &req(cmd, "img"), &image);
            assert_eq!(r.exit, 0, "{:?}", r.error);
            r.stdout
        }));
    }
    let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "all callers see the same report");
    let s = stats(&endpoint);
    assert_eq!(counter(&s, "cache", "misses"), 1, "single-flight must dedupe the analysis: {s}");
    assert_eq!(counter(&s, "cache", "hits") + counter(&s, "cache", "coalesced"), 3, "{s}");
    stop(server, &endpoint);
}

#[test]
fn drain_snapshot_makes_a_plain_restart_start_warm() {
    let dir = std::env::temp_dir().join(format!("spike-serve-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cache.snap");
    let analyze = || Command::Analyze { summaries: false, routine: None };

    let images: Vec<Vec<u8>> =
        (0..2).map(|i| spike_synth::generate_executable(61 + i, 8).to_image()).collect();
    let (server, endpoint) = start(|o| o.snapshot = Some(snap.clone()));
    assert!(server.restored().is_none(), "nothing to restore on the first boot");
    let first: Vec<String> = images
        .iter()
        .enumerate()
        .map(|(i, image)| {
            let r = send(&endpoint, &req(analyze(), &format!("img{i}")), image);
            assert_eq!(r.exit, 0, "{:?}", r.error);
            assert!(r.diag.contains("cache: miss"), "{}", r.diag);
            r.stdout
        })
        .collect();
    stop(server, &endpoint);
    assert!(snap.exists(), "graceful drain must write the final snapshot");

    // Same options, same snapshot path: the restart begins warm and
    // serves byte-identical reports without a single analysis.
    let (server, endpoint) = start(|o| o.snapshot = Some(snap.clone()));
    let report = server.restored().expect("snapshot restores");
    assert_eq!(report.entries, 2);
    for (i, image) in images.iter().enumerate() {
        let r = send(&endpoint, &req(analyze(), &format!("img{i}")), image);
        assert_eq!(r.exit, 0, "{:?}", r.error);
        assert!(r.diag.contains("cache: hit"), "restored entries must serve warm: {}", r.diag);
        assert_eq!(r.stdout, first[i], "restored analysis must render identically");
    }
    let s = stats(&endpoint);
    assert_eq!(counter(&s, "cache", "restored"), 2, "{s}");
    assert_eq!(counter(&s, "cache", "misses"), 0, "{s}");
    stop(server, &endpoint);

    // A corrupted snapshot file degrades to a cold start, not a panic.
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x5A;
    std::fs::write(&snap, &bytes).unwrap();
    let (server, endpoint) = start(|o| o.snapshot = Some(snap.clone()));
    assert!(server.restored().is_none(), "corrupt snapshot must be rejected");
    let r = send(&endpoint, &req(analyze(), "img0"), &images[0]);
    assert_eq!(r.exit, 0, "{:?}", r.error);
    assert!(r.diag.contains("cache: miss"), "cold fallback: {}", r.diag);
    assert_eq!(r.stdout, first[0], "cold answers still match");
    stop(server, &endpoint);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Grabs `n` distinct ephemeral ports and frees them, so a cluster can
/// be configured with every member's address known up front.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> =
        (0..n).map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect()
}

#[test]
fn cluster_routes_by_content_hash_and_forwards_misroutes() {
    let shards = reserve_addrs(3);
    let servers: Vec<Server> = (0..shards.len())
        .map(|i| {
            Server::start(&ServeOptions {
                tcp: Some(shards[i].clone()),
                cluster: shards.clone(),
                shard_index: Some(i),
                ..ServeOptions::default()
            })
            .expect("shard starts")
        })
        .collect();
    let router = spike_serve::Router::start(&RouterOptions {
        listen: "127.0.0.1:0".into(),
        shards: shards.clone(),
        ..RouterOptions::default()
    })
    .expect("router starts");
    let via_router = Endpoint::Tcp(router.addr().to_string());

    let images: Vec<(String, Vec<u8>)> = (0..6)
        .map(|i| {
            let program = spike_synth::generate_executable(71 + i, 6);
            (format!("img{i}"), program.to_image())
        })
        .collect();
    let ring = Ring::new(shards.clone());
    let owners: Vec<usize> = images.iter().map(|(_, image)| ring.owner_of(key_of(image))).collect();
    assert!(
        owners.iter().collect::<std::collections::HashSet<_>>().len() >= 2,
        "sample images should spread over shards: {owners:?}"
    );

    let analyze = || Command::Analyze { summaries: false, routine: None };
    for (name, image) in &images {
        // Through the router: the answer matches the local library path
        // byte for byte, whichever shard served it.
        let program = Program::from_image(image).unwrap();
        let analysis = spike_core::analyze_with(&program, &AnalysisOptions::default());
        let expected = render::analyze_report(name, &program, &analysis, false, None).unwrap();
        let r = send(&via_router, &req(analyze(), name), image);
        assert_eq!(r.exit, 0, "{:?}", r.error);
        assert_eq!(r.stdout, expected, "routed response must match the local path");

        // Straight at the wrong shard: forwarded to the owner, same
        // bytes, and the diagnostics say so.
        let owner = ring.owner_of(key_of(image));
        let wrong = (owner + 1) % shards.len();
        let r = send(&Endpoint::Tcp(shards[wrong].clone()), &req(analyze(), name), image);
        assert_eq!(r.exit, 0, "{:?}", r.error);
        assert_eq!(r.stdout, expected, "forwarded response must be byte-identical");
        assert!(r.diag.contains("cluster: forwarded to shard"), "{}", r.diag);
    }

    // Each shard's warm set is disjoint: the cluster analyzed each image
    // exactly once, on its owner, and holds exactly one copy.
    let mut total_entries = 0;
    let mut total_misses = 0;
    let mut total_forwarded = 0;
    for addr in &shards {
        let s = stats(&Endpoint::Tcp(addr.clone()));
        total_entries += counter(&s, "cache", "entries");
        total_misses += counter(&s, "cache", "misses");
        total_forwarded += s.get("forwarded").and_then(Json::as_u64).unwrap();
    }
    assert_eq!(total_entries, images.len() as u64, "one warm copy per image, cluster-wide");
    assert_eq!(total_misses, images.len() as u64, "each image analyzed exactly once");
    assert_eq!(total_forwarded, images.len() as u64, "every wrong-shard send was forwarded");

    // One shutdown through the router drains the whole cluster.
    let r = send(&via_router, &req(Command::Shutdown, ""), &[]);
    assert_eq!(r.exit, 0, "{:?}", r.error);
    router.join();
    for server in servers {
        server.join();
    }
}

/// The image content hash, via the public serve API.
fn key_of(image: &[u8]) -> spike_serve::cache::CacheKey {
    spike_serve::cache::CacheKey::of(image)
}
