//! # spike-profile
//!
//! Versioned on-disk container for execution profiles.
//!
//! A [`Profile`] is the persistent form of a
//! [`spike_sim::ExecutionProfile`]: edge, call, per-instruction, and
//! per-routine counters gathered by `run_profiled`, bound to the exact
//! program image they were measured on. The binding is a content hash of
//! the image bytes — the same dual-lane FNV-1a the daemon's program
//! cache uses — so a profile can never silently guide the optimization
//! of a program it was not collected from: loading is fine, but
//! consumers check [`Profile::matches`] (and [`Profile::merge`]
//! enforces it) before trusting the counts.
//!
//! The on-disk layout follows the snapshot conventions from
//! `spike-serve`: a magic tag, a format version that is checked before
//! anything else is parsed, a checksum over the counter payload that is
//! verified before decoding, and atomic tmp-file + rename writes.
//! Decoding never panics — truncated, corrupt, or foreign bytes come
//! back as a [`ProfileError`].
//!
//! Profiles from separate runs of the *same* image merge by summing
//! counters ([`Profile::merge`]); `runs` counts how many went in.
//!
//! # Example
//!
//! ```
//! use spike_program::ProgramBuilder;
//! use spike_profile::Profile;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").def(spike_isa::Reg::A0).put_int().halt();
//! let program = b.build()?;
//!
//! let (_, exec) = spike_sim::run_profiled(&program, 1_000);
//! let profile = Profile::collect(&program, &exec);
//! let bytes = profile.to_bytes();
//! let back = Profile::from_bytes(&bytes)?;
//! assert_eq!(back, profile);
//! assert!(back.matches(&program.to_image()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use spike_program::Program;
use spike_sim::ExecutionProfile;

/// Magic tag leading every serialized profile.
pub const MAGIC: &[u8; 8] = b"spikprof";

/// Current serialization format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why profile bytes could not be decoded, loaded, or merged.
#[derive(Debug)]
pub enum ProfileError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The bytes do not start with the profile magic — not a profile at
    /// all.
    NotAProfile,
    /// The bytes are a profile, but from an incompatible format version.
    Incompatible {
        /// Version found in the file.
        found: u32,
    },
    /// Structurally broken: truncated, bad checksum, or inconsistent
    /// counts.
    Corrupt(&'static str),
    /// The profile's content hash does not match the program image it
    /// was asked to describe (stale profile), or two merged profiles
    /// disagree about their image.
    FingerprintMismatch,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile i/o error: {e}"),
            ProfileError::NotAProfile => write!(f, "not a spike profile (bad magic)"),
            ProfileError::Incompatible { found } => write!(
                f,
                "incompatible profile format version {found} (this build reads {FORMAT_VERSION})"
            ),
            ProfileError::Corrupt(what) => write!(f, "corrupt profile: {what}"),
            ProfileError::FingerprintMismatch => {
                write!(f, "profile was collected from a different program image (stale profile)")
            }
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> ProfileError {
        ProfileError::Io(e)
    }
}

/// Content hash of an image: two independent FNV-1a 64 lanes (second
/// lane salted), 128 bits total — byte-for-byte the daemon cache-key
/// function, so a profile's binding and the serving layer's content
/// addressing agree about what "the same image" means.
pub fn fingerprint(bytes: &[u8]) -> [u64; 2] {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut a: u64 = 0xCBF2_9CE4_8422_2325;
    let mut b: u64 = 0x6C62_272E_07BB_0142;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte ^ 0xA5)).wrapping_mul(PRIME);
    }
    [a, b]
}

/// An execution profile bound to the program image it measured.
///
/// Counter fields mirror [`spike_sim::ExecutionProfile`]; `fingerprint`
/// binds them to the image and `runs` counts how many collected
/// profiles were merged in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Profile {
    /// Content hash of the image the profile was collected from.
    pub fingerprint: [u64; 2],
    /// Number of runs merged into these counters (1 for a fresh
    /// collection).
    pub runs: u64,
    /// Instructions executed per routine, indexed by routine id.
    pub steps_per_routine: Vec<u64>,
    /// Activations per routine (calls, plus the entry routine's initial
    /// activation), indexed by routine id.
    pub entries_per_routine: Vec<u64>,
    /// Calls executed.
    pub calls: u64,
    /// Calling-convention maintenance instructions executed.
    pub call_overhead_steps: u64,
    /// Total instructions executed.
    pub total_steps: u64,
    /// Lowest code address; `insn_counts[addr - code_base]` is the
    /// execution count of the instruction at `addr`.
    pub code_base: u32,
    /// Per-instruction execution counts over the whole code range.
    pub insn_counts: Vec<u64>,
    /// Control-transfer edge counts: `(source pc, destination pc) →
    /// times taken`.
    pub edges: BTreeMap<(u32, u32), u64>,
}

impl Profile {
    /// Packages a sim-collected [`ExecutionProfile`] of `program` as a
    /// persistent profile bound to `program`'s image bytes.
    pub fn collect(program: &Program, exec: &ExecutionProfile) -> Profile {
        Profile {
            fingerprint: fingerprint(&program.to_image()),
            runs: 1,
            steps_per_routine: exec.steps_per_routine.clone(),
            entries_per_routine: exec.entries_per_routine.clone(),
            calls: exec.calls,
            call_overhead_steps: exec.call_overhead_steps,
            total_steps: exec.total_steps,
            code_base: exec.code_base,
            insn_counts: exec.insn_counts.clone(),
            edges: exec.edges.clone(),
        }
    }

    /// Whether the profile was collected from exactly these image bytes.
    pub fn matches(&self, image: &[u8]) -> bool {
        self.fingerprint == fingerprint(image)
    }

    /// Execution count of the instruction at `addr` (0 outside the
    /// profiled code range).
    pub fn count_at(&self, addr: u32) -> u64 {
        addr.checked_sub(self.code_base)
            .and_then(|off| self.insn_counts.get(off as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Times the control-transfer edge `src → dst` was taken.
    pub fn edge(&self, src: u32, dst: u32) -> u64 {
        self.edges.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Fraction of all executed instructions spent in routine `index`
    /// (0.0 when nothing ran).
    pub fn routine_fraction(&self, index: usize) -> f64 {
        let steps = self.steps_per_routine.get(index).copied().unwrap_or(0);
        if self.total_steps == 0 {
            0.0
        } else {
            steps as f64 / self.total_steps as f64
        }
    }

    /// Merges another run of the same image into this profile, summing
    /// every counter. Rejects profiles of a different image
    /// ([`ProfileError::FingerprintMismatch`]) or with inconsistent
    /// shapes ([`ProfileError::Corrupt`] — same image implies same
    /// shape, so a mismatch means one side is damaged).
    pub fn merge(&mut self, other: &Profile) -> Result<(), ProfileError> {
        if self.fingerprint != other.fingerprint {
            return Err(ProfileError::FingerprintMismatch);
        }
        if self.steps_per_routine.len() != other.steps_per_routine.len()
            || self.entries_per_routine.len() != other.entries_per_routine.len()
            || self.insn_counts.len() != other.insn_counts.len()
            || self.code_base != other.code_base
        {
            return Err(ProfileError::Corrupt("merge shape mismatch for identical image"));
        }
        self.runs += other.runs;
        for (a, b) in self.steps_per_routine.iter_mut().zip(&other.steps_per_routine) {
            *a += b;
        }
        for (a, b) in self.entries_per_routine.iter_mut().zip(&other.entries_per_routine) {
            *a += b;
        }
        self.calls += other.calls;
        self.call_overhead_steps += other.call_overhead_steps;
        self.total_steps += other.total_steps;
        for (a, b) in self.insn_counts.iter_mut().zip(&other.insn_counts) {
            *a += b;
        }
        for (&edge, &n) in &other.edges {
            *self.edges.entry(edge).or_insert(0) += n;
        }
        Ok(())
    }

    /// Serializes the profile.
    ///
    /// Layout: magic, format version, image fingerprint, payload
    /// checksum (dual-lane FNV of the payload bytes), payload length,
    /// then the little-endian counter payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.runs);
        put_u64(&mut payload, self.calls);
        put_u64(&mut payload, self.call_overhead_steps);
        put_u64(&mut payload, self.total_steps);
        put_u32(&mut payload, self.code_base);
        put_u32(&mut payload, self.steps_per_routine.len() as u32);
        for &n in &self.steps_per_routine {
            put_u64(&mut payload, n);
        }
        for &n in &self.entries_per_routine {
            put_u64(&mut payload, n);
        }
        put_u32(&mut payload, self.insn_counts.len() as u32);
        for &n in &self.insn_counts {
            put_u64(&mut payload, n);
        }
        put_u32(&mut payload, self.edges.len() as u32);
        for (&(src, dst), &n) in &self.edges {
            put_u32(&mut payload, src);
            put_u32(&mut payload, dst);
            put_u64(&mut payload, n);
        }

        let checksum = fingerprint(&payload);
        let mut out = Vec::with_capacity(MAGIC.len() + 44 + payload.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.fingerprint[0]);
        put_u64(&mut out, self.fingerprint[1]);
        put_u64(&mut out, checksum[0]);
        put_u64(&mut out, checksum[1]);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a serialized profile. Never panics: foreign bytes are
    /// [`ProfileError::NotAProfile`], future versions are
    /// [`ProfileError::Incompatible`], and anything truncated or
    /// checksum-damaged is [`ProfileError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Profile, ProfileError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len()).ok().map(|m| m != MAGIC.as_slice()).unwrap_or(true) {
            return Err(ProfileError::NotAProfile);
        }
        let version = r.u32().map_err(|_| ProfileError::NotAProfile)?;
        if version != FORMAT_VERSION {
            return Err(ProfileError::Incompatible { found: version });
        }
        let fp = [r.u64()?, r.u64()?];
        let checksum = [r.u64()?, r.u64()?];
        let payload_len = r.u32()? as usize;
        let payload = r.take(payload_len)?;
        if r.pos != bytes.len() {
            return Err(ProfileError::Corrupt("trailing bytes after payload"));
        }
        if fingerprint(payload) != checksum {
            return Err(ProfileError::Corrupt("payload checksum mismatch"));
        }

        let mut p = Reader { bytes: payload, pos: 0 };
        let runs = p.u64()?;
        let calls = p.u64()?;
        let call_overhead_steps = p.u64()?;
        let total_steps = p.u64()?;
        let code_base = p.u32()?;
        let routines = p.u32()? as usize;
        // An image holds at most 2^32 instruction words; counter tables
        // beyond that can't come from a real program and would make the
        // preallocations below attacker-sized.
        if routines > payload_len {
            return Err(ProfileError::Corrupt("routine table longer than payload"));
        }
        let mut steps_per_routine = Vec::with_capacity(routines);
        for _ in 0..routines {
            steps_per_routine.push(p.u64()?);
        }
        let mut entries_per_routine = Vec::with_capacity(routines);
        for _ in 0..routines {
            entries_per_routine.push(p.u64()?);
        }
        let insns = p.u32()? as usize;
        if insns > payload_len {
            return Err(ProfileError::Corrupt("instruction table longer than payload"));
        }
        let mut insn_counts = Vec::with_capacity(insns);
        for _ in 0..insns {
            insn_counts.push(p.u64()?);
        }
        let edge_count = p.u32()? as usize;
        let mut edges = BTreeMap::new();
        for _ in 0..edge_count {
            let src = p.u32()?;
            let dst = p.u32()?;
            let n = p.u64()?;
            edges.insert((src, dst), n);
        }
        if p.pos != payload.len() {
            return Err(ProfileError::Corrupt("payload length disagrees with contents"));
        }
        Ok(Profile {
            fingerprint: fp,
            runs,
            steps_per_routine,
            entries_per_routine,
            calls,
            call_overhead_steps,
            total_steps,
            code_base,
            insn_counts,
            edges,
        })
    }

    /// Writes the profile to `path` atomically (tmp file + rename), so
    /// readers never observe a half-written profile.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        let tmp = path.with_extension("prof.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a profile from `path`.
    pub fn load(path: &Path) -> Result<Profile, ProfileError> {
        Profile::from_bytes(&std::fs::read(path)?)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProfileError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProfileError::Corrupt("unexpected end of profile"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ProfileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProfileError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn sample() -> (Program, Profile) {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").put_int().halt();
        b.routine("f").use_reg(Reg::A0).def(Reg::V0).ret();
        let program = b.build().unwrap();
        let (_, exec) = spike_sim::run_profiled(&program, 10_000);
        let profile = Profile::collect(&program, &exec);
        (program, profile)
    }

    #[test]
    fn round_trips_through_bytes() {
        let (program, profile) = sample();
        let back = Profile::from_bytes(&profile.to_bytes()).unwrap();
        assert_eq!(back, profile);
        assert!(back.matches(&program.to_image()));
        assert!(back.total_steps > 0);
        assert!(!back.edges.is_empty());
    }

    #[test]
    fn merge_sums_counters_and_counts_runs() {
        let (_, mut a) = sample();
        let b = a.clone();
        a.merge(&b).unwrap();
        assert_eq!(a.runs, 2);
        assert_eq!(a.total_steps, 2 * b.total_steps);
        assert_eq!(a.calls, 2 * b.calls);
        for (x, y) in a.insn_counts.iter().zip(&b.insn_counts) {
            assert_eq!(*x, 2 * y);
        }
        for (edge, n) in &a.edges {
            assert_eq!(*n, 2 * b.edges[edge]);
        }
    }

    #[test]
    fn merge_rejects_a_different_image() {
        let (_, mut a) = sample();
        let mut other = a.clone();
        other.fingerprint[0] ^= 1;
        assert!(matches!(a.merge(&other), Err(ProfileError::FingerprintMismatch)));
    }

    #[test]
    fn corruption_is_detected_not_panicked_on() {
        let (_, profile) = sample();
        let good = profile.to_bytes();

        // Every truncation fails cleanly.
        for len in 0..good.len() {
            assert!(Profile::from_bytes(&good[..len]).is_err());
        }
        // Any single-byte flip in the payload trips the checksum.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            Profile::from_bytes(&flipped),
            Err(ProfileError::Corrupt("payload checksum mismatch"))
        ));
        // Foreign bytes are not a profile.
        assert!(matches!(
            Profile::from_bytes(b"hello world, not a profile"),
            Err(ProfileError::NotAProfile)
        ));
        // A future version is incompatible, not corrupt.
        let mut vnext = good.clone();
        vnext[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Profile::from_bytes(&vnext),
            Err(ProfileError::Incompatible { found }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn save_and_load_round_trip() {
        let (_, profile) = sample();
        let dir = std::env::temp_dir().join(format!("spike-prof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.prof");
        profile.save(&path).unwrap();
        assert_eq!(Profile::load(&path).unwrap(), profile);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn count_accessors_are_total() {
        let (program, profile) = sample();
        let base = program.routines().first().unwrap().addr();
        assert!(profile.count_at(base) > 0);
        assert_eq!(profile.count_at(0xFFFF_FFFF), 0);
        assert_eq!(profile.edge(1, 2), 0);
    }
}
