//! Dense bitsets over basic blocks, used by the PSG subgraph chopper.

use spike_isa::{CloneExact, HeapSize};

use crate::block::BlockId;

/// A set of basic blocks within one routine, as a dense bitset.
///
/// Flow-summary-edge construction intersects forward- and
/// backward-reachable block sets for every edge (§3.1 of the paper), so
/// membership and intersection must be cheap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockSet {
    words: Vec<u64>,
    len: usize,
}

impl BlockSet {
    /// Creates an empty set over a universe of `len` blocks.
    pub fn new(len: usize) -> BlockSet {
        BlockSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts a block, returning `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the universe.
    #[inline]
    pub fn insert(&mut self, b: BlockId) -> bool {
        let i = b.index();
        assert!(i < self.len, "block {i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Whether the set contains `b`.
    #[inline]
    pub fn contains(&self, b: BlockId) -> bool {
        let i = b.index();
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of blocks in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The intersection of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &BlockSet) -> BlockSet {
        assert_eq!(self.len, other.len, "universe mismatch");
        BlockSet {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// Whether `self` and `other` share any block.
    pub fn intersects(&self, other: &BlockSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over members in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(BlockId::from_index(wi * 64 + bit))
            })
        })
    }
}

impl HeapSize for BlockSet {
    fn heap_bytes(&self) -> usize {
        self.words.heap_bytes()
    }
}

impl CloneExact for BlockSet {
    fn clone_exact(&self) -> BlockSet {
        BlockSet { words: self.words.clone_exact(), len: self.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    #[test]
    fn insert_contains_count() {
        let mut s = BlockSet::new(130);
        assert!(s.insert(b(0)));
        assert!(s.insert(b(64)));
        assert!(s.insert(b(129)));
        assert!(!s.insert(b(64)));
        assert!(s.contains(b(0)));
        assert!(s.contains(b(129)));
        assert!(!s.contains(b(1)));
        assert_eq!(s.count(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_ascending() {
        let mut s = BlockSet::new(200);
        for i in [5, 64, 65, 199, 0] {
            s.insert(b(i));
        }
        let v: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(v, vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn intersects_detects_overlap() {
        let mut a = BlockSet::new(100);
        let mut c = BlockSet::new(100);
        a.insert(b(70));
        c.insert(b(71));
        assert!(!a.intersects(&c));
        c.insert(b(70));
        assert!(a.intersects(&c));
    }

    #[test]
    fn clear_empties() {
        let mut s = BlockSet::new(10);
        s.insert(b(3));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = BlockSet::new(4);
        s.insert(b(4));
    }
}
