//! Graph traversal orders shared by the dataflow solvers.

use crate::block::BlockId;
use crate::build::RoutineCfg;

/// Postorder over the blocks reachable from `roots`, following
/// intraprocedural successor arcs. Unreachable blocks are omitted.
///
/// Backward dataflow problems (like the paper's `MAY-USE`/`MUST-DEF`
/// computations) converge fastest when blocks are visited in postorder —
/// each block is processed after its successors.
pub fn postorder(cfg: &RoutineCfg, roots: &[BlockId]) -> Vec<BlockId> {
    let n = cfg.blocks().len();
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = open, 2 = done
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(BlockId, usize)> = Vec::new();

    for &root in roots {
        if state[root.index()] != 0 {
            continue;
        }
        state[root.index()] = 1;
        stack.push((root, 0));
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = cfg.block(b).succs();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                order.push(b);
                stack.pop();
            }
        }
    }
    order
}

/// Reverse postorder (topological order for acyclic graphs) over the blocks
/// reachable from `roots`.
pub fn reverse_postorder(cfg: &RoutineCfg, roots: &[BlockId]) -> Vec<BlockId> {
    let mut order = postorder(cfg, roots);
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{BranchCond, Reg};
    use spike_program::ProgramBuilder;

    fn diamond_cfg() -> RoutineCfg {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .cond(BranchCond::Eq, Reg::A0, "else")
            .def(Reg::T0)
            .br("join")
            .label("else")
            .def(Reg::T1)
            .label("join")
            .ret();
        let p = b.build().unwrap();
        RoutineCfg::build(&p, p.routine_by_name("f").unwrap())
    }

    #[test]
    fn postorder_visits_successors_first() {
        let cfg = diamond_cfg();
        let order = postorder(&cfg, cfg.entries());
        assert_eq!(order.len(), 4);
        let pos = |b: usize| order.iter().position(|x| x.index() == b).expect("block in order");
        // Join (B3) precedes both arms, which precede the entry.
        assert!(pos(3) < pos(1));
        assert!(pos(3) < pos(2));
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }

    #[test]
    fn reverse_postorder_starts_at_root() {
        let cfg = diamond_cfg();
        let order = reverse_postorder(&cfg, cfg.entries());
        assert_eq!(order.first().map(|b| b.index()), Some(0));
        assert_eq!(order.last().map(|b| b.index()), Some(3));
    }

    #[test]
    fn unreachable_blocks_are_skipped() {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .br("end") // B0
            .def(Reg::T0) // B1: unreachable
            .label("end")
            .ret(); // B2
        let p = b.build().unwrap();
        let cfg = RoutineCfg::build(&p, p.routine_by_name("f").unwrap());
        let order = postorder(&cfg, cfg.entries());
        assert_eq!(order.len(), 2);
        assert!(!order.iter().any(|b| b.index() == 1));
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut b = ProgramBuilder::new();
        b.routine("f").label("top").cond(BranchCond::Ne, Reg::A0, "top").br("top"); // endless loop: no exit
        let p = b.build().unwrap();
        let cfg = RoutineCfg::build(&p, p.routine_by_name("f").unwrap());
        let order = postorder(&cfg, cfg.entries());
        assert_eq!(order.len(), cfg.blocks().len());
    }
}
