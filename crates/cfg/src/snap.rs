//! [`Snap`] encodings for the CFG structures retained inside a cached
//! analysis. Capacity-preserving by construction: every `Vec` goes
//! through the `Snap` impl for `Vec`, which round-trips capacities so
//! a restored CFG carries the exact same `HeapSize` charge as the live
//! one (the daemon's memory accounting is asserted bit-identical).

use spike_isa::{Snap, SnapError, SnapReader, SnapWriter};

use crate::block::{BasicBlock, BlockId, CallTarget, TermKind};

impl Snap for BlockId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.index() as u32);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BlockId::from_index(r.get_u32()? as usize))
    }
}

impl Snap for CallTarget {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            CallTarget::Direct(rid, entrance) => {
                w.put_u8(0);
                rid.snap(w);
                entrance.snap(w);
            }
            CallTarget::IndirectKnown(targets) => {
                w.put_u8(1);
                targets.snap(w);
            }
            CallTarget::IndirectUnknown => w.put_u8(2),
            CallTarget::IndirectHinted { used, defined, killed } => {
                w.put_u8(3);
                used.snap(w);
                defined.snap(w);
                killed.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(CallTarget::Direct(Snap::unsnap(r)?, Snap::unsnap(r)?)),
            1 => Ok(CallTarget::IndirectKnown(Snap::unsnap(r)?)),
            2 => Ok(CallTarget::IndirectUnknown),
            3 => Ok(CallTarget::IndirectHinted {
                used: Snap::unsnap(r)?,
                defined: Snap::unsnap(r)?,
                killed: Snap::unsnap(r)?,
            }),
            _ => Err(SnapError::Malformed("call target tag")),
        }
    }
}

impl Snap for TermKind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TermKind::FallThrough => w.put_u8(0),
            TermKind::CondBranch => w.put_u8(1),
            TermKind::Branch => w.put_u8(2),
            TermKind::MultiwayJump => w.put_u8(3),
            TermKind::UnknownJump => w.put_u8(4),
            TermKind::Call { target, return_to } => {
                w.put_u8(5);
                target.snap(w);
                return_to.snap(w);
            }
            TermKind::Ret => w.put_u8(6),
            TermKind::Halt => w.put_u8(7),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(TermKind::FallThrough),
            1 => Ok(TermKind::CondBranch),
            2 => Ok(TermKind::Branch),
            3 => Ok(TermKind::MultiwayJump),
            4 => Ok(TermKind::UnknownJump),
            5 => Ok(TermKind::Call { target: Snap::unsnap(r)?, return_to: Snap::unsnap(r)? }),
            6 => Ok(TermKind::Ret),
            7 => Ok(TermKind::Halt),
            _ => Err(SnapError::Malformed("terminator tag")),
        }
    }
}

impl Snap for BasicBlock {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.start);
        w.put_u32(self.len);
        self.succs.snap(w);
        self.preds.snap(w);
        self.def.snap(w);
        self.ubd.snap(w);
        self.term.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BasicBlock {
            start: r.get_u32()?,
            len: r.get_u32()?,
            succs: Snap::unsnap(r)?,
            preds: Snap::unsnap(r)?,
            def: Snap::unsnap(r)?,
            ubd: Snap::unsnap(r)?,
            term: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramCfg, RoutineCfg};
    use spike_isa::{HeapSize, RegSet};
    use spike_program::RoutineId;

    fn roundtrip<T: Snap>(v: &T) -> T {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("roundtrip decodes");
        assert!(r.is_exhausted());
        back
    }

    #[test]
    fn call_targets_and_terminators_roundtrip() {
        let targets = [
            CallTarget::Direct(RoutineId::from_index(3), 1),
            CallTarget::IndirectKnown(vec![(RoutineId::from_index(0), 0)]),
            CallTarget::IndirectUnknown,
            CallTarget::IndirectHinted {
                used: RegSet::from_bits(5),
                defined: RegSet::from_bits(9),
                killed: RegSet::from_bits(17),
            },
        ];
        for t in &targets {
            assert_eq!(&roundtrip(t), t);
        }
        let terms = [
            TermKind::FallThrough,
            TermKind::CondBranch,
            TermKind::Branch,
            TermKind::MultiwayJump,
            TermKind::UnknownJump,
            TermKind::Call {
                target: CallTarget::Direct(RoutineId::from_index(1), 0),
                return_to: Some(BlockId::from_index(4)),
            },
            TermKind::Ret,
            TermKind::Halt,
        ];
        for t in &terms {
            assert_eq!(&roundtrip(t), t);
        }
    }

    #[test]
    fn whole_program_cfgs_roundtrip_with_exact_heap_charge() {
        let mut b = spike_program::ProgramBuilder::new();
        b.routine("main").def(spike_isa::Reg::A0).call("leaf").put_int().halt();
        b.routine("leaf").copy(spike_isa::Reg::A0, spike_isa::Reg::V0).ret();
        let program = b.build().unwrap();
        let cfgs: Vec<RoutineCfg> =
            program.iter().map(|(rid, _)| RoutineCfg::build(&program, rid)).collect();
        let pcfg = ProgramCfg::from_cfgs(cfgs);
        let back = roundtrip(&pcfg);
        assert_eq!(back, pcfg);
        assert_eq!(back.heap_bytes(), pcfg.heap_bytes());
    }
}
