//! The whole-program control-flow graph (supergraph).

use spike_isa::HeapSize;
use spike_program::{Program, RoutineId};

use crate::block::{CallTarget, TermKind};
use crate::build::RoutineCfg;

/// Size of the whole-program CFG, as counted in Table 5 of the paper:
/// basic blocks and control-flow arcs *including* arcs representing calls
/// and returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SupergraphCounts {
    /// Total basic blocks across all routines.
    pub basic_blocks: usize,
    /// Intraprocedural arcs (branch, fall-through, jump-table arcs).
    pub intra_arcs: usize,
    /// Call arcs: one from each call block to each possible callee
    /// entrance (one to a virtual unknown node for unresolved indirect
    /// calls).
    pub call_arcs: usize,
    /// Return arcs: one from each possible callee exit back to each call's
    /// return point.
    pub return_arcs: usize,
}

impl SupergraphCounts {
    /// Total arcs including calls and returns (the paper's "CFG Arcs").
    pub fn total_arcs(&self) -> usize {
        self.intra_arcs + self.call_arcs + self.return_arcs
    }
}

/// The control-flow graphs of every routine in a program, plus the
/// interprocedural (call/return) arc bookkeeping of the supergraph.
///
/// The full-CFG baseline analysis (`spike-baseline`) runs over this
/// structure; Spike itself only uses it transiently while building the
/// much smaller program summary graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgramCfg {
    cfgs: Vec<RoutineCfg>,
}

impl ProgramCfg {
    /// Builds the CFG of every routine.
    pub fn build(program: &Program) -> ProgramCfg {
        let cfgs = program.iter().map(|(id, _)| RoutineCfg::build(program, id)).collect();
        ProgramCfg { cfgs }
    }

    /// Wraps already-built routine CFGs. Used by pipelines that time CFG
    /// construction and `DEF`/`UBD` initialization as separate stages.
    ///
    /// # Panics
    ///
    /// Panics if `cfgs` are not in routine-id order (`cfgs[i]` must
    /// describe routine `i`).
    pub fn from_cfgs(cfgs: Vec<RoutineCfg>) -> ProgramCfg {
        for (i, c) in cfgs.iter().enumerate() {
            assert_eq!(c.routine().index(), i, "cfgs must be in routine-id order");
        }
        ProgramCfg { cfgs }
    }

    /// Consumes the program CFG, returning the per-routine CFGs in
    /// routine-id order. Incremental re-analysis uses this to splice
    /// rebuilt CFGs for dirty routines in between reused clean ones.
    pub fn into_cfgs(self) -> Vec<RoutineCfg> {
        self.cfgs
    }

    /// The CFG of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the program this was built from.
    #[inline]
    pub fn routine_cfg(&self, id: RoutineId) -> &RoutineCfg {
        &self.cfgs[id.index()]
    }

    /// All routine CFGs, indexed by routine id.
    #[inline]
    pub fn cfgs(&self) -> &[RoutineCfg] {
        &self.cfgs
    }

    /// Counts the supergraph's blocks and arcs for the Table 5 comparison.
    pub fn counts(&self) -> SupergraphCounts {
        let mut c = SupergraphCounts::default();
        for cfg in &self.cfgs {
            c.basic_blocks += cfg.blocks().len();
            c.intra_arcs += cfg.arc_count();
            for b in cfg.blocks() {
                if let TermKind::Call { target, return_to } = b.term() {
                    let callees: usize = match target {
                        CallTarget::Direct(..) => 1,
                        CallTarget::IndirectKnown(list) => list.len(),
                        CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => 1,
                    };
                    c.call_arcs += callees;
                    if return_to.is_some() {
                        match target {
                            CallTarget::Direct(rid, _) => {
                                c.return_arcs += self.cfgs[rid.index()].exits().len().max(1);
                            }
                            CallTarget::IndirectKnown(list) => {
                                for (rid, _) in list {
                                    c.return_arcs += self.cfgs[rid.index()].exits().len().max(1);
                                }
                            }
                            CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
                                c.return_arcs += 1
                            }
                        }
                    }
                    // A call block flows into the callee; the fall-through
                    // arc to the return point exists only through the
                    // callee and is represented by the call/return arcs.
                }
            }
        }
        c
    }

    /// Total basic blocks (convenience for Table 2's "Basic Blocks").
    pub fn total_blocks(&self) -> usize {
        self.cfgs.iter().map(|c| c.blocks().len()).sum()
    }
}

impl HeapSize for ProgramCfg {
    fn heap_bytes(&self) -> usize {
        self.cfgs.heap_bytes()
    }
}

impl spike_isa::CloneExact for ProgramCfg {
    fn clone_exact(&self) -> ProgramCfg {
        ProgramCfg { cfgs: spike_isa::CloneExact::clone_exact(&self.cfgs) }
    }
}

impl spike_isa::Snap for ProgramCfg {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        spike_isa::Snap::snap(&self.cfgs, w);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        Ok(ProgramCfg { cfgs: spike_isa::Snap::unsnap(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    #[test]
    fn counts_cover_calls_and_returns() {
        let mut b = ProgramBuilder::new();
        // main: one call to f; f: two exits.
        b.routine("main").call("f").halt();
        b.routine("f")
            .cond(spike_isa::BranchCond::Eq, Reg::A0, "second")
            .ret()
            .label("second")
            .ret();
        let p = b.build().unwrap();
        let pcfg = ProgramCfg::build(&p);

        let c = pcfg.counts();
        // main: 2 blocks (call, halt); f: 3 blocks (cond, ret, ret).
        assert_eq!(c.basic_blocks, 5);
        // intra arcs: f's cond has 2 successors.
        assert_eq!(c.intra_arcs, 2);
        // one call arc main->f; two return arcs f.exit{1,2}->main.return.
        assert_eq!(c.call_arcs, 1);
        assert_eq!(c.return_arcs, 2);
        assert_eq!(c.total_arcs(), 5);
        assert_eq!(pcfg.total_blocks(), 5);
    }

    #[test]
    fn indirect_calls_count_per_target() {
        let mut b = ProgramBuilder::new();
        b.routine("main").jsr_known(Reg::PV, &["f", "g"]).jsr_unknown(Reg::PV).halt();
        b.routine("f").ret();
        b.routine("g").ret();
        let p = b.build().unwrap();
        let c = ProgramCfg::build(&p).counts();
        // Known indirect: 2 call arcs + 2 return arcs. Unknown: 1 + 1.
        assert_eq!(c.call_arcs, 3);
        assert_eq!(c.return_arcs, 3);
    }

    #[test]
    fn routine_cfgs_are_indexed_by_id() {
        let mut b = ProgramBuilder::new();
        b.routine("a").halt();
        b.routine("b").ret();
        let p = b.build().unwrap();
        let pcfg = ProgramCfg::build(&p);
        let idb = p.routine_by_name("b").unwrap();
        assert_eq!(pcfg.routine_cfg(idb).routine(), idb);
        assert_eq!(pcfg.cfgs().len(), 2);
    }
}
