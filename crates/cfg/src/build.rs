//! Per-routine CFG construction.

use std::collections::BTreeSet;
use std::fmt;

use spike_isa::{CloneExact, HeapSize, Instruction, RegSet};
use spike_program::{IndirectTargets, Program, RoutineId};

use crate::block::{BasicBlock, BlockId, CallTarget, TermKind};

/// The control-flow graph of one routine.
///
/// Built by [`RoutineCfg::build`]. Blocks are stored in address order;
/// block 0 starts at the routine's first instruction. Every block carries
/// its `DEF` and `UBD` register sets, so the *Initialization* stage of the
/// paper's pipeline is folded into construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutineCfg {
    routine: RoutineId,
    base: u32,
    blocks: Vec<BasicBlock>,
    entries: Vec<BlockId>,
    exits: Vec<BlockId>,
    unknown_jumps: Vec<BlockId>,
    halts: Vec<BlockId>,
}

impl RoutineCfg {
    /// Builds the CFG for `id` including the per-block `DEF`/`UBD` sets.
    ///
    /// Equivalent to [`RoutineCfg::build_structure`] followed by
    /// [`RoutineCfg::init_def_ubd`]; the two stages are exposed separately
    /// so the analysis pipeline can time them as the paper's *CFG Build*
    /// and *Initialization* stages (Figure 13).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to `program`.
    pub fn build(program: &Program, id: RoutineId) -> RoutineCfg {
        let mut cfg = RoutineCfg::build_structure(program, id);
        cfg.init_def_ubd(program);
        cfg
    }

    /// Builds the block structure (leaders, arcs, terminators) for `id`,
    /// leaving every block's `DEF`/`UBD` sets empty.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to `program`. `program` is assumed
    /// validated (as [`Program::new`] guarantees), so intra-routine branch
    /// targets and call targets always resolve.
    pub fn build_structure(program: &Program, id: RoutineId) -> RoutineCfg {
        let r = program.routine(id);
        let base = r.addr();
        let n = r.len() as u32;

        // Pass 1: find leaders (offsets where blocks begin).
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(0);
        for &e in r.entry_offsets() {
            leaders.insert(e);
        }
        for (i, insn) in r.insns().iter().enumerate() {
            let off = i as u32;
            let after = off + 1;
            match *insn {
                Instruction::CondBranch { disp, .. } | Instruction::Br { disp } => {
                    let target = off.wrapping_add(1).wrapping_add(disp as u32);
                    leaders.insert(target);
                    if after < n {
                        leaders.insert(after);
                    }
                }
                Instruction::Jmp { .. } => {
                    if let Some(table) = program.jump_table(base + off) {
                        for &t in table {
                            leaders.insert(t - base);
                        }
                    }
                    if after < n {
                        leaders.insert(after);
                    }
                }
                Instruction::Bsr { .. }
                | Instruction::Jsr { .. }
                | Instruction::Ret { .. }
                | Instruction::Halt
                    if after < n =>
                {
                    leaders.insert(after);
                }
                _ => {}
            }
        }

        let starts: Vec<u32> = leaders.into_iter().collect();
        let block_of = |off: u32| -> BlockId {
            match starts.binary_search(&off) {
                Ok(i) => BlockId::from_index(i),
                Err(_) => panic!("offset {off} is not a block leader"),
            }
        };

        // Pass 2: build blocks with successors and DEF/UBD.
        let mut blocks = Vec::with_capacity(starts.len());
        let mut exits = Vec::new();
        let mut unknown_jumps = Vec::new();
        let mut halts = Vec::new();

        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n);
            debug_assert!(end > start, "empty block at offset {start}");

            let last_off = end - 1;
            let last = r.insns()[last_off as usize];
            let next_block = || {
                debug_assert!(end < n, "fall through past routine end");
                block_of(end)
            };

            let mut succs = Vec::new();
            let term = match last {
                Instruction::CondBranch { disp, .. } => {
                    let taken = block_of(last_off.wrapping_add(1).wrapping_add(disp as u32));
                    let fall = next_block();
                    succs.push(fall);
                    if taken != fall {
                        succs.push(taken);
                    }
                    TermKind::CondBranch
                }
                Instruction::Br { disp } => {
                    succs.push(block_of(last_off.wrapping_add(1).wrapping_add(disp as u32)));
                    TermKind::Branch
                }
                Instruction::Jmp { .. } => match program.jump_table(base + last_off) {
                    Some(table) => {
                        for &t in table {
                            let b = block_of(t - base);
                            if !succs.contains(&b) {
                                succs.push(b);
                            }
                        }
                        TermKind::MultiwayJump
                    }
                    None => {
                        unknown_jumps.push(BlockId::from_index(bi));
                        TermKind::UnknownJump
                    }
                },
                Instruction::Bsr { .. } => {
                    let (rid, entry) = program
                        .direct_call_target(base + last_off)
                        .expect("validated program: bsr resolves");
                    TermKind::Call {
                        target: CallTarget::Direct(rid, entry),
                        return_to: (end < n).then(next_block),
                    }
                }
                Instruction::Jsr { .. } => {
                    let target = match program.indirect_call_targets(base + last_off) {
                        IndirectTargets::Unknown => CallTarget::IndirectUnknown,
                        IndirectTargets::Hinted { used, defined, killed } => {
                            CallTarget::IndirectHinted {
                                used: *used,
                                defined: *defined,
                                killed: *killed,
                            }
                        }
                        IndirectTargets::Known(addrs) => CallTarget::IndirectKnown(
                            addrs
                                .iter()
                                .map(|&a| {
                                    program
                                        .entry_at(a)
                                        .expect("validated program: jsr target is an entrance")
                                })
                                .collect(),
                        ),
                    };
                    TermKind::Call { target, return_to: (end < n).then(next_block) }
                }
                Instruction::Ret { .. } => {
                    exits.push(BlockId::from_index(bi));
                    TermKind::Ret
                }
                Instruction::Halt => {
                    halts.push(BlockId::from_index(bi));
                    TermKind::Halt
                }
                _ => {
                    succs.push(next_block());
                    TermKind::FallThrough
                }
            };

            blocks.push(BasicBlock {
                start: base + start,
                len: end - start,
                succs,
                preds: Vec::new(),
                def: RegSet::new(),
                ubd: RegSet::new(),
                term,
            });
        }

        // Pass 3: predecessor lists.
        for bi in 0..blocks.len() {
            let succs = blocks[bi].succs.clone();
            for s in succs {
                blocks[s.index()].preds.push(BlockId::from_index(bi));
            }
        }

        let entries = r.entry_offsets().iter().map(|&o| block_of(o)).collect();

        RoutineCfg { routine: id, base, blocks, entries, exits, unknown_jumps, halts }
    }

    /// Computes every block's `DEF` (registers defined) and `UBD`
    /// (used-before-defined) sets by scanning its instructions — the
    /// paper's *Initialization* stage. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not the program this CFG was built from.
    pub fn init_def_ubd(&mut self, program: &Program) {
        let r = program.routine(self.routine);
        assert_eq!(r.addr(), self.base, "CFG/program mismatch");
        for b in &mut self.blocks {
            let mut def = RegSet::new();
            let mut ubd = RegSet::new();
            for off in b.start..b.end() {
                let insn = r.insn_at(off).expect("block address in routine");
                ubd |= insn.uses() - def;
                def |= insn.defs();
            }
            b.def = def;
            b.ubd = ubd;
        }
    }

    /// Moves the CFG to a routine base address of `new_base`, shifting
    /// every block's start address by the same amount.
    ///
    /// Post-link rewriting slides routines up or down without touching
    /// their instructions; a CFG whose routine only moved (no deletions or
    /// replacements inside it) stays structurally identical — block
    /// boundaries, arcs, terminators, and `DEF`/`UBD` sets are all
    /// expressed routine-relatively — so rebasing is all that is needed to
    /// reuse it against the rewritten program.
    pub fn rebase(&mut self, new_base: u32) {
        let delta = new_base.wrapping_sub(self.base);
        if delta == 0 {
            return;
        }
        self.base = new_base;
        for b in &mut self.blocks {
            b.start = b.start.wrapping_add(delta);
        }
    }

    /// The routine this CFG describes.
    #[inline]
    pub fn routine(&self) -> RoutineId {
        self.routine
    }

    /// Word address of the routine's first instruction.
    #[inline]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// All basic blocks in address order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Entry blocks, parallel to the routine's
    /// [`entry_offsets`](spike_program::Routine::entry_offsets).
    #[inline]
    pub fn entries(&self) -> &[BlockId] {
        &self.entries
    }

    /// Exit blocks (those ending in `ret`), in address order.
    #[inline]
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// Blocks ending in an indirect jump with no recovered table (§3.5).
    #[inline]
    pub fn unknown_jumps(&self) -> &[BlockId] {
        &self.unknown_jumps
    }

    /// Blocks ending in `halt`.
    #[inline]
    pub fn halts(&self) -> &[BlockId] {
        &self.halts
    }

    /// The block containing word address `addr`, if any.
    pub fn block_containing(&self, addr: u32) -> Option<BlockId> {
        let idx = match self.blocks.binary_search_by_key(&addr, |b| b.start) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let b = &self.blocks[idx];
        (addr < b.end()).then(|| BlockId::from_index(idx))
    }

    /// Blocks ending in calls, in address order.
    pub fn call_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_call_block())
            .map(|(i, _)| BlockId::from_index(i))
    }

    /// Number of call-terminated blocks.
    pub fn call_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_call_block()).count()
    }

    /// Number of branch instructions: conditional, unconditional and
    /// multiway (the statistic of Table 3).
    pub fn branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| {
                matches!(
                    b.term,
                    TermKind::CondBranch
                        | TermKind::Branch
                        | TermKind::MultiwayJump
                        | TermKind::UnknownJump
                )
            })
            .count()
    }

    /// Number of multiway (jump-table) branches.
    pub fn multiway_count(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.term, TermKind::MultiwayJump)).count()
    }

    /// Number of intraprocedural arcs (sum of successor-list lengths).
    pub fn arc_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }
}

impl HeapSize for RoutineCfg {
    fn heap_bytes(&self) -> usize {
        self.blocks.heap_bytes()
            + self.entries.heap_bytes()
            + self.exits.heap_bytes()
            + self.unknown_jumps.heap_bytes()
            + self.halts.heap_bytes()
    }
}

impl CloneExact for RoutineCfg {
    fn clone_exact(&self) -> RoutineCfg {
        RoutineCfg {
            routine: self.routine,
            base: self.base,
            blocks: self.blocks.clone_exact(),
            entries: self.entries.clone_exact(),
            exits: self.exits.clone_exact(),
            unknown_jumps: self.unknown_jumps.clone_exact(),
            halts: self.halts.clone_exact(),
        }
    }
}

impl spike_isa::Snap for RoutineCfg {
    fn snap(&self, w: &mut spike_isa::SnapWriter) {
        self.routine.snap(w);
        w.put_u32(self.base);
        self.blocks.snap(w);
        self.entries.snap(w);
        self.exits.snap(w);
        self.unknown_jumps.snap(w);
        self.halts.snap(w);
    }
    fn unsnap(r: &mut spike_isa::SnapReader<'_>) -> Result<Self, spike_isa::SnapError> {
        use spike_isa::Snap;
        Ok(RoutineCfg {
            routine: Snap::unsnap(r)?,
            base: r.get_u32()?,
            blocks: Snap::unsnap(r)?,
            entries: Snap::unsnap(r)?,
            exits: Snap::unsnap(r)?,
            unknown_jumps: Snap::unsnap(r)?,
            halts: Snap::unsnap(r)?,
        })
    }
}

impl fmt::Display for RoutineCfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cfg of {} ({} blocks):", self.routine, self.blocks.len())?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(
                f,
                "  B{i} [{:#x}..{:#x}) def={} ubd={} -> {:?} {:?}",
                b.start,
                b.end(),
                b.def,
                b.ubd,
                b.succs,
                b.term
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{AluOp, BranchCond, Reg};
    use spike_program::ProgramBuilder;

    fn cfg_of(b: &ProgramBuilder, name: &str) -> (Program, RoutineCfg) {
        let p = b.build().unwrap();
        let id = p.routine_by_name(name).unwrap();
        let cfg = RoutineCfg::build(&p, id);
        (p, cfg)
    }

    #[test]
    fn straight_line_routine_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.routine("f").def(Reg::T0).def(Reg::T1).ret();
        let (_, cfg) = cfg_of(&b, "f");
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.exits(), &[BlockId::from_index(0)]);
        assert_eq!(cfg.blocks()[0].def(), RegSet::of(&[Reg::T0, Reg::T1]));
        // `ret` reads the return-address register.
        assert_eq!(cfg.blocks()[0].ubd(), RegSet::of(&[Reg::RA]));
    }

    #[test]
    fn calls_end_blocks() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").use_reg(Reg::V0).halt();
        b.routine("f").def(Reg::V0).ret();
        let (p, cfg) = cfg_of(&b, "main");
        assert_eq!(cfg.blocks().len(), 2);
        let b0 = &cfg.blocks()[0];
        assert!(b0.is_call_block());
        // Call blocks have no intraprocedural successors...
        assert!(b0.succs().is_empty());
        // ...but record their return point.
        let f = p.routine_by_name("f").unwrap();
        match b0.term() {
            TermKind::Call { target: CallTarget::Direct(rid, 0), return_to } => {
                assert_eq!(*rid, f);
                assert_eq!(*return_to, Some(BlockId::from_index(1)));
            }
            other => panic!("unexpected terminator {other:?}"),
        }
        // The call instruction's own RA definition lands in the block DEF.
        assert!(b0.def().contains(Reg::RA));
        assert!(b0.def().contains(Reg::A0));
    }

    #[test]
    fn diamond_from_conditional_branch() {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .cond(BranchCond::Eq, Reg::A0, "else") // B0
            .def(Reg::T0) // B1 (then)
            .br("join")
            .label("else")
            .def(Reg::T1) // B2
            .label("join")
            .ret(); // B3
        let (_, cfg) = cfg_of(&b, "f");
        assert_eq!(cfg.blocks().len(), 4);
        let b0 = &cfg.blocks()[0];
        assert_eq!(b0.succs().len(), 2);
        assert!(matches!(b0.term(), TermKind::CondBranch));
        assert_eq!(cfg.blocks()[1].succs(), &[BlockId::from_index(3)]);
        assert_eq!(cfg.blocks()[2].succs(), &[BlockId::from_index(3)]);
        let preds = cfg.blocks()[3].preds();
        assert_eq!(preds.len(), 2);
        assert_eq!(cfg.branch_count(), 2); // cond + br
        assert_eq!(cfg.arc_count(), 4);
    }

    #[test]
    fn self_loop() {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .label("top")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .ret();
        let (_, cfg) = cfg_of(&b, "f");
        assert_eq!(cfg.blocks().len(), 2);
        let b0 = &cfg.blocks()[0];
        assert!(b0.succs().contains(&BlockId::from_index(0)));
        assert!(b0.succs().contains(&BlockId::from_index(1)));
        assert!(b0.preds().contains(&BlockId::from_index(0)));
    }

    #[test]
    fn multiway_jump_with_table() {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .switch(Reg::T0, &["c0", "c1", "c2"])
            .label("c0")
            .br("end")
            .label("c1")
            .br("end")
            .label("c2")
            .def(Reg::T1)
            .label("end")
            .ret();
        let (_, cfg) = cfg_of(&b, "f");
        let b0 = &cfg.blocks()[0];
        assert!(matches!(b0.term(), TermKind::MultiwayJump));
        assert_eq!(b0.succs().len(), 3);
        assert_eq!(cfg.multiway_count(), 1);
        // UBD of the switch block includes the index register.
        assert!(b0.ubd().contains(Reg::T0));
    }

    #[test]
    fn unknown_jump_has_no_successors() {
        // Hand-assemble: jmp without a table.
        let mut b = ProgramBuilder::new();
        b.routine("f").insn(Instruction::Jmp { base: Reg::T0 }).def(Reg::T1).ret();
        let (_, cfg) = cfg_of(&b, "f");
        let b0 = &cfg.blocks()[0];
        assert!(matches!(b0.term(), TermKind::UnknownJump));
        assert!(b0.succs().is_empty());
        assert_eq!(cfg.unknown_jumps(), &[BlockId::from_index(0)]);
    }

    #[test]
    fn alternate_entries_become_entry_blocks() {
        let mut b = ProgramBuilder::new();
        b.routine("f").def(Reg::T0).label("alt").alt_entry("alt").def(Reg::T1).ret();
        let (_, cfg) = cfg_of(&b, "f");
        assert_eq!(cfg.entries().len(), 2);
        assert_eq!(cfg.entries()[0], BlockId::from_index(0));
        assert_eq!(cfg.entries()[1], BlockId::from_index(1));
        // The entry split also forces a fall-through edge.
        assert_eq!(cfg.blocks()[0].succs(), &[BlockId::from_index(1)]);
        assert!(matches!(cfg.blocks()[0].term(), TermKind::FallThrough));
    }

    #[test]
    fn ubd_tracks_order_within_block() {
        // use after def in the same block: not UBD.
        let mut b = ProgramBuilder::new();
        b.routine("f").def(Reg::T0).op(AluOp::Add, Reg::T0, Reg::A0, Reg::T1).ret();
        let (_, cfg) = cfg_of(&b, "f");
        let blk = &cfg.blocks()[0];
        assert!(!blk.ubd().contains(Reg::T0));
        assert!(blk.ubd().contains(Reg::A0));
        assert!(blk.ubd().contains(Reg::RA)); // used by ret
        assert_eq!(blk.def(), RegSet::of(&[Reg::T0, Reg::T1]));
    }

    #[test]
    fn block_containing_resolves_addresses() {
        let mut b = ProgramBuilder::new();
        b.routine("f").def(Reg::T0).call("g").def(Reg::T1).ret();
        b.routine("g").ret();
        let (p, cfg) = cfg_of(&b, "f");
        let base = p.routines()[0].addr();
        assert_eq!(cfg.block_containing(base), Some(BlockId::from_index(0)));
        assert_eq!(cfg.block_containing(base + 1), Some(BlockId::from_index(0)));
        assert_eq!(cfg.block_containing(base + 2), Some(BlockId::from_index(1)));
        assert_eq!(cfg.block_containing(base + 4), None);
        assert_eq!(cfg.block_containing(base.wrapping_sub(1)), None);
    }

    #[test]
    fn rebase_shifts_block_addresses_only() {
        let mut b = ProgramBuilder::new();
        b.routine("f")
            .cond(BranchCond::Eq, Reg::A0, "else")
            .def(Reg::T0)
            .br("join")
            .label("else")
            .def(Reg::T1)
            .label("join")
            .ret();
        let (_, cfg) = cfg_of(&b, "f");
        let mut moved = cfg.clone();
        let new_base = cfg.base() + 17;
        moved.rebase(new_base);
        assert_eq!(moved.base(), new_base);
        for (a, b) in cfg.blocks().iter().zip(moved.blocks()) {
            assert_eq!(b.start(), a.start() + 17);
            assert_eq!(b.len(), a.len());
            assert_eq!(b.succs(), a.succs());
            assert_eq!(b.preds(), a.preds());
            assert_eq!(b.def(), a.def());
            assert_eq!(b.ubd(), a.ubd());
            assert_eq!(b.term(), a.term());
        }
        // Address lookups follow the shift.
        assert_eq!(moved.block_containing(cfg.base()), None);
        assert_eq!(moved.block_containing(new_base), Some(BlockId::from_index(0)));
        // Rebasing back restores the original exactly.
        moved.rebase(cfg.base());
        assert_eq!(moved, cfg);
    }

    #[test]
    fn halt_blocks_are_recorded() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::V0).halt();
        let (_, cfg) = cfg_of(&b, "main");
        assert_eq!(cfg.halts().len(), 1);
        assert!(cfg.exits().is_empty());
    }
}
