//! # spike-cfg
//!
//! Control-flow graph construction over decoded routines.
//!
//! Spike's first analysis stage (the *CFG Build* and *Initialization*
//! stages of Figure 13 in the paper) turns each routine's instruction
//! sequence into basic blocks and computes, for every block, the `DEF` set
//! (registers defined in the block) and the `UBD` set (registers
//! used-before-defined in the block). Following the paper, **a basic block
//! is ended by a call instruction** as well as by branches; the
//! fall-through point after a call is the *return point* that later becomes
//! a PSG return node.
//!
//! The crate provides:
//!
//! * [`RoutineCfg`] — basic blocks, arcs, entry/exit blocks and per-block
//!   `DEF`/`UBD` for one routine ([`RoutineCfg::build`]),
//! * [`ProgramCfg`] — all routine CFGs plus the whole-program supergraph
//!   bookkeeping (call and return arcs) used by the full-CFG baseline
//!   analysis and by the Table 5 size comparison,
//! * graph helpers (postorder, reverse postorder) shared by the dataflow
//!   solvers.
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//! use spike_cfg::RoutineCfg;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").def(Reg::A0).call("f").put_int().halt();
//! b.routine("f").use_reg(Reg::A0).def(Reg::V0).ret();
//! let program = b.build()?;
//!
//! let cfg = RoutineCfg::build(&program, program.routine_by_name("main").unwrap());
//! // `def a0; call f` — the call ends the first block.
//! assert_eq!(cfg.blocks().len(), 2);
//! assert!(cfg.blocks()[0].is_call_block());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod block;
mod blockset;
mod build;
mod dom;
mod loops;
mod order;
mod program_cfg;
mod snap;

pub use block::{BasicBlock, BlockId, CallTarget, TermKind};
pub use blockset::BlockSet;
pub use build::RoutineCfg;
pub use dom::DomTree;
pub use loops::{LoopForest, NaturalLoop};
pub use order::{postorder, reverse_postorder};
pub use program_cfg::{ProgramCfg, SupergraphCounts};
