//! Dominance over [`RoutineCfg`]: dominator trees, dominance frontiers
//! and postdominators.
//!
//! The sparse dataflow representation (`spike-core`) contracts chains of
//! PSG nodes whose values are closed-form functions of a downstream
//! anchor; the soundness of a contraction is a *postdominance* fact (every
//! terminating path from the node reaches the anchor's block), so this
//! module provides the forward and backward dominator machinery over a
//! routine's basic blocks — and it is the foundation the planned
//! loop-aware optimizations (natural-loop detection, LICM) build on.
//!
//! The construction is the Cooper–Harvey–Kennedy iterative algorithm
//! ("A Simple, Fast Dominance Algorithm"): immediate dominators by
//! intersection walks over postorder numbers, dominance frontiers from
//! the join points' predecessor runs. Routines may have multiple
//! entrances (alternate entry points, §2 of the paper) and multiple
//! exit-like blocks (`ret`, `halt`, unrecovered indirect jumps), so both
//! directions run from a *virtual root* fanning out to the root set; a
//! root's immediate dominator is `None`.
//!
//! A naive iterative reference (`dom[b] = {b} ∪ ⋂ dom[preds(b)]` to a
//! fixpoint over full bit-matrices) lives in the test module and pins the
//! CHK results on handwritten CFGs — irreducible loops, alternate
//! entrances, self-loops — and on every routine of a generated program.

use crate::block::BlockId;
use crate::build::RoutineCfg;

/// A dominator (or postdominator) tree plus dominance frontiers for one
/// routine, built by [`DomTree::dominators`] / [`DomTree::postdominators`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for roots (their parent is
    /// the virtual root) and for blocks unreachable from the root set.
    idom: Vec<Option<BlockId>>,
    /// Reachability from the root set along the direction of the build.
    reachable: Vec<bool>,
    /// Dominance frontier per block, ascending and deduplicated.
    frontiers: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Builds the dominator tree and frontiers of `cfg`, rooted at its
    /// entrance blocks. With several entrances, "a dominates b" means
    /// every path from *any* entrance to `b` passes through `a`.
    pub fn dominators(cfg: &RoutineCfg) -> DomTree {
        let succs: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.succs()).collect();
        let preds: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.preds()).collect();
        build(cfg.entries(), &succs, &preds)
    }

    /// Builds the dominator tree of `cfg` over the *execution* graph:
    /// like [`DomTree::dominators`], but every call block additionally
    /// flows to its return point, modeling the callee as an opaque
    /// straight-line step. The PSG convention deliberately omits these
    /// arcs (interprocedural paths run through the callee); loop
    /// detection and loop-invariant code motion instead need the
    /// routine-local execution order, where a call-and-return inside a
    /// loop body keeps the body connected.
    pub fn dominators_linked(cfg: &RoutineCfg) -> DomTree {
        let (succs, preds) = linked_adjacency(cfg);
        let succs: Vec<&[BlockId]> = succs.iter().map(|v| v.as_slice()).collect();
        let preds: Vec<&[BlockId]> = preds.iter().map(|v| v.as_slice()).collect();
        build(cfg.entries(), &succs, &preds)
    }

    /// Builds the postdominator tree and (post)dominance frontiers of
    /// `cfg`: dominators of the reversed graph, rooted at every block
    /// without successors — `ret` exits, `halt`s, unrecovered indirect
    /// jumps, and non-returning calls. "a postdominates b" means every
    /// path from `b` to the end of the routine passes through `a`;
    /// blocks that reach no exit-like block (infinite loops) are
    /// unreachable here.
    pub fn postdominators(cfg: &RoutineCfg) -> DomTree {
        let succs: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.preds()).collect();
        let preds: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.succs()).collect();
        let roots: Vec<BlockId> = (0..cfg.blocks().len())
            .map(BlockId::from_index)
            .filter(|&b| cfg.block(b).succs().is_empty())
            .collect();
        build(&roots, &succs, &preds)
    }

    /// The immediate dominator of `b`, or `None` when `b` is a root or
    /// unreachable from the root set.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `b` is reachable from the root set.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Whether `a` dominates `b` (reflexively). Unreachable blocks are
    /// dominated by nothing and dominate nothing (except themselves).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        let mut x = b;
        while let Some(d) = self.idom[x.index()] {
            if d == a {
                return true;
            }
            x = d;
        }
        false
    }

    /// The dominance frontier of `b`: the blocks where `b`'s dominance
    /// ends — `b` dominates a predecessor of each but does not strictly
    /// dominate the block itself. Join placement for sparse analyses
    /// reads exactly this set.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        &self.frontiers[b.index()]
    }
}

/// The routine-local execution adjacency: block successors plus a
/// call→return-point arc for every returning call.
pub(crate) fn linked_adjacency(cfg: &RoutineCfg) -> (Vec<Vec<BlockId>>, Vec<Vec<BlockId>>) {
    let n = cfg.blocks().len();
    let mut succs: Vec<Vec<BlockId>> = cfg.blocks().iter().map(|b| b.succs().to_vec()).collect();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if let crate::block::TermKind::Call { return_to: Some(rt), .. } = b.term() {
            if !succs[bi].contains(rt) {
                succs[bi].push(*rt);
            }
        }
    }
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (bi, ss) in succs.iter().enumerate() {
        for s in ss {
            preds[s.index()].push(BlockId::from_index(bi));
        }
    }
    (succs, preds)
}

/// The CHK core over an explicit adjacency, with a virtual root (index
/// `n`) fanning out to `roots` so multi-entrance routines need no
/// special cases. `succs`/`preds` follow the build direction (swapped
/// for postdominators).
fn build(roots: &[BlockId], succs: &[&[BlockId]], preds: &[&[BlockId]]) -> DomTree {
    let n = succs.len();
    let vroot = n as u32;

    // Postorder numbering by iterative DFS from the virtual root.
    let mut post = vec![u32::MAX; n + 1];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n + 1];
    let mut stack: Vec<(u32, usize)> = vec![(vroot, 0)];
    visited[n] = true;
    let mut next_post = 0u32;
    while let Some(&mut (x, ref mut i)) = stack.last_mut() {
        let out: &[BlockId] = if x == vroot { roots } else { succs[x as usize] };
        if *i < out.len() {
            let y = out[*i].index();
            *i += 1;
            if !visited[y] {
                visited[y] = true;
                stack.push((y as u32, 0));
            }
        } else {
            stack.pop();
            post[x as usize] = next_post;
            if x != vroot {
                order.push(x);
            }
            next_post += 1;
        }
    }
    let reachable: Vec<bool> = visited[..n].to_vec();

    // Immediate dominators: process in reverse postorder, intersecting
    // the doms of processed predecessors, until a full pass changes
    // nothing. `idom[vroot] = vroot` anchors the intersection walks.
    let mut idom = vec![u32::MAX; n + 1];
    idom[n] = vroot;
    let is_root = {
        let mut m = vec![false; n];
        for &r in roots {
            m[r.index()] = true;
        }
        m
    };
    let intersect = |idom: &[u32], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while post[a as usize] < post[b as usize] {
                a = idom[a as usize];
            }
            while post[b as usize] < post[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &x in order.iter().rev() {
            let xi = x as usize;
            let mut new = if is_root[xi] { vroot } else { u32::MAX };
            for &p in preds[xi] {
                let pi = p.index();
                if idom[pi] != u32::MAX {
                    new =
                        if new == u32::MAX { pi as u32 } else { intersect(&idom, new, pi as u32) };
                }
            }
            debug_assert_ne!(new, u32::MAX, "a reachable block has a processed predecessor");
            if idom[xi] != new {
                idom[xi] = new;
                changed = true;
            }
        }
    }

    // Dominance frontiers: for each join point, run each predecessor's
    // idom chain up to (exclusive) the join's idom. A root with real
    // predecessors is a join too — the virtual root is its other
    // predecessor — which is what places frontiers at entry blocks
    // targeted by back edges.
    let mut frontiers: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for &x in &order {
        let xi = x as usize;
        let real: Vec<usize> =
            preds[xi].iter().map(|p| p.index()).filter(|&p| idom[p] != u32::MAX).collect();
        let npreds = real.len() + usize::from(is_root[xi]);
        if npreds < 2 {
            continue;
        }
        for &p in &real {
            let mut runner = p as u32;
            while runner != idom[xi] && runner != vroot {
                frontiers[runner as usize].push(BlockId::from_index(xi));
                runner = idom[runner as usize];
            }
        }
    }
    for f in &mut frontiers {
        f.sort_unstable();
        f.dedup();
    }

    let idom = (0..n)
        .map(|x| match idom[x] {
            d if d == u32::MAX || d == vroot => None,
            d => Some(BlockId::from_index(d as usize)),
        })
        .collect();
    DomTree { idom, reachable, frontiers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{BranchCond, Reg};
    use spike_program::{Program, ProgramBuilder};

    /// The naive iterative reference: full dominator sets as bit rows,
    /// `dom[b] = {b} ∪ ⋂ dom[preds(b)]` from ⊤ to a fixpoint. Returns
    /// one row per block; unreachable blocks get an empty row.
    struct NaiveDoms {
        dom: Vec<Vec<bool>>,
        reachable: Vec<bool>,
    }

    impl NaiveDoms {
        fn build(roots: &[BlockId], succs: &[&[BlockId]], preds: &[&[BlockId]]) -> NaiveDoms {
            let n = succs.len();
            let mut reachable = vec![false; n];
            let mut stack: Vec<usize> = roots.iter().map(|r| r.index()).collect();
            for &r in roots {
                reachable[r.index()] = true;
            }
            while let Some(x) = stack.pop() {
                for &y in succs[x] {
                    if !reachable[y.index()] {
                        reachable[y.index()] = true;
                        stack.push(y.index());
                    }
                }
            }
            let is_root = {
                let mut m = vec![false; n];
                for &r in roots {
                    m[r.index()] = true;
                }
                m
            };
            let mut dom: Vec<Vec<bool>> = (0..n)
                .map(|x| {
                    if !reachable[x] {
                        vec![false; n]
                    } else if is_root[x] {
                        let mut row = vec![false; n];
                        row[x] = true;
                        row
                    } else {
                        vec![true; n]
                    }
                })
                .collect();
            let mut changed = true;
            while changed {
                changed = false;
                for x in 0..n {
                    if !reachable[x] || is_root[x] {
                        continue;
                    }
                    let mut row = vec![true; n];
                    let mut any = false;
                    for &p in preds[x] {
                        if !reachable[p.index()] {
                            continue;
                        }
                        any = true;
                        for (r, d) in row.iter_mut().zip(&dom[p.index()]) {
                            *r &= d;
                        }
                    }
                    // A reachable non-root may also be entered straight
                    // from a root's virtual edge only if it *is* a root;
                    // otherwise its doms come from real predecessors.
                    assert!(any, "reachable non-root has a reachable predecessor");
                    row[x] = true;
                    if row != dom[x] {
                        dom[x] = row;
                        changed = true;
                    }
                }
            }
            NaiveDoms { dom, reachable }
        }

        fn dominates(&self, a: BlockId, b: BlockId) -> bool {
            a == b || (self.reachable[b.index()] && self.dom[b.index()][a.index()])
        }

        /// DF(a) = { b : a dominates some predecessor of b, and a does
        /// not strictly dominate b } — computed straight from the sets.
        fn frontier(&self, a: BlockId, preds: &[&[BlockId]]) -> Vec<BlockId> {
            let mut out = Vec::new();
            for (b, bp) in preds.iter().enumerate() {
                if !self.reachable[b] {
                    continue;
                }
                let bid = BlockId::from_index(b);
                // The virtual root edge into a real root is a predecessor
                // `a` never dominates, so it can only create joins; a
                // real predecessor must carry `a`'s dominance.
                let dominates_a_pred =
                    bp.iter().any(|&p| self.reachable[p.index()] && self.dominates(a, p));
                let strictly = a != bid && self.dominates(a, bid);
                if dominates_a_pred && !strictly {
                    out.push(bid);
                }
            }
            out
        }
    }

    /// Compares CHK against the naive reference on every block pair of
    /// one routine, both directions.
    fn check_routine(cfg: &RoutineCfg) {
        let n = cfg.blocks().len();
        let succs: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.succs()).collect();
        let preds: Vec<&[BlockId]> = cfg.blocks().iter().map(|b| b.preds()).collect();
        let exit_roots: Vec<BlockId> =
            (0..n).map(BlockId::from_index).filter(|&b| cfg.block(b).succs().is_empty()).collect();
        for (tree, naive, roots, preds_dir) in [
            (
                DomTree::dominators(cfg),
                NaiveDoms::build(cfg.entries(), &succs, &preds),
                cfg.entries().to_vec(),
                &preds,
            ),
            (
                DomTree::postdominators(cfg),
                NaiveDoms::build(&exit_roots, &preds, &succs),
                exit_roots.clone(),
                &succs,
            ),
        ] {
            for a in 0..n {
                let aid = BlockId::from_index(a);
                assert_eq!(tree.is_reachable(aid), naive.reachable[a], "reachability of {aid:?}");
                for b in 0..n {
                    let bid = BlockId::from_index(b);
                    assert_eq!(
                        tree.dominates(aid, bid),
                        naive.dominates(aid, bid),
                        "dominates({aid:?}, {bid:?}) with roots {roots:?}"
                    );
                }
                if tree.is_reachable(aid) {
                    assert_eq!(
                        tree.frontier(aid),
                        naive.frontier(aid, preds_dir),
                        "frontier({aid:?}) with roots {roots:?}"
                    );
                }
            }
        }
    }

    fn routine_cfg(program: &Program, name: &str) -> RoutineCfg {
        RoutineCfg::build(program, program.routine_by_name(name).unwrap())
    }

    #[test]
    fn straight_line() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).put_int().halt();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "main");
        check_routine(&cfg);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(cfg.entries()[0]), None);
    }

    #[test]
    fn diamond_frontier_at_join() {
        // entry → (then | else) → join: the frontier of both arms is the
        // join block; the join's idom is the entry.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .cond(BranchCond::Eq, Reg::A0, "then")
            .def(Reg::T0)
            .br("join")
            .label("then")
            .def(Reg::T1)
            .label("join")
            .put_int()
            .halt();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "main");
        check_routine(&cfg);

        let dom = DomTree::dominators(&cfg);
        let entry = cfg.entries()[0];
        // Identify the two arms (the blocks whose single pred is entry)
        // and the join (two preds).
        let join = (0..cfg.blocks().len())
            .map(BlockId::from_index)
            .find(|&x| cfg.block(x).preds().len() == 2)
            .expect("diamond has a join");
        assert_eq!(dom.idom(join), Some(entry));
        for &arm in cfg.block(entry).succs() {
            assert_eq!(dom.idom(arm), Some(entry));
            assert_eq!(dom.frontier(arm), [join]);
        }
        assert!(dom.frontier(entry).is_empty());
    }

    #[test]
    fn single_block_loop_is_its_own_frontier() {
        // A block branching back to itself dominates itself only; the
        // self edge puts it in its own dominance frontier.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .label("spin")
            .def(Reg::T0)
            .cond(BranchCond::Ne, Reg::T0, "spin")
            .put_int()
            .halt();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "main");
        check_routine(&cfg);

        let dom = DomTree::dominators(&cfg);
        let spin = (0..cfg.blocks().len())
            .map(BlockId::from_index)
            .find(|&x| cfg.block(x).succs().contains(&x))
            .expect("self-loop block");
        assert!(dom.frontier(spin).contains(&spin), "self-loop joins at itself");
    }

    #[test]
    fn irreducible_loop() {
        // Two loop headers entered from outside each other: the classic
        // irreducible shape. Neither header dominates the other, and the
        // naive reference pins the frontier answers.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .cond(BranchCond::Eq, Reg::A0, "h2")
            .label("h1")
            .def(Reg::T0)
            .cond(BranchCond::Eq, Reg::T0, "h2")
            .br("out")
            .label("h2")
            .def(Reg::T1)
            .cond(BranchCond::Eq, Reg::T1, "h1")
            .label("out")
            .put_int()
            .halt();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "main");
        check_routine(&cfg);

        let dom = DomTree::dominators(&cfg);
        // Find the two headers: blocks with two predecessors that reach
        // each other. Neither may dominate the other.
        let joins: Vec<BlockId> = (0..cfg.blocks().len())
            .map(BlockId::from_index)
            .filter(|&x| cfg.block(x).preds().len() >= 2)
            .collect();
        assert!(joins.len() >= 2, "irreducible shape has two join headers");
        assert!(!dom.dominates(joins[0], joins[1]) || !dom.dominates(joins[1], joins[0]));
    }

    #[test]
    fn multi_entry_alt_entrance() {
        // A routine with an alternate entrance: blocks reachable from
        // either entrance are dominated by neither, so the shared tail's
        // idom is None only if it is a root — here it is a join of the
        // two entrance paths with no single dominator.
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").call("f:alt").put_int().halt();
        b.routine("f")
            .def(Reg::T0)
            .br("tail")
            .label("alt")
            .alt_entry("alt")
            .def(Reg::T1)
            .label("tail")
            .def(Reg::V0)
            .ret();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "f");
        assert!(cfg.entries().len() >= 2, "alt entrance produces a second entry block");
        check_routine(&cfg);

        let dom = DomTree::dominators(&cfg);
        // The tail joins paths from both entrances: dominated by neither
        // entrance, and its idom is None (virtual root).
        let tail = (0..cfg.blocks().len())
            .map(BlockId::from_index)
            .find(|&x| cfg.block(x).preds().len() >= 2)
            .expect("shared tail join");
        for &e in cfg.entries() {
            assert!(!dom.dominates(e, tail), "{e:?} must not dominate the shared tail");
        }
        assert_eq!(dom.idom(tail), None);
    }

    #[test]
    fn postdominators_multi_exit() {
        // Exit-like blocks (ret + halt paths) both act as roots of the
        // reverse graph; a block ahead of the split postdominates
        // nothing past it.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .cond(BranchCond::Eq, Reg::A0, "stop")
            .def(Reg::V0)
            .ret()
            .label("stop")
            .halt();
        let program = b.build().unwrap();
        let cfg = routine_cfg(&program, "main");
        check_routine(&cfg);

        let pdom = DomTree::postdominators(&cfg);
        let entry = cfg.entries()[0];
        for x in (0..cfg.blocks().len()).map(BlockId::from_index) {
            if x != entry {
                assert!(!pdom.dominates(entry, x), "entry postdominates only itself");
            }
        }
    }

    #[test]
    fn generated_program_agrees_with_naive_reference() {
        // A mixed program off the builder: calls, switches, loops.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .call("work")
            .switch(Reg::V0, &["a", "b", "c"])
            .label("a")
            .def(Reg::T0)
            .br("done")
            .label("b")
            .def(Reg::T1)
            .br("done")
            .label("c")
            .def(Reg::T2)
            .label("done")
            .put_int()
            .halt();
        b.routine("work")
            .def(Reg::T0)
            .label("loop")
            .use_reg(Reg::T0)
            .cond(BranchCond::Ne, Reg::T0, "loop")
            .def(Reg::V0)
            .ret();
        let program = b.build().unwrap();
        for (id, _) in program.iter() {
            let cfg = RoutineCfg::build(&program, id);
            check_routine(&cfg);
        }
    }
}
