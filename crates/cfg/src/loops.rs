//! Natural-loop detection over the dominator tree: the loop forest the
//! profile-guided optimizations consume.
//!
//! A *natural loop* is identified by a back edge `b → h` where the
//! target `h` dominates the source `b`; its body is `h` plus every block
//! that reaches `b` without passing through `h`. Back edges with the
//! same header are merged into one loop, loops nest by body inclusion,
//! and every block gets a nesting depth (0 = not in any loop) — the
//! static "hotness" weight when no execution profile is available.
//!
//! Loops are detected over the *execution* graph
//! ([`DomTree::dominators_linked`]): a call inside a loop flows to its
//! return point, so dispatch loops whose iterations call out remain
//! cycles. Irreducible regions — cycles entered other than through a
//! dominating header, detected as DFS retreating edges whose target does
//! not dominate the source — are demoted: their blocks are flagged so
//! loop optimizations leave them alone, and any natural loop overlapping
//! such a region is marked [`NaturalLoop::irreducible`].

use crate::block::BlockId;
use crate::blockset::BlockSet;
use crate::build::RoutineCfg;
use crate::dom::{linked_adjacency, DomTree};

/// One natural loop of a routine.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header: dominates every block in the body, and the only
    /// block through which the loop can be entered (when reducible).
    pub header: BlockId,
    /// Every block in the loop, including the header.
    pub body: BlockSet,
    /// The sources of the back edges (blocks branching to the header).
    pub back_edges: Vec<BlockId>,
    /// Index of the innermost enclosing loop in [`LoopForest::loops`].
    pub parent: Option<usize>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: u32,
    /// The loop overlaps an irreducible region (a cycle with a side
    /// entrance); optimizations must not treat the header as the sole
    /// entry.
    pub irreducible: bool,
}

/// The loop forest of one routine; see the module docs.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// Per block: how many loops contain it.
    depth: Vec<u32>,
    /// Per block: index of the innermost containing loop.
    innermost: Vec<Option<u32>>,
    /// Per block: member of an irreducible cycle.
    demoted: Vec<bool>,
    irreducible_edges: usize,
}

impl LoopForest {
    /// Detects the natural loops of `cfg`. `dom` must be the
    /// execution-graph dominator tree of the same routine
    /// ([`DomTree::dominators_linked`]).
    pub fn build(cfg: &RoutineCfg, dom: &DomTree) -> LoopForest {
        let n = cfg.blocks().len();
        let (succs, preds) = linked_adjacency(cfg);

        // Retreating edges via DFS from the entries: an edge to a block
        // still on the DFS stack closes a cycle. If the target dominates
        // the source it is a natural back edge; otherwise the cycle is
        // irreducible.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (source, header)
        let mut irreducible_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for &e in cfg.entries() {
            if color[e.index()] != 0 {
                continue;
            }
            color[e.index()] = 1;
            stack.push((e.index() as u32, 0));
            while let Some(&mut (x, ref mut i)) = stack.last_mut() {
                let xi = x as usize;
                if *i < succs[xi].len() {
                    let y = succs[xi][*i];
                    *i += 1;
                    match color[y.index()] {
                        0 => {
                            color[y.index()] = 1;
                            stack.push((y.index() as u32, 0));
                        }
                        1 => {
                            let src = BlockId::from_index(xi);
                            if dom.dominates(y, src) {
                                back_edges.push((src, y));
                            } else {
                                irreducible_edges.push((src, y));
                            }
                        }
                        _ => {}
                    }
                } else {
                    stack.pop();
                    color[xi] = 2;
                }
            }
        }

        // Demote irreducible regions: every block of an SCC containing
        // an irreducible edge source.
        let mut demoted = vec![false; n];
        if !irreducible_edges.is_empty() {
            let scc = sccs(&succs);
            let mut bad: Vec<usize> = Vec::new();
            for &(src, _) in &irreducible_edges {
                let c = scc[src.index()];
                if !bad.contains(&c) {
                    bad.push(c);
                }
            }
            for b in 0..n {
                if bad.contains(&scc[b]) {
                    demoted[b] = true;
                }
            }
        }

        // Group back edges by header and flood the bodies backwards.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort_unstable();
        headers.dedup();
        for h in headers {
            let mut body = BlockSet::new(n);
            body.insert(h);
            let mut sources: Vec<BlockId> =
                back_edges.iter().filter(|&&(_, t)| t == h).map(|&(s, _)| s).collect();
            sources.sort_unstable();
            sources.dedup();
            let mut work: Vec<BlockId> = Vec::new();
            for &s in &sources {
                if body.insert(s) {
                    work.push(s);
                }
            }
            while let Some(x) = work.pop() {
                for &p in &preds[x.index()] {
                    if dom.is_reachable(p) && body.insert(p) {
                        work.push(p);
                    }
                }
            }
            let irreducible = body.iter().any(|b| demoted[b.index()]);
            loops.push(NaturalLoop {
                header: h,
                body,
                back_edges: sources,
                parent: None,
                depth: 0,
                irreducible,
            });
        }

        // Nesting: the parent of a loop is the smallest strictly larger
        // loop containing its header. (Distinct headers make equal-body
        // loops impossible; a natural loop's body is wholly inside any
        // loop containing its header.)
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].body.count());
        for (oi, &i) in order.iter().enumerate() {
            for &j in &order[oi + 1..] {
                if loops[j].body.count() > loops[i].body.count()
                    && loops[j].body.contains(loops[i].header)
                {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }
        // Depths top-down: parents are strictly larger, so processing in
        // descending body size sees every parent first.
        for &i in order.iter().rev() {
            loops[i].depth = match loops[i].parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        let mut depth = vec![0u32; n];
        let mut innermost: Vec<Option<u32>> = vec![None; n];
        for b in 0..n {
            let id = BlockId::from_index(b);
            let mut best: Option<usize> = None;
            let mut count = 0;
            for (li, l) in loops.iter().enumerate() {
                if l.body.contains(id) {
                    count += 1;
                    if best.is_none_or(|x: usize| l.body.count() < loops[x].body.count()) {
                        best = Some(li);
                    }
                }
            }
            depth[b] = count;
            innermost[b] = best.map(|x| x as u32);
        }

        LoopForest { loops, depth, innermost, demoted, irreducible_edges: irreducible_edges.len() }
    }

    /// The loops, unordered (use [`NaturalLoop::depth`] for nesting).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loop-nesting depth of `b` (0 outside any loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Index into [`LoopForest::loops`] of the innermost loop containing
    /// `b`.
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()].map(|x| x as usize)
    }

    /// Whether `b` belongs to an irreducible cycle (optimizations must
    /// not assume a dominating header exists).
    pub fn is_demoted(&self, b: BlockId) -> bool {
        self.demoted[b.index()]
    }

    /// Number of DFS retreating edges whose target did not dominate the
    /// source — the raw irreducibility count.
    pub fn irreducible_edges(&self) -> usize {
        self.irreducible_edges
    }

    /// The deepest loop nesting in the routine.
    pub fn max_depth(&self) -> u32 {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }
}

/// Tarjan strongly-connected components; returns the component index per
/// node.
fn sccs(succs: &[Vec<BlockId>]) -> Vec<usize> {
    let n = succs.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut comp = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut ncomp = 0usize;
    // Iterative Tarjan with an explicit call frame per node.
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        frames.push((root as u32, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (x, ref mut i)) = frames.last_mut() {
            let xi = x as usize;
            if *i < succs[xi].len() {
                let y = succs[xi][*i].index();
                *i += 1;
                if index[y] == u32::MAX {
                    index[y] = next;
                    low[y] = next;
                    next += 1;
                    stack.push(y as u32);
                    on_stack[y] = true;
                    frames.push((y as u32, 0));
                } else if on_stack[y] {
                    low[xi] = low[xi].min(index[y]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[xi]);
                }
                if low[xi] == index[xi] {
                    loop {
                        let y = stack.pop().expect("scc stack") as usize;
                        on_stack[y] = false;
                        comp[y] = ncomp;
                        if y == xi {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::{AluOp, BranchCond, Reg};
    use spike_program::{Program, ProgramBuilder};

    fn forest(program: &Program, name: &str) -> (RoutineCfg, LoopForest) {
        let cfg = RoutineCfg::build(program, program.routine_by_name(name).unwrap());
        let dom = DomTree::dominators_linked(&cfg);
        let f = LoopForest::build(&cfg, &dom);
        (cfg, f)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).put_int().halt();
        let p = b.build().unwrap();
        let (_, f) = forest(&p, "main");
        assert!(f.loops().is_empty());
        assert_eq!(f.max_depth(), 0);
    }

    #[test]
    fn counted_loop_is_detected() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        let p = b.build().unwrap();
        let (cfg, f) = forest(&p, "main");
        assert_eq!(f.loops().len(), 1);
        let l = &f.loops()[0];
        assert!(!l.irreducible);
        assert_eq!(l.depth, 1);
        assert_eq!(l.body.count(), 1);
        assert_eq!(l.back_edges, vec![l.header]);
        assert_eq!(f.depth_of(l.header), 1);
        assert_eq!(f.depth_of(cfg.entries()[0]), 0);
    }

    #[test]
    fn nested_loops_get_increasing_depth() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 3)
            .label("outer")
            .lda(Reg::A1, Reg::ZERO, 3)
            .label("inner")
            .op_imm(AluOp::Sub, Reg::A1, 1, Reg::A1)
            .cond(BranchCond::Ne, Reg::A1, "inner")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "outer")
            .halt();
        let p = b.build().unwrap();
        let (_, f) = forest(&p, "main");
        assert_eq!(f.loops().len(), 2);
        let inner = f.loops().iter().find(|l| l.depth == 2).expect("inner loop");
        let outer = f.loops().iter().find(|l| l.depth == 1).expect("outer loop");
        assert!(outer.body.count() > inner.body.count());
        assert!(outer.body.contains(inner.header));
        assert_eq!(inner.parent, f.loops().iter().position(|l| l.depth == 1));
        assert_eq!(f.max_depth(), 2);
    }

    #[test]
    fn loop_through_a_call_stays_connected() {
        // A dispatch-style loop whose body calls out: the execution
        // graph's call→return arc keeps the cycle intact.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 5)
            .label("top")
            .call("f")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "top")
            .halt();
        b.routine("f").lda(Reg::V0, Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let (cfg, f) = forest(&p, "main");
        assert_eq!(f.loops().len(), 1);
        let l = &f.loops()[0];
        assert!(!l.irreducible);
        // Both the call block and the return block are in the body.
        assert!(l.body.count() >= 2, "{:?}", l);
        let call_block = cfg.call_blocks().next().expect("call block");
        assert!(l.body.contains(call_block));
    }

    #[test]
    fn irreducible_cycle_is_demoted() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::A0)
            .cond(BranchCond::Eq, Reg::A0, "h2")
            .label("h1")
            .def(Reg::T0)
            .cond(BranchCond::Eq, Reg::T0, "h2")
            .br("out")
            .label("h2")
            .def(Reg::T1)
            .cond(BranchCond::Eq, Reg::T1, "h1")
            .label("out")
            .put_int()
            .halt();
        let p = b.build().unwrap();
        let (cfg, f) = forest(&p, "main");
        assert!(f.irreducible_edges() > 0);
        // The two-header cycle produced no reducible natural loop; every
        // block on the cycle is demoted.
        assert!(f.loops().iter().all(|l| l.irreducible));
        let demoted =
            (0..cfg.blocks().len()).map(BlockId::from_index).filter(|&x| f.is_demoted(x)).count();
        assert!(demoted >= 2, "cycle blocks are demoted, got {demoted}");
    }

    #[test]
    fn self_loop_and_outer_loop_share_blocks() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 2)
            .label("outer")
            .def(Reg::T0)
            .label("spin")
            .op_imm(AluOp::Sub, Reg::T0, 1, Reg::T0)
            .cond(BranchCond::Ne, Reg::T0, "spin")
            .op_imm(AluOp::Sub, Reg::A0, 1, Reg::A0)
            .cond(BranchCond::Ne, Reg::A0, "outer")
            .halt();
        let p = b.build().unwrap();
        let (_, f) = forest(&p, "main");
        assert_eq!(f.loops().len(), 2);
        let spin = f.loops().iter().find(|l| l.body.count() == 1).expect("self loop");
        assert_eq!(spin.depth, 2);
        assert_eq!(f.depth_of(spin.header), 2);
    }
}
