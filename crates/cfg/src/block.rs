//! Basic blocks and their terminators.

use std::fmt;

use spike_isa::{CloneExact, HeapSize, RegSet};
use spike_program::RoutineId;

/// Identifies a basic block within one [`crate::RoutineCfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates an id from a dense index.
    #[inline]
    pub const fn from_index(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    /// The dense index of this block.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl HeapSize for BlockId {
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// The callee(s) of a call-terminated block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CallTarget {
    /// Direct call to a known routine entrance (`bsr`).
    Direct(RoutineId, usize),
    /// Indirect call whose possible targets were recovered from the image.
    IndirectKnown(Vec<(RoutineId, usize)>),
    /// Indirect call to an unknown target; the analysis applies the
    /// calling-standard assumptions of §3.5.
    IndirectUnknown,
    /// Indirect call to an external target with compiler-provided exact
    /// register effects (§3.5's suggested extension).
    IndirectHinted {
        /// Registers the call may read.
        used: RegSet,
        /// Registers the call must write.
        defined: RegSet,
        /// Registers the call may overwrite.
        killed: RegSet,
    },
}

impl HeapSize for CallTarget {
    fn heap_bytes(&self) -> usize {
        match self {
            CallTarget::IndirectKnown(v) => {
                v.capacity() * std::mem::size_of::<(RoutineId, usize)>()
            }
            _ => 0,
        }
    }
}

impl CloneExact for CallTarget {
    fn clone_exact(&self) -> CallTarget {
        match self {
            CallTarget::IndirectKnown(v) => CallTarget::IndirectKnown(v.clone_exact()),
            other => other.clone(),
        }
    }
}

/// How a basic block ends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TermKind {
    /// Control continues into the next block (the block ended only because
    /// its successor starts at a branch target or entrance).
    FallThrough,
    /// Conditional branch; successors are the fall-through block and the
    /// branch target.
    CondBranch,
    /// Unconditional branch.
    Branch,
    /// Multiway branch through a jump table extracted from the image
    /// (§3.5); successors are the table targets.
    MultiwayJump,
    /// Indirect jump whose targets could not be recovered; all registers
    /// are assumed live at the unknown target (§3.5). No intraprocedural
    /// successors.
    UnknownJump,
    /// Call; intraprocedural control resumes at `return_to` *after the
    /// callee runs*. The return point is deliberately **not** a successor:
    /// paths from the call to the return point exist only through the
    /// callee, which is exactly what the PSG call-return edge models.
    Call {
        /// Who the call may target.
        target: CallTarget,
        /// The block at the call's fall-through address (the return
        /// point), or `None` if the call never returns into this routine
        /// (a call in the final block position cannot be assembled, so
        /// this is always `Some` for validated programs).
        return_to: Option<BlockId>,
    },
    /// Return from the routine; an exit.
    Ret,
    /// Program termination.
    Halt,
}

impl HeapSize for TermKind {
    fn heap_bytes(&self) -> usize {
        match self {
            TermKind::Call { target, .. } => target.heap_bytes(),
            _ => 0,
        }
    }
}

impl CloneExact for TermKind {
    fn clone_exact(&self) -> TermKind {
        match self {
            TermKind::Call { target, return_to } => {
                TermKind::Call { target: target.clone_exact(), return_to: *return_to }
            }
            other => other.clone(),
        }
    }
}

/// A basic block: a maximal single-entry straight-line instruction
/// sequence, additionally ended at call instructions (the paper's block
/// convention).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) succs: Vec<BlockId>,
    pub(crate) preds: Vec<BlockId>,
    pub(crate) def: RegSet,
    pub(crate) ubd: RegSet,
    pub(crate) term: TermKind,
}

impl BasicBlock {
    /// Word address of the first instruction.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the block holds no instructions (never true once built).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last word address.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Word address of the terminator (last instruction).
    #[inline]
    pub fn term_addr(&self) -> u32 {
        self.start + self.len - 1
    }

    /// Intraprocedural successor blocks. Call blocks have none (see
    /// [`TermKind::Call`]); their return point is reachable only through
    /// the callee.
    #[inline]
    pub fn succs(&self) -> &[BlockId] {
        &self.succs
    }

    /// Intraprocedural predecessor blocks.
    #[inline]
    pub fn preds(&self) -> &[BlockId] {
        &self.preds
    }

    /// Registers defined by the block (the paper's `DEF` set).
    #[inline]
    pub fn def(&self) -> RegSet {
        self.def
    }

    /// Registers used before being defined in the block (the paper's
    /// `UBD` set).
    #[inline]
    pub fn ubd(&self) -> RegSet {
        self.ubd
    }

    /// How the block ends.
    #[inline]
    pub fn term(&self) -> &TermKind {
        &self.term
    }

    /// Whether the block ends in a call.
    #[inline]
    pub fn is_call_block(&self) -> bool {
        matches!(self.term, TermKind::Call { .. })
    }

    /// Whether the block is a routine exit (`ret`).
    #[inline]
    pub fn is_exit(&self) -> bool {
        matches!(self.term, TermKind::Ret)
    }
}

impl HeapSize for BasicBlock {
    fn heap_bytes(&self) -> usize {
        self.succs.heap_bytes() + self.preds.heap_bytes() + self.term.heap_bytes()
    }
}

impl CloneExact for BasicBlock {
    fn clone_exact(&self) -> BasicBlock {
        BasicBlock {
            start: self.start,
            len: self.len,
            succs: self.succs.clone_exact(),
            preds: self.preds.clone_exact(),
            def: self.def,
            ubd: self.ubd,
            term: self.term.clone_exact(),
        }
    }
}

spike_isa::impl_clone_exact_for_copy!(BlockId);
