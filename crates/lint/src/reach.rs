//! Unreachable-code warnings: routines no known call path reaches, and
//! blocks no intra-routine path from an entrance reaches.

use spike_callgraph::CallGraph;
use spike_core::Analysis;
use spike_program::{Program, RoutineId};

use crate::diag::{Check, Diagnostic, LintReport};
use crate::graph::reachable_from_entrances;

/// Flags routines not reachable in the may-call graph from the program
/// entry or any exported routine. Unknown-target indirect calls could in
/// principle reach anything, so this stays a warning: "no *known* call
/// path".
pub(crate) fn check_routines(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    let cg = CallGraph::build(program, &analysis.cfg);
    let n = program.routines().len();
    let mut reached = vec![false; n];
    let mut stack: Vec<RoutineId> = Vec::new();
    let seed = |rid: RoutineId, reached: &mut Vec<bool>, stack: &mut Vec<RoutineId>| {
        if !reached[rid.index()] {
            reached[rid.index()] = true;
            stack.push(rid);
        }
    };
    seed(program.entry(), &mut reached, &mut stack);
    for (rid, r) in program.iter() {
        if r.exported() {
            seed(rid, &mut reached, &mut stack);
        }
    }
    while let Some(rid) = stack.pop() {
        for &callee in cg.callees(rid) {
            if !reached[callee.index()] {
                reached[callee.index()] = true;
                stack.push(callee);
            }
        }
    }
    for (rid, r) in program.iter() {
        if !reached[rid.index()] {
            let mut d = Diagnostic::new(
                Check::UnreachableRoutine,
                r.name(),
                "no known call path from the program entry or an exported routine \
                 reaches this routine",
            );
            d.addr = Some(r.addr());
            report.push(d);
        }
    }
}

/// Flags blocks no path from a routine entrance reaches. Routines with an
/// unknown-target jump are skipped: the jump may land on any block.
pub(crate) fn check_blocks(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        if !cfg.unknown_jumps().is_empty() {
            continue;
        }
        let live = reachable_from_entrances(cfg);
        for (bi, block) in cfg.blocks().iter().enumerate() {
            if !live[bi] {
                let mut d = Diagnostic::new(
                    Check::UnreachableBlock,
                    routine.name(),
                    "no path from a routine entrance reaches this block",
                );
                d.addr = Some(block.start());
                report.push(d);
            }
        }
    }
}
