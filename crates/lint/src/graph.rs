//! Block-level reachability helpers shared by the checks.
//!
//! The CFG deliberately omits call → return-point successor edges (paths
//! from a call to its return point exist only through the callee, which is
//! what the PSG models). For reachability questions a checker asks —
//! "can execution get here?", "can this point still reach an exit?" —
//! calls that return must be traversable, so both directions add the
//! call-return edges back in.

use spike_cfg::{BlockId, RoutineCfg, TermKind};

/// The call-return edges of `cfg`: one `(call block, return block)` pair
/// per call that returns into the routine.
pub(crate) fn call_return_edges(cfg: &RoutineCfg) -> Vec<(BlockId, BlockId)> {
    cfg.call_blocks()
        .filter_map(|b| match cfg.block(b).term() {
            TermKind::Call { return_to: Some(rt), .. } => Some((b, *rt)),
            _ => None,
        })
        .collect()
}

/// Blocks reachable from any routine entrance, traversing normal
/// successors and call-return edges.
pub(crate) fn reachable_from_entrances(cfg: &RoutineCfg) -> Vec<bool> {
    let n = cfg.blocks().len();
    let mut call_ret = vec![None; n];
    for (c, rt) in call_return_edges(cfg) {
        call_ret[c.index()] = Some(rt);
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<BlockId> = Vec::new();
    for &b in cfg.entries() {
        if !seen[b.index()] {
            seen[b.index()] = true;
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        let visit = |s: BlockId, seen: &mut Vec<bool>, stack: &mut Vec<BlockId>| {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        };
        for &s in cfg.block(b).succs() {
            visit(s, &mut seen, &mut stack);
        }
        if let Some(rt) = call_ret[b.index()] {
            visit(rt, &mut seen, &mut stack);
        }
    }
    seen
}

/// Blocks from which some exit (`ret`) is reachable, traversing edges
/// backward (including call-return edges; a call is assumed to return).
pub(crate) fn reaches_an_exit(cfg: &RoutineCfg) -> Vec<bool> {
    let n = cfg.blocks().len();
    let mut rev_call_ret: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (c, rt) in call_return_edges(cfg) {
        rev_call_ret[rt.index()].push(c);
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<BlockId> = Vec::new();
    for &b in cfg.exits() {
        if !seen[b.index()] {
            seen[b.index()] = true;
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        for &p in cfg.block(b).preds().iter().chain(&rev_call_ret[b.index()]) {
            if !seen[p.index()] {
                seen[p.index()] = true;
                stack.push(p);
            }
        }
    }
    seen
}
