//! Hand-rolled JSON emission for [`LintReport`] (the build is offline, so
//! no serialization dependency is available — the format is small enough
//! to write directly and is pinned by a golden test). String escaping is
//! the shared [`spike_core::json`] writer, so the whole workspace has one
//! escaping bug surface.

use std::fmt::Write as _;

use spike_core::json::escape_into as escape;

use crate::diag::{Diagnostic, LintReport};

fn finding(d: &Diagnostic, out: &mut String) {
    out.push_str("{\"check\":");
    escape(d.check.name(), out);
    out.push_str(",\"severity\":");
    escape(d.severity.name(), out);
    out.push_str(",\"routine\":");
    escape(&d.routine, out);
    out.push_str(",\"addr\":");
    match d.addr {
        Some(a) => {
            let _ = write!(out, "{a}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"reg\":");
    match d.reg {
        Some(r) => escape(&r.to_string(), out),
        None => out.push_str("null"),
    }
    out.push_str(",\"slot\":");
    match d.slot {
        Some(off) => {
            let _ = write!(out, "{off}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"message\":");
    escape(&d.message, out);
    out.push_str(",\"witness\":[");
    for (i, a) in d.witness.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{a}");
    }
    out.push_str("],\"note\":");
    match &d.note {
        Some(n) => escape(n, out),
        None => out.push_str("null"),
    }
    out.push('}');
}

impl LintReport {
    /// Renders the report as a single JSON object. `image` is the path the
    /// program was loaded from, when one exists.
    ///
    /// Schema (stable; drift is caught by a golden test and the CI dogfood
    /// job): `{tool, version, image, summary: {errors, warnings},
    /// findings: [{check, severity, routine, addr, reg, slot, message,
    /// witness, note}]}`.
    pub fn to_json(&self, image: Option<&str>) -> String {
        let mut out = String::new();
        out.push_str("{\"tool\":\"spike-lint\",\"version\":");
        escape(env!("CARGO_PKG_VERSION"), &mut out);
        out.push_str(",\"image\":");
        match image {
            Some(p) => escape(p, &mut out),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"summary\":{{\"errors\":{},\"warnings\":{}}},\"findings\":[",
            self.errors(),
            self.warnings()
        );
        for (i, d) in self.diagnostics().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            finding(d, &mut out);
        }
        out.push_str("]}");
        out
    }
}
