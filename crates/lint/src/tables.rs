//! Jump-table sanity checks. Image validation already rejects targets
//! outside the jumping routine; what remains representable — and worth
//! flagging — is a table with no targets at all (the multiway jump has no
//! successors, so everything after it silently disappears from the CFG)
//! and a table listing the same target repeatedly.

use std::collections::BTreeMap;

use spike_program::Program;

use crate::diag::{Check, Diagnostic, LintReport};

pub(crate) fn check(program: &Program, report: &mut LintReport) {
    for (&addr, targets) in program.jump_tables() {
        let name = program
            .routine_containing(addr)
            .map(|rid| program.routine(rid).name().to_string())
            .unwrap_or_default();
        if targets.is_empty() {
            let mut d = Diagnostic::new(
                Check::EmptyJumpTable,
                name,
                format!(
                    "the jump table for the multiway jump at {addr:#x} is empty: \
                     the jump has no successors and code after it is lost"
                ),
            );
            d.addr = Some(addr);
            report.push(d);
            continue;
        }
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for &t in targets {
            *counts.entry(t).or_insert(0) += 1;
        }
        for (t, k) in counts {
            if k > 1 {
                let mut d = Diagnostic::new(
                    Check::DuplicateJumpTargets,
                    name.clone(),
                    format!("the jump table at {addr:#x} lists target {t:#x} {k} times"),
                );
                d.addr = Some(addr);
                report.push(d);
            }
        }
    }
}
