//! Diagnostic types: checks, severities, findings and the report.

use std::fmt;

use spike_isa::Reg;

/// How serious a finding is. Error-severity findings make `spike lint`
/// exit nonzero; warnings are informational.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A defect: the program can read garbage or violate the calling
    /// standard on some path.
    Error,
    /// A code-quality observation with no soundness impact.
    Warning,
}

impl Severity {
    /// The lowercase name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The catalogue of checks `spike-lint` runs. See DESIGN.md for the facts
/// each check consumes and its severity rationale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Check {
    /// A register may be read before any definition reaches the read.
    UninitRead,
    /// A callee-saved register is overwritten on a path to an exit without
    /// a matching save/restore (§3.4).
    CalleeSavedClobber,
    /// A register write no valid path reads (Figure 1(a) as a diagnostic).
    DeadStore,
    /// An argument register set for a call that does not use it
    /// (Figure 1(b) as a diagnostic).
    DeadArgument,
    /// A routine no known call path from the entry or an exported routine
    /// reaches.
    UnreachableRoutine,
    /// A basic block no intra-routine path from an entrance reaches.
    UnreachableBlock,
    /// A multiway jump whose recovered jump table has no targets.
    EmptyJumpTable,
    /// A jump table listing the same target more than once.
    DuplicateJumpTargets,
    /// The image failed to load or validate.
    MalformedImage,
    /// A stack slot may be read before any store reaches it (the slot
    /// analogue of [`Check::UninitRead`]).
    UninitStackRead,
    /// An SP-relative access outside the live frame region
    /// `[sp, entry_sp)` — reads caller memory or below-SP garbage.
    OutOfFrameAccess,
    /// A stack store no valid path reads before the slot is popped
    /// (the slot analogue of [`Check::DeadStore`]).
    DeadStackStore,
}

impl Check {
    /// The kebab-case check id used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Check::UninitRead => "uninit-read",
            Check::CalleeSavedClobber => "callee-saved-clobber",
            Check::DeadStore => "dead-store",
            Check::DeadArgument => "dead-argument",
            Check::UnreachableRoutine => "unreachable-routine",
            Check::UnreachableBlock => "unreachable-block",
            Check::EmptyJumpTable => "empty-jump-table",
            Check::DuplicateJumpTargets => "duplicate-jump-targets",
            Check::MalformedImage => "malformed-image",
            Check::UninitStackRead => "uninit-stack-read",
            Check::OutOfFrameAccess => "out-of-frame-access",
            Check::DeadStackStore => "dead-stack-store",
        }
    }

    /// The default severity of findings from this check.
    pub fn severity(self) -> Severity {
        match self {
            Check::UninitRead
            | Check::CalleeSavedClobber
            | Check::EmptyJumpTable
            | Check::MalformedImage
            | Check::UninitStackRead
            | Check::OutOfFrameAccess => Severity::Error,
            Check::DeadStore
            | Check::DeadArgument
            | Check::UnreachableRoutine
            | Check::UnreachableBlock
            | Check::DuplicateJumpTargets
            | Check::DeadStackStore => Severity::Warning,
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which check produced the finding.
    pub check: Check,
    /// Its severity (usually [`Check::severity`], but a check may demote
    /// itself when the CFG is too uncertain to be confident).
    pub severity: Severity,
    /// The routine the finding is in, or an empty string for whole-image
    /// findings.
    pub routine: String,
    /// The word address of the offending instruction, if one exists.
    pub addr: Option<u32>,
    /// The register involved, if one is.
    pub reg: Option<Reg>,
    /// For stack-slot findings: the entry-SP-relative byte offset of the
    /// slot involved.
    pub slot: Option<i64>,
    /// Human-readable description.
    pub message: String,
    /// A path witnessing the finding: block-start addresses from a routine
    /// entrance to the offending instruction. Empty when no path is
    /// meaningful (e.g. unreachable code).
    pub witness: Vec<u32>,
    /// An optional clarifying note (e.g. the missing-return-value case of
    /// `uninit-read` names the call expected to produce the value).
    pub note: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic for `check` with its default severity.
    pub fn new(check: Check, routine: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            check,
            severity: check.severity(),
            routine: routine.into(),
            addr: None,
            reg: None,
            slot: None,
            message: message.into(),
            witness: Vec::new(),
            note: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.check)?;
        if !self.routine.is_empty() {
            write!(f, " {}", self.routine)?;
        }
        if let Some(addr) = self.addr {
            write!(f, "+{addr:#x}")?;
        }
        write!(f, ": {}", self.message)?;
        if !self.witness.is_empty() {
            let path: Vec<String> = self.witness.iter().map(|a| format!("{a:#x}")).collect();
            write!(f, " (path: {})", path.join(" -> "))?;
        }
        if let Some(note) = &self.note {
            write!(f, "; note: {note}")?;
        }
        Ok(())
    }
}

/// All findings over one program, errors first.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub(crate) fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sorts findings errors-first, then by routine and address, so output
    /// is deterministic and the serious findings lead.
    pub(crate) fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let rank = |d: &Diagnostic| (d.severity == Severity::Warning) as u8;
            rank(a)
                .cmp(&rank(b))
                .then_with(|| a.routine.cmp(&b.routine))
                .then_with(|| a.addr.cmp(&b.addr))
                .then_with(|| a.check.name().cmp(b.check.name()))
        });
    }

    /// All findings, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// `true` when there are no error-severity findings (warnings are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{} error(s), {} warning(s)", self.errors(), self.warnings())
    }
}
