//! # spike-lint
//!
//! Interprocedural static checks over analyzed binaries — the first
//! consumer of the paper's dataflow facts that is not an optimizer pass.
//! The same meet-over-all-valid-paths summaries that justify deleting a
//! dead store (Figure 1) also justify *diagnosing*: a use no definition
//! reaches, a callee-saved register that leaks a write past an exit, a
//! store no valid path reads.
//!
//! Check catalogue (severities in parentheses; see DESIGN.md for the fact
//! dependencies):
//!
//! * `uninit-read` (error) — a register may be read before any definition
//!   reaches it, including the missing-return-value special case;
//! * `callee-saved-clobber` (error) — a routine overwrites a
//!   callee-saved register on a returning path without the §3.4
//!   save/restore pattern;
//! * `dead-store` / `dead-argument` (warning) — writes no valid path
//!   reads;
//! * `unreachable-routine` / `unreachable-block` (warning);
//! * `empty-jump-table` (error) / `duplicate-jump-targets` (warning);
//! * `malformed-image` (error) — the image failed to load or validate;
//! * `uninit-stack-read` (error) / `out-of-frame-access` (error) /
//!   `dead-stack-store` (warning) — the stack-slot analogues, driven by
//!   the interprocedural stack-slot analysis (`spike_core::StackAnalysis`).
//!
//! The error-severity checks are grounded by a simulator oracle:
//! `spike_sim::run_shadow` tracks register definedness with the identical
//! use/def model (`run_shadow_slots` adds per-slot stack definedness for
//! the stack checks), and proptests assert lint-clean programs never
//! trap.
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main").use_reg(Reg::T0).halt(); // t0 read, never written
//! let program = b.build()?;
//!
//! let report = spike_lint::lint(&program);
//! assert_eq!(report.errors(), 1);
//! let d = &report.diagnostics()[0];
//! assert_eq!(d.check, spike_lint::Check::UninitRead);
//! assert_eq!(d.reg, Some(Reg::T0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use spike_cfg::ProgramCfg;
use spike_core::{Analysis, ProgramSummary};
use spike_program::{Program, RoutineId};

mod clobber;
mod dead;
mod diag;
mod graph;
mod json;
mod reach;
mod stack;
mod tables;
mod uninit;

pub use diag::{Check, Diagnostic, LintReport, Severity};

/// Which checks to run. The default runs everything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LintOptions {
    /// Uninitialized-register-read check (error severity).
    pub uninit: bool,
    /// Callee-saved-clobber check (error severity).
    pub clobber: bool,
    /// Dead-store / dead-argument warnings.
    pub dead: bool,
    /// Unreachable-routine / unreachable-block warnings.
    pub reach: bool,
    /// Jump-table checks.
    pub tables: bool,
    /// Stack-slot checks: uninit-stack-read / out-of-frame-access
    /// (errors) and dead-stack-store (warning).
    pub stack: bool,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            uninit: true,
            clobber: true,
            dead: true,
            reach: true,
            tables: true,
            stack: true,
        }
    }
}

/// Runs every check over `program`, analyzing it first.
pub fn lint(program: &Program) -> LintReport {
    lint_with(program, &spike_core::analyze(program), &LintOptions::default())
}

/// Runs the selected checks over `program` using an existing analysis
/// (which must have been computed over this exact program).
pub fn lint_with(program: &Program, analysis: &Analysis, options: &LintOptions) -> LintReport {
    let mut report = LintReport::default();
    if options.uninit {
        uninit::check(program, analysis, &mut report);
    }
    if options.clobber {
        clobber::check(program, analysis, &mut report);
    }
    if options.dead {
        dead::check(program, analysis, &mut report);
    }
    if options.reach {
        reach::check_routines(program, analysis, &mut report);
        reach::check_blocks(program, analysis, &mut report);
    }
    if options.tables {
        tables::check(program, &mut report);
    }
    if options.stack {
        stack::check(program, analysis, &mut report);
    }
    report.finish();
    report
}

/// Runs the uninitialized-read check for a single routine on demand.
///
/// The must-defined fixpoint converges over `routine`'s transitive
/// caller closure only, and only `routine`'s reads are flagged — the
/// findings are exactly the whole-program [`lint_with`] uninit findings
/// for that routine. `summary` must hold converged `call-defined` facts
/// for every call site in the closure; the natural producer is
/// [`spike_core::AnalysisCache::with_uninit_facts`], which ensures
/// precisely that cone:
///
/// ```
/// use spike_isa::Reg;
/// use spike_program::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.routine("main").call("f").use_reg(Reg::V0).halt(); // f defines v0?
/// b.routine("f").ret(); // no — the read of v0 is garbage
/// let program = b.build()?;
/// let main = program.routine_by_name("main").unwrap();
///
/// let mut cache = spike_core::AnalysisCache::new(spike_core::AnalysisOptions::default());
/// let (report, _) = cache.with_uninit_facts(&program, main, |cfg, summary| {
///     spike_lint::uninit_routine(&program, cfg, summary, main)
/// });
/// assert_eq!(report.errors(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn uninit_routine(
    program: &Program,
    cfg: &ProgramCfg,
    summary: &ProgramSummary,
    routine: RoutineId,
) -> LintReport {
    let mut report = LintReport::default();
    uninit::check_routine(program, cfg, summary, routine, &mut report);
    report.finish();
    report
}

/// A report holding a single `malformed-image` error — used by callers
/// whose image fails to load or validate before any check can run.
pub fn malformed_image(message: impl Into<String>) -> LintReport {
    let mut report = LintReport::default();
    report.push(Diagnostic::new(Check::MalformedImage, String::new(), message));
    report.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;

    fn findings(report: &LintReport, check: Check) -> Vec<&Diagnostic> {
        report.diagnostics().iter().filter(|d| d.check == check).collect()
    }

    #[test]
    fn uninitialized_read_is_flagged_with_a_witness() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T1).use_reg(Reg::T0).halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let u = findings(&r, Check::UninitRead);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reg, Some(Reg::T0));
        assert_eq!(u[0].severity, Severity::Error);
        let main_addr = p.routine(p.entry()).addr();
        assert_eq!(u[0].addr, Some(main_addr + 1));
        assert!(!u[0].witness.is_empty());
    }

    #[test]
    fn defined_reads_are_clean() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).use_reg(Reg::T0).halt();
        let p = b.build().unwrap();
        assert!(findings(&lint(&p), Check::UninitRead).is_empty());
    }

    #[test]
    fn callee_must_defs_cover_reads_after_the_call() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").use_reg(Reg::V0).halt();
        b.routine("f").def(Reg::V0).ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        assert!(findings(&r, Check::UninitRead).is_empty());
        assert!(r.is_clean());
    }

    #[test]
    fn partial_definition_across_a_join_is_flagged() {
        // v0 is defined on the fall-through path only; the branch path
        // reaches the use with v0 undefined.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .cond(spike_isa::BranchCond::Eq, Reg::T0, "skip")
            .def(Reg::V0)
            .label("skip")
            .use_reg(Reg::V0)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let u = findings(&r, Check::UninitRead);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reg, Some(Reg::V0));
    }

    #[test]
    fn missing_return_value_names_the_callee() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").use_reg(Reg::V0).halt();
        b.routine("f").ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        let u = findings(&r, Check::UninitRead);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reg, Some(Reg::V0));
        let note = u[0].note.as_deref().expect("missing-return-value note");
        assert!(note.contains("call to f"), "note was: {note}");
    }

    #[test]
    fn callee_saved_clobber_is_flagged_at_its_origin() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f").def(Reg::S0).ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        let c = findings(&r, Check::CalleeSavedClobber);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].routine, "f");
        assert_eq!(c[0].reg, Some(Reg::S0));
        assert_eq!(c[0].severity, Severity::Error);
    }

    #[test]
    fn saved_and_restored_registers_are_exempt() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::S0, Reg::SP, 0)
            .def(Reg::S0)
            .load(Reg::S0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        assert!(findings(&lint(&p), Check::CalleeSavedClobber).is_empty());
    }

    #[test]
    fn an_alternate_entrance_that_skips_the_save_voids_the_exemption() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::S0, Reg::SP, 0)
            .def(Reg::S0)
            .label("alt")
            .alt_entry("alt")
            .load(Reg::S0, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        let c = findings(&r, Check::CalleeSavedClobber);
        assert!(!c.is_empty(), "entering at `alt` restores garbage into the caller's s0");
        assert!(c.iter().all(|d| d.reg == Some(Reg::S0)));
    }

    #[test]
    fn the_entry_routine_is_exempt_from_the_clobber_check() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::S0).halt();
        let p = b.build().unwrap();
        assert!(findings(&lint(&p), Check::CalleeSavedClobber).is_empty());
    }

    #[test]
    fn dead_writes_warn_without_failing_the_lint() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let d = findings(&r, Check::DeadStore);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].reg, Some(Reg::T0));
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(r.is_clean());
    }

    #[test]
    fn an_unread_argument_register_warns_as_dead_argument() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::A0).call("f").halt();
        b.routine("f").ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        let d = findings(&r, Check::DeadArgument);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].reg, Some(Reg::A0));
    }

    #[test]
    fn uncalled_routines_and_skipped_blocks_warn() {
        let mut b = ProgramBuilder::new();
        b.routine("main").br("end").def(Reg::T0).label("end").halt();
        b.routine("orphan").ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        let routines = findings(&r, Check::UnreachableRoutine);
        assert_eq!(routines.len(), 1);
        assert_eq!(routines[0].routine, "orphan");
        let blocks = findings(&r, Check::UnreachableBlock);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].routine, "main");
    }

    #[test]
    fn exported_routines_count_as_reachable_roots() {
        let mut b = ProgramBuilder::new();
        b.routine("main").halt();
        b.routine("api").export().ret();
        let p = b.build().unwrap();
        assert!(findings(&lint(&p), Check::UnreachableRoutine).is_empty());
    }

    #[test]
    fn jump_table_checks() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).switch(Reg::T0, &[]);
        let p = b.build().unwrap();
        let r = lint(&p);
        assert_eq!(findings(&r, Check::EmptyJumpTable).len(), 1);
        assert!(!r.is_clean());

        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).switch(Reg::T0, &["l", "l"]).label("l").halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        assert_eq!(findings(&r, Check::DuplicateJumpTargets).len(), 1);
        assert!(r.is_clean());
    }

    #[test]
    fn store_data_is_exempt_but_the_base_is_not() {
        // Storing an undefined register is the prologue save idiom; using
        // an undefined *base* is not.
        let mut b = ProgramBuilder::new();
        b.routine("main").store(Reg::S0, Reg::SP, 0).store(Reg::T0, Reg::T1, 0).halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let u = findings(&r, Check::UninitRead);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reg, Some(Reg::T1));
    }

    #[test]
    fn generated_executables_lint_clean() {
        for seed in 0..8 {
            let p = spike_synth::generate_executable(seed, 4);
            let r = lint(&p);
            assert!(
                r.is_clean(),
                "seed {seed}: {:?}",
                r.diagnostics()
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn injected_defects_are_flagged() {
        use spike_synth::DefectKind;
        for seed in 0..8 {
            let (p, d) =
                spike_synth::generate_executable_with_defect(seed, 4, DefectKind::UninitRead);
            let r = lint(&p);
            assert!(
                findings(&r, Check::UninitRead)
                    .iter()
                    .any(|f| f.routine == d.routine && f.reg == Some(d.reg)),
                "seed {seed}: injected uninit read of {} in {} not flagged",
                d.reg,
                d.routine
            );

            let (p, d) = spike_synth::generate_executable_with_defect(
                seed,
                4,
                DefectKind::CalleeSavedClobber,
            );
            let r = lint(&p);
            assert!(
                findings(&r, Check::CalleeSavedClobber)
                    .iter()
                    .any(|f| f.routine == d.routine && f.reg == Some(d.reg)),
                "seed {seed}: injected clobber of {} in {} not flagged",
                d.reg,
                d.routine
            );
        }
    }

    #[test]
    fn uninit_routine_matches_the_full_check() {
        use spike_synth::DefectKind;
        for seed in 0..4 {
            let (p, _) =
                spike_synth::generate_executable_with_defect(seed, 5, DefectKind::UninitRead);
            let analysis = spike_core::analyze(&p);
            let options = LintOptions {
                uninit: true,
                clobber: false,
                dead: false,
                reach: false,
                tables: false,
                stack: false,
            };
            let full = lint_with(&p, &analysis, &options);
            for (rid, r) in p.iter() {
                let solo = uninit_routine(&p, &analysis.cfg, &analysis.summary, rid);
                let expected: Vec<&Diagnostic> =
                    full.diagnostics().iter().filter(|d| d.routine == r.name()).collect();
                assert_eq!(
                    solo.diagnostics().iter().collect::<Vec<_>>(),
                    expected,
                    "seed {seed}: scoped uninit findings diverge for {}",
                    r.name()
                );
            }
        }
    }

    #[test]
    fn uninit_stack_read_is_flagged_with_slot_and_witness() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .cond(spike_isa::BranchCond::Eq, Reg::T0, "skip")
            .store(Reg::T0, Reg::SP, 8)
            .label("skip")
            .load(Reg::T1, Reg::SP, 8) // stored on one path only
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let u = findings(&r, Check::UninitStackRead);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].routine, "main");
        assert_eq!(u[0].slot, Some(-8));
        assert_eq!(u[0].severity, Severity::Error);
        assert!(!u[0].witness.is_empty());
        assert!(!r.is_clean());
    }

    #[test]
    fn dominating_store_keeps_the_stack_read_clean() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 8)
            .load(Reg::T1, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        assert!(findings(&r, Check::UninitStackRead).is_empty());
    }

    #[test]
    fn callee_initialization_covers_the_caller_read() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .call("init")
            .load(Reg::T1, Reg::SP, 0)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        b.routine("init").def(Reg::T0).store(Reg::T0, Reg::SP, 0).ret();
        let p = b.build().unwrap();
        let r = lint(&p);
        assert!(
            findings(&r, Check::UninitStackRead).is_empty(),
            "the callee's KILL summary initializes the caller slot: {r}"
        );
    }

    #[test]
    fn out_of_frame_access_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 24) // entry-SP+8: caller memory
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let o = findings(&r, Check::OutOfFrameAccess);
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].slot, Some(8));
        assert_eq!(o[0].severity, Severity::Error);
    }

    #[test]
    fn dead_stack_store_warns() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .def(Reg::T0)
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::T0, Reg::SP, 0) // never read
            .store(Reg::T0, Reg::SP, 8)
            .load(Reg::T1, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        let d = findings(&r, Check::DeadStackStore);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].slot, Some(-16));
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(r.is_clean());
    }

    #[test]
    fn escaped_frames_produce_no_stack_findings() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T0, Reg::SP, 0) // SP leaks: frame escapes
            .load(Reg::T1, Reg::SP, 8) // would be uninit if judged
            .lda(Reg::SP, Reg::SP, 16)
            .halt();
        let p = b.build().unwrap();
        let r = lint(&p);
        assert!(findings(&r, Check::UninitStackRead).is_empty());
        assert!(findings(&r, Check::OutOfFrameAccess).is_empty());
    }

    #[test]
    fn generated_executables_are_stack_lint_clean() {
        for seed in 0..8 {
            let p = spike_synth::generate_executable(seed, 4);
            let r = lint(&p);
            let stack_errors: Vec<&Diagnostic> = r
                .diagnostics()
                .iter()
                .filter(|d| matches!(d.check, Check::UninitStackRead | Check::OutOfFrameAccess))
                .collect();
            assert!(stack_errors.is_empty(), "seed {seed}: {stack_errors:?}");
        }
    }

    #[test]
    fn json_output_has_the_stable_shape() {
        let mut b = ProgramBuilder::new();
        b.routine("main").use_reg(Reg::T0).halt();
        let p = b.build().unwrap();
        let json = lint(&p).to_json(Some("img.bin"));
        assert!(json.starts_with("{\"tool\":\"spike-lint\",\"version\":"));
        assert!(json.contains("\"image\":\"img.bin\""));
        assert!(json.contains("\"summary\":{\"errors\":1,\"warnings\":"));
        assert!(json.contains("\"check\":\"uninit-read\""));
        let malformed = malformed_image("bad magic");
        assert!(malformed.to_json(None).contains("\"check\":\"malformed-image\""));
        assert_eq!(malformed.errors(), 1);
    }
}
