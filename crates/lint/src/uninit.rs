//! The interprocedural must-defined analysis and the uninitialized-read
//! check.
//!
//! A read is flagged when, on some path the analysis cannot rule out, the
//! register was never written: the check computes the forward *must*-dual
//! of the paper's may-use sets — registers defined along **every** known
//! path — and flags uses outside it. Definedness is monotone (a write
//! never un-defines a register), so calls only add their must-defined
//! (`call-defined`) sets and the meet over paths is a plain intersection.
//!
//! Soundness contract (proptested at the workspace root): the set computed
//! here under-approximates the registers `spike_sim::run_shadow` considers
//! defined on any executed path, and the per-instruction use sets match
//! [`checked_uses`] exactly — so a lint-clean program can never trap
//! `Fault::UninitRead` in shadow mode.

use std::collections::VecDeque;

use spike_cfg::{BlockId, CallTarget, ProgramCfg, RoutineCfg, TermKind};
use spike_core::worklist::PriorityWorklist;
use spike_core::{Analysis, ProgramSummary};
use spike_isa::{CallingStandard, Instruction, Reg, RegSet};
use spike_program::{Program, RoutineId};

use crate::diag::{Check, Diagnostic, LintReport};

/// Registers defined before the program's first instruction: the machine
/// initializes the stack pointer and the return address, and the zero
/// registers always read as zero.
fn program_entry_defined() -> RegSet {
    RegSet::of(&[Reg::RA, Reg::SP, Reg::ZERO, Reg::FZERO])
}

/// Registers an external caller is assumed to have defined when entering
/// an exported routine: arguments, the callee-saved set it expects
/// preserved, and the linkage registers.
fn exported_entry_defined(std: &CallingStandard) -> RegSet {
    std.argument()
        | std.callee_saved()
        | RegSet::of(&[Reg::RA, Reg::SP, Reg::GP, Reg::ZERO, Reg::FZERO])
}

/// The registers an instruction must have defined to execute without
/// reading garbage. Store *data* is exempt: storing a register the routine
/// never wrote is the prologue save idiom (§3.4), not a consumption of its
/// value — `spike_sim::run_shadow` uses the identical rule.
pub(crate) fn checked_uses(insn: &Instruction) -> RegSet {
    match *insn {
        Instruction::Store { base, .. } => RegSet::singleton(base),
        _ => insn.uses(),
    }
}

/// The converged interprocedural must-defined solution.
pub(crate) struct MustDefined {
    /// Per routine, per entrance: registers defined on every known path
    /// into the entrance. `RegSet::ALL` (⊤) for entrances with no known
    /// callers — no path, vacuously everything.
    entry: Vec<Vec<RegSet>>,
    /// Per routine, per block: registers defined on every path to the
    /// block's first instruction.
    block_in: Vec<Vec<RegSet>>,
}

/// `call-defined` for each call block of `rid` (empty for non-call
/// blocks), i.e. the registers the callee must write before returning.
fn call_defined_per_block(
    cfg: &ProgramCfg,
    summary: &ProgramSummary,
    rid: RoutineId,
) -> Vec<RegSet> {
    let nb = cfg.routine_cfg(rid).blocks().len();
    (0..nb)
        .map(|i| {
            summary
                .call_site(cfg, rid, BlockId::from_index(i))
                .map_or(RegSet::EMPTY, |cs| cs.defined)
        })
        .collect()
}

/// One intra-routine forward pass to a local fixpoint, given the current
/// entrance values. Resets and refills `block_in[rid]`.
///
/// Driven by a [`PriorityWorklist`] in reverse postorder over the
/// definedness arcs (fall-through/branch successors plus the
/// call→return-point arc the CFG itself omits): most blocks see their
/// final predecessor facts on the first evaluation, and a change only
/// re-queues the blocks that actually read it. The fixpoint of the
/// monotone meet system is unique, so the result is identical to the
/// round-robin sweep this replaces.
fn intra(
    pcfg: &ProgramCfg,
    summary: &ProgramSummary,
    rid: RoutineId,
    entry: &[Vec<RegSet>],
    block_in: &mut [RegSet],
) {
    let cfg = pcfg.routine_cfg(rid);
    let nb = cfg.blocks().len();

    // The CFG has no call → return-point successor edges; definedness
    // flows through the callee, entering as `block out ∪ call-defined`.
    // `fwd` is the full reader relation, `call_ret` its call-arc inverse.
    let mut call_ret: Vec<Vec<BlockId>> = vec![Vec::new(); nb];
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (i, readers) in fwd.iter_mut().enumerate() {
        let block = cfg.block(BlockId::from_index(i));
        if let TermKind::Call { return_to: Some(rt), .. } = block.term() {
            call_ret[rt.index()].push(BlockId::from_index(i));
            readers.push(rt.index() as u32);
        }
        readers.extend(block.succs().iter().map(|s| s.index() as u32));
    }
    let cs_defined = call_defined_per_block(pcfg, summary, rid);

    let mut constraint = vec![RegSet::ALL; nb];
    for (e, &b) in cfg.entries().iter().enumerate() {
        constraint[b.index()] &= entry[rid.index()][e];
    }

    // Reverse postorder from the entrances; blocks unreachable along
    // definedness arcs still get evaluated, ranked after the rest.
    let mut rank = vec![u32::MAX; nb];
    let mut next = 0u32;
    let mut state = vec![0u8; nb];
    let mut postorder: Vec<u32> = Vec::with_capacity(nb);
    let mut dfs: Vec<(u32, u32)> = Vec::new();
    for &b in cfg.entries() {
        if state[b.index()] != 0 {
            continue;
        }
        state[b.index()] = 1;
        dfs.push((b.index() as u32, 0));
        while let Some(frame) = dfs.last_mut() {
            let (x, k) = (frame.0 as usize, frame.1 as usize);
            if k < fwd[x].len() {
                frame.1 += 1;
                let y = fwd[x][k] as usize;
                if state[y] == 0 {
                    state[y] = 1;
                    dfs.push((y as u32, 0));
                }
            } else {
                dfs.pop();
                postorder.push(x as u32);
            }
        }
    }
    for &x in postorder.iter().rev() {
        rank[x as usize] = next;
        next += 1;
    }
    for r in rank.iter_mut() {
        if *r == u32::MAX {
            *r = next;
            next += 1;
        }
    }

    block_in.fill(RegSet::ALL);
    let mut wl = PriorityWorklist::new(nb);
    for (i, &r) in rank.iter().enumerate() {
        wl.push(i, r);
    }
    while let Some(i) = wl.pop() {
        let block = cfg.block(BlockId::from_index(i));
        let mut acc = constraint[i];
        for &p in block.preds() {
            acc &= block_in[p.index()] | cfg.block(p).def();
        }
        for &c in &call_ret[i] {
            acc &= block_in[c.index()] | cfg.block(c).def() | cs_defined[c.index()];
        }
        if acc != block_in[i] {
            block_in[i] = acc;
            for &s in &fwd[i] {
                wl.push(s as usize, rank[s as usize]);
            }
        }
    }
}

/// Computes the must-defined solution: alternating intra-routine passes
/// with a re-meet of every callee entrance over its resolved call sites,
/// to a global fixpoint. Entrance sets start at their boundary
/// assumptions and only shrink, so termination is immediate from
/// monotonicity.
///
/// With `scope = Some(r)` the fixpoint is restricted to `r`'s transitive
/// *caller closure* — the only routines whose facts can flow into `r`'s
/// entrances. The restriction is exact for every routine in the closure:
/// the closure is caller-closed, so every call edge into a closure
/// routine originates inside it and all of its entrance meets are
/// applied; routines outside the closure simply keep their boundary
/// assumption on both sides of the convergence compare. Equivalently,
/// the restricted system is the projection of the full descending Kleene
/// iteration onto the closure, whose coordinates never read the dropped
/// ones. `block_in` outside the closure is meaningless (never computed)
/// and must not be read.
pub(crate) fn compute_scoped(
    program: &Program,
    cfg: &ProgramCfg,
    summary: &ProgramSummary,
    scope: Option<RoutineId>,
) -> MustDefined {
    let std = summary.calling_standard();
    let boundary: Vec<Vec<RegSet>> = program
        .iter()
        .map(|(rid, r)| {
            (0..r.entry_offsets().len())
                .map(|e| {
                    let mut v = RegSet::ALL;
                    if r.exported() {
                        v &= exported_entry_defined(std);
                    }
                    if rid == program.entry() && e == 0 {
                        v &= program_entry_defined();
                    }
                    v
                })
                .collect()
        })
        .collect();

    let mut entry = boundary.clone();
    let mut block_in: Vec<Vec<RegSet>> =
        cfg.cfgs().iter().map(|c| vec![RegSet::ALL; c.blocks().len()]).collect();

    // Callers-first order: entrance facts propagate down call chains in
    // few global passes.
    let callgraph = spike_callgraph::CallGraph::build(program, cfg);
    let mut order: Vec<RoutineId> = callgraph.sccs().bottom_up().concat();
    order.reverse();

    // Restrict the iteration to the target's caller closure.
    let in_scope: Option<Vec<bool>> = scope.map(|target| {
        let mut mask = vec![false; program.routines().len()];
        let mut stack = vec![target];
        mask[target.index()] = true;
        while let Some(r) = stack.pop() {
            for &c in callgraph.callers(r) {
                if !mask[c.index()] {
                    mask[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        mask
    });
    if let Some(mask) = &in_scope {
        order.retain(|r| mask[r.index()]);
    }

    loop {
        for &rid in &order {
            intra(cfg, summary, rid, &entry, &mut block_in[rid.index()]);
        }

        // Re-meet every entrance over its call edges. The value flowing
        // into the callee is the caller's definedness *at the moment the
        // callee starts*: block-in plus the caller block's own defs
        // (including `ra` from the call itself), without the callee's
        // effect. Unknown-target calls contribute no edge — their targets
        // keep their boundary assumption.
        let mut next = boundary.clone();
        for (rid, _) in program.iter() {
            if in_scope.as_ref().is_some_and(|m| !m[rid.index()]) {
                continue;
            }
            let rcfg = cfg.routine_cfg(rid);
            for b in rcfg.call_blocks() {
                let block = rcfg.block(b);
                let TermKind::Call { target, .. } = block.term() else { continue };
                let at_entry = block_in[rid.index()][b.index()] | block.def();
                match target {
                    CallTarget::Direct(callee, e) => next[callee.index()][*e] &= at_entry,
                    CallTarget::IndirectKnown(list) => {
                        for &(callee, e) in list {
                            next[callee.index()][e] &= at_entry;
                        }
                    }
                    CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {}
                }
            }
        }
        if next == entry {
            break;
        }
        entry = next;
    }
    MustDefined { entry, block_in }
}

/// A shortest intra-routine path (as block-start addresses) from an
/// entrance to `target` along which `reg` is never defined. Falls back to
/// the lone target address if no such path is recoverable.
fn witness_path(
    pcfg: &ProgramCfg,
    summary: &ProgramSummary,
    cfg: &RoutineCfg,
    rid: RoutineId,
    md: &MustDefined,
    reg: Reg,
    target: BlockId,
) -> Vec<u32> {
    let nb = cfg.blocks().len();
    let cs_defined = call_defined_per_block(pcfg, summary, rid);
    let mut parent: Vec<Option<BlockId>> = vec![None; nb];
    let mut visited = vec![false; nb];
    let mut q = VecDeque::new();
    for (e, &b) in cfg.entries().iter().enumerate() {
        if !md.entry[rid.index()][e].contains(reg) && !visited[b.index()] {
            visited[b.index()] = true;
            q.push_back(b);
        }
    }
    let mut found = false;
    while let Some(b) = q.pop_front() {
        if b == target {
            found = true;
            break;
        }
        let block = cfg.block(b);
        // A path through this block defines `reg`: it stops witnessing.
        if block.def().contains(reg) {
            continue;
        }
        let extend = |s: BlockId,
                      visited: &mut Vec<bool>,
                      parent: &mut Vec<Option<BlockId>>,
                      q: &mut VecDeque<BlockId>| {
            if !visited[s.index()] {
                visited[s.index()] = true;
                parent[s.index()] = Some(b);
                q.push_back(s);
            }
        };
        match block.term() {
            TermKind::Call { return_to, .. } => {
                if !cs_defined[b.index()].contains(reg) {
                    if let Some(rt) = return_to {
                        extend(*rt, &mut visited, &mut parent, &mut q);
                    }
                }
            }
            _ => {
                for &s in block.succs() {
                    extend(s, &mut visited, &mut parent, &mut q);
                }
            }
        }
    }
    if !found {
        return vec![cfg.block(target).start()];
    }
    let mut path = Vec::new();
    let mut cur = Some(target);
    while let Some(b) = cur {
        path.push(cfg.block(b).start());
        cur = parent[b.index()];
    }
    path.reverse();
    path
}

/// The callee name of the last call block on the witness path, if any —
/// used to phrase the missing-return-value note.
fn last_call_on_path(program: &Program, cfg: &RoutineCfg, witness: &[u32]) -> Option<String> {
    for &addr in witness.iter().rev() {
        let b = cfg.block_containing(addr)?;
        if let TermKind::Call { target, .. } = cfg.block(b).term() {
            return Some(match target {
                CallTarget::Direct(callee, _) => program.routine(*callee).name().to_string(),
                CallTarget::IndirectKnown(list) => {
                    let (callee, _) = list.first()?;
                    program.routine(*callee).name().to_string()
                }
                CallTarget::IndirectUnknown | CallTarget::IndirectHinted { .. } => {
                    "an indirect callee".to_string()
                }
            });
        }
    }
    None
}

/// Flags every use in `rid` not covered by the must-defined solution,
/// one finding per `(routine, register)`. `md` must hold converged facts
/// for `rid` (full solution, or a scoped one targeting `rid`).
fn check_one(
    program: &Program,
    cfg: &ProgramCfg,
    summary: &ProgramSummary,
    md: &MustDefined,
    rid: RoutineId,
    report: &mut LintReport,
) {
    let routine = program.routine(rid);
    let rcfg = cfg.routine_cfg(rid);
    let ret_regs = summary.calling_standard().return_value();
    let mut flagged = RegSet::EMPTY;
    for (bi, block) in rcfg.blocks().iter().enumerate() {
        let mut defined = md.block_in[rid.index()][bi];
        for addr in block.start()..block.end() {
            let insn = routine.insn_at(addr).expect("address in routine");
            let missing = checked_uses(insn) - defined;
            for reg in missing.iter() {
                // Treat as defined from here on, so one root cause is
                // not reported at every downstream use.
                defined.insert(reg);
                if flagged.contains(reg) {
                    continue;
                }
                flagged.insert(reg);
                let witness =
                    witness_path(cfg, summary, rcfg, rid, md, reg, BlockId::from_index(bi));
                let mut d = Diagnostic::new(
                    Check::UninitRead,
                    routine.name(),
                    format!("register {reg} may be read before it is initialized"),
                );
                d.addr = Some(addr);
                d.reg = Some(reg);
                if ret_regs.contains(reg) {
                    if let Some(callee) = last_call_on_path(program, rcfg, &witness) {
                        d.note = Some(format!(
                            "return value expected from the call to {callee}, \
                             which does not always define {reg}"
                        ));
                    }
                }
                d.witness = witness;
                report.push(d);
            }
            defined |= insn.defs();
        }
    }
}

/// Flags every use not covered by the must-defined solution, across the
/// whole program.
pub(crate) fn check(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    let md = compute_scoped(program, &analysis.cfg, &analysis.summary, None);
    for (rid, _) in program.iter() {
        check_one(program, &analysis.cfg, &analysis.summary, &md, rid, report);
    }
}

/// Single-routine variant for demand-driven linting: converges the
/// must-defined fixpoint over `rid`'s caller closure only and flags only
/// `rid`'s reads. The findings equal the whole-program [`check`]'s
/// findings for `rid` exactly (see [`compute_scoped`]); `summary` only
/// needs converged `call-defined` facts for the call sites inside the
/// closure.
pub(crate) fn check_routine(
    program: &Program,
    cfg: &ProgramCfg,
    summary: &ProgramSummary,
    rid: RoutineId,
    report: &mut LintReport,
) {
    let md = compute_scoped(program, cfg, summary, Some(rid));
    check_one(program, cfg, summary, &md, rid, report);
}
