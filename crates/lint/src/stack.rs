//! Stack-slot checks: `uninit-stack-read`, `out-of-frame-access` and
//! `dead-stack-store`, driven by the interprocedural stack-slot
//! analysis (`spike_core::StackAnalysis`).
//!
//! The analysis classifies every SP-relative access of every
//! non-escaped routine; this module only phrases the findings:
//!
//! * a `Load` inside the frame whose slot is not MUST-defined on some
//!   path is an uninitialized read (error) — witnessed by a block path
//!   from an entrance that avoids every block certainly storing the
//!   slot, exactly like the register `uninit-read` witness;
//! * an access outside the live frame region `[sp, entry_sp)` (error) —
//!   it touches caller memory or below-SP garbage, the same bounds the
//!   per-slot shadow simulator faults on;
//! * a `Store` whose slot no valid path reads before it is popped or
//!   overwritten (warning) — the slot analogue of a dead register
//!   store, and exactly what the optimizer's stack DSE deletes.
//!
//! Escaped frames produce no findings: the model cannot judge them, and
//! soundness there is the shadow oracle's job alone.

use std::collections::VecDeque;

use spike_cfg::{BlockId, TermKind};
use spike_core::{AccessKind, Analysis, StackAccess};
use spike_program::{Program, RoutineId};

use crate::diag::{Check, Diagnostic, LintReport};

pub(crate) fn check(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    for (rid, routine) in program.iter() {
        let rs = analysis.stack.routine(rid);
        if rs.frame.escaped {
            continue;
        }
        for access in analysis.stack.accesses(program, &analysis.cfg, rid) {
            if !access.in_frame {
                let mut d = Diagnostic::new(
                    Check::OutOfFrameAccess,
                    routine.name(),
                    format!(
                        "{} at entry-SP{:+} lies outside the live frame [SP{:+}, entry SP)",
                        verb(&access),
                        access.entry_off,
                        access.sp_disp,
                    ),
                );
                d.addr = Some(access.addr);
                d.slot = Some(access.entry_off);
                report.push(d);
            } else if access.kind == AccessKind::Load && !access.defined_before {
                let mut d = Diagnostic::new(
                    Check::UninitStackRead,
                    routine.name(),
                    format!(
                        "{}-byte stack slot at entry-SP{:+} may be read before any store reaches it",
                        access.width.bytes(),
                        access.entry_off,
                    ),
                );
                d.addr = Some(access.addr);
                d.slot = Some(access.entry_off);
                d.witness = witness_path(program, analysis, rid, &access);
                report.push(d);
            } else if access.kind == AccessKind::Store && !access.live_after {
                let mut d = Diagnostic::new(
                    Check::DeadStackStore,
                    routine.name(),
                    format!(
                        "store to stack slot at entry-SP{:+} is never read on any valid path",
                        access.entry_off,
                    ),
                );
                d.addr = Some(access.addr);
                d.slot = Some(access.entry_off);
                report.push(d);
            }
        }
    }
}

/// A block path from a routine entrance to the offending load that
/// avoids every block whose forward *gen* mask certainly stores the
/// slot — along it, the load really does observe an unwritten slot.
fn witness_path(
    program: &Program,
    analysis: &Analysis,
    rid: RoutineId,
    access: &StackAccess,
) -> Vec<u32> {
    let rs = analysis.stack.routine(rid);
    let Some(slot) = rs.frame.slot_at(access.entry_off) else {
        return Vec::new();
    };
    let cfg = analysis.cfg.routine_cfg(rid);
    let nb = cfg.blocks().len();
    let target = access.block;
    let mut parent: Vec<Option<BlockId>> = vec![None; nb];
    let mut visited = vec![false; nb];
    let mut q = VecDeque::new();
    for &b in cfg.entries() {
        if !visited[b.index()] {
            visited[b.index()] = true;
            q.push_back(b);
        }
    }
    let mut found = false;
    while let Some(b) = q.pop_front() {
        if b == target {
            found = true;
            break;
        }
        // Every path through this block stores the slot (directly or
        // via a callee KILL): it stops witnessing.
        if analysis.stack.block_gen(program, &analysis.cfg, rid, b).contains(slot) {
            continue;
        }
        let block = cfg.block(b);
        let mut extend = |s: BlockId, parent: &mut Vec<Option<BlockId>>, q: &mut VecDeque<_>| {
            if !visited[s.index()] {
                visited[s.index()] = true;
                parent[s.index()] = Some(b);
                q.push_back(s);
            }
        };
        if let TermKind::Call { return_to: Some(rt), .. } = block.term() {
            extend(*rt, &mut parent, &mut q);
        }
        for &s in block.succs() {
            extend(s, &mut parent, &mut q);
        }
    }
    if !found {
        return vec![cfg.block(target).start()];
    }
    let mut path = Vec::new();
    let mut cur = Some(target);
    while let Some(b) = cur {
        path.push(cfg.block(b).start());
        cur = parent[b.index()];
    }
    path.reverse();
    path
}

fn verb(access: &StackAccess) -> &'static str {
    match access.kind {
        AccessKind::Load => "stack read",
        AccessKind::Store => "stack store",
    }
}
