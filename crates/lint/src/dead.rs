//! Dead-store and dead-argument warnings: Figure 1(a)/(b) of the paper as
//! diagnostics instead of deletions.
//!
//! Reuses the optimizer's interprocedural liveness (live-at-exit at rets,
//! call-used at call summaries) but reports rather than rewrites, and does
//! not cascade: each finding is a write that is dead in the program as it
//! stands, so the list is stable and reviewable.

use spike_cfg::BlockId;
use spike_core::Analysis;
use spike_isa::Instruction;
use spike_opt::{routine_liveness, step_back};
use spike_program::Program;

use crate::diag::{Check, Diagnostic, LintReport};

/// Instructions with no effect beyond their register result (mirrors the
/// dead-code pass's notion; memory stores and control flow are excluded).
fn is_pure(insn: &Instruction) -> bool {
    matches!(
        insn,
        Instruction::Operate { .. }
            | Instruction::OperateImm { .. }
            | Instruction::Lda { .. }
            | Instruction::Ldah { .. }
            | Instruction::Load { .. }
            | Instruction::FpOperate { .. }
    )
}

pub(crate) fn check(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    let arg_regs = analysis.summary.calling_standard().argument();
    for (rid, routine) in program.iter() {
        let cfg = analysis.cfg.routine_cfg(rid);
        let live = routine_liveness(program, analysis, rid, &|_| false);
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let b = BlockId::from_index(bi);
            let mut l = live.live_end(b);
            for addr in (block.start()..block.end()).rev() {
                let insn = routine.insn_at(addr).expect("address in routine");
                let cs = (addr == block.term_addr() && insn.is_call())
                    .then(|| analysis.summary.call_site(&analysis.cfg, rid, b))
                    .flatten();
                let defs = insn.defs();
                if cs.is_none()
                    && is_pure(insn)
                    && !defs.is_empty()
                    && defs.is_disjoint(l)
                    && !program.relocations().contains_key(&addr)
                {
                    let reg = defs.iter().next().expect("non-empty def set");
                    let mut d = if block.is_call_block() && !(defs & arg_regs).is_empty() {
                        Diagnostic::new(
                            Check::DeadArgument,
                            routine.name(),
                            format!(
                                "argument register {reg} is set, but the call ending \
                                 this block does not read it"
                            ),
                        )
                    } else {
                        Diagnostic::new(
                            Check::DeadStore,
                            routine.name(),
                            format!("the value written to {reg} is never read on any valid path"),
                        )
                    };
                    d.addr = Some(addr);
                    d.reg = Some(reg);
                    report.push(d);
                }
                l = step_back(l, insn, cs.as_ref());
            }
        }
    }
}
