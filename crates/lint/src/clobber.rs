//! The callee-saved clobber check (§3.4 turned into a verifier).
//!
//! A caller is entitled to find every [`CallingStandard::callee_saved`]
//! register intact after a call. A routine that writes one — directly, in
//! code that can execute and then still return — breaks that contract
//! unless the §3.4 save/restore detection proves the register is restored
//! on every exit. The check is deliberately per-routine and direct-writes
//! only: a routine whose *callee* clobbers is not re-flagged here, the
//! defect is reported at its origin.

use spike_cfg::BlockId;
use spike_core::Analysis;
use spike_isa::RegSet;
use spike_program::Program;

use crate::diag::{Check, Diagnostic, LintReport, Severity};
use crate::graph::{reachable_from_entrances, reaches_an_exit};

#[allow(unused_imports)]
use spike_isa::CallingStandard; // doc link

pub(crate) fn check(program: &Program, analysis: &Analysis, report: &mut LintReport) {
    let callee_saved = analysis.summary.calling_standard().callee_saved();
    for (rid, routine) in program.iter() {
        // The entry routine has no caller whose registers it could
        // clobber, and a routine that never returns never gives control
        // back with a clobbered register.
        if rid == program.entry() {
            continue;
        }
        let cfg = analysis.cfg.routine_cfg(rid);
        if cfg.exits().is_empty() {
            continue;
        }
        let suspicious = callee_saved - analysis.summary.routine(rid).saved_restored;
        if cfg.blocks().iter().all(|b| b.def().is_disjoint(suspicious)) {
            continue;
        }
        // With an unknown-target jump the path structure is uncertain, so
        // reachability-based claims lose confidence.
        let demote = !cfg.unknown_jumps().is_empty();
        let live = reachable_from_entrances(cfg);
        let returns = reaches_an_exit(cfg);
        let mut flagged = RegSet::EMPTY;
        for (bi, block) in cfg.blocks().iter().enumerate() {
            if !live[bi] || !returns[bi] || block.def().is_disjoint(suspicious) {
                continue;
            }
            let b = BlockId::from_index(bi);
            for addr in block.start()..block.end() {
                let insn = routine.insn_at(addr).expect("address in routine");
                for reg in (insn.defs() & suspicious).iter() {
                    if flagged.contains(reg) {
                        continue;
                    }
                    flagged.insert(reg);
                    let mut d = Diagnostic::new(
                        Check::CalleeSavedClobber,
                        routine.name(),
                        format!(
                            "callee-saved register {reg} is overwritten on a path that \
                             returns, without a matching save and restore"
                        ),
                    );
                    d.addr = Some(addr);
                    d.reg = Some(reg);
                    d.witness = vec![cfg.block(b).start(), addr];
                    if demote {
                        d.severity = Severity::Warning;
                        d.note = Some(
                            "demoted to a warning: the routine contains an \
                             unknown-target jump"
                                .to_string(),
                        );
                    }
                    report.push(d);
                }
            }
        }
    }
}
