//! Instructions, their def/use sets, and the 32-bit binary encoding.

use std::fmt;

use crate::reg::Reg;
use crate::regset::RegSet;

/// Integer ALU operations available in [`Instruction::Operate`] and
/// [`Instruction::OperateImm`].
///
/// `CmovEq`/`CmovNe` conditionally move `rb` into `rc` when `ra` is (not)
/// zero; because the destination keeps its old value on the untaken side,
/// they *use* `rc` in addition to defining it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// `rc = ra + rb`
    Add,
    /// `rc = ra - rb`
    Sub,
    /// `rc = ra * rb`
    Mul,
    /// `rc = ra & rb`
    And,
    /// `rc = ra | rb`
    Or,
    /// `rc = ra ^ rb`
    Xor,
    /// `rc = ra << (rb & 63)`
    Sll,
    /// `rc = (ra as u64) >> (rb & 63)`
    Srl,
    /// `rc = ra >> (rb & 63)` (arithmetic)
    Sra,
    /// `rc = (ra == rb) as i64`
    CmpEq,
    /// `rc = (ra < rb) as i64` (signed)
    CmpLt,
    /// `rc = (ra <= rb) as i64` (signed)
    CmpLe,
    /// `rc = ((ra as u64) < (rb as u64)) as i64`
    CmpUlt,
    /// `if ra == 0 { rc = rb }`
    CmovEq,
    /// `if ra != 0 { rc = rb }`
    CmovNe,
}

impl AluOp {
    const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::CmpUlt,
        AluOp::CmovEq,
        AluOp::CmovNe,
    ];

    fn func(self) -> u32 {
        self as u32
    }

    fn from_func(func: u32) -> Option<AluOp> {
        AluOp::ALL.get(func as usize).copied()
    }

    /// Whether this is a conditional move, which reads its destination.
    #[inline]
    pub fn is_cmov(self) -> bool {
        matches!(self, AluOp::CmovEq | AluOp::CmovNe)
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addq",
            AluOp::Sub => "subq",
            AluOp::Mul => "mulq",
            AluOp::And => "and",
            AluOp::Or => "bis",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLe => "cmple",
            AluOp::CmpUlt => "cmpult",
            AluOp::CmovEq => "cmoveq",
            AluOp::CmovNe => "cmovne",
        }
    }
}

/// Conditions for [`Instruction::CondBranch`]; all test register `ra`
/// against zero, as on Alpha.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if `ra == 0`.
    Eq,
    /// Branch if `ra != 0`.
    Ne,
    /// Branch if `ra < 0`.
    Lt,
    /// Branch if `ra <= 0`.
    Le,
    /// Branch if `ra >= 0`.
    Ge,
    /// Branch if `ra > 0`.
    Gt,
    /// Branch if the low bit of `ra` is clear.
    Lbc,
    /// Branch if the low bit of `ra` is set.
    Lbs,
}

impl BranchCond {
    const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Ge,
        BranchCond::Gt,
        BranchCond::Lbc,
        BranchCond::Lbs,
    ];

    fn index(self) -> u32 {
        self as u32
    }

    fn from_index(i: u32) -> Option<BranchCond> {
        BranchCond::ALL.get(i as usize).copied()
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Le => "ble",
            BranchCond::Ge => "bge",
            BranchCond::Gt => "bgt",
            BranchCond::Lbc => "blbc",
            BranchCond::Lbs => "blbs",
        }
    }

    /// Evaluates the condition against a register value.
    #[inline]
    pub fn eval(self, v: i64) -> bool {
        match self {
            BranchCond::Eq => v == 0,
            BranchCond::Ne => v != 0,
            BranchCond::Lt => v < 0,
            BranchCond::Le => v <= 0,
            BranchCond::Ge => v >= 0,
            BranchCond::Gt => v > 0,
            BranchCond::Lbc => v & 1 == 0,
            BranchCond::Lbs => v & 1 != 0,
        }
    }
}

/// Access widths for [`Instruction::Load`] and [`Instruction::Store`].
///
/// `L` and `Q` operate on the integer bank; `T` is the floating-point
/// load/store (`ldt`/`stt`) and requires a floating-point data register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 32-bit integer (`ldl`/`stl`).
    L,
    /// 64-bit integer (`ldq`/`stq`).
    Q,
    /// 64-bit floating point (`ldt`/`stt`).
    T,
}

impl MemWidth {
    /// The access size in bytes.
    #[inline]
    pub fn bytes(self) -> i64 {
        match self {
            MemWidth::L => 4,
            MemWidth::Q | MemWidth::T => 8,
        }
    }
}

/// Floating-point compute operations for [`Instruction::FpOperate`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp {
    /// `fc = fa + fb`
    Add,
    /// `fc = fa - fb`
    Sub,
    /// `fc = fa * fb`
    Mul,
    /// `fc = (fa == fb)` as 0/2.0 (Alpha-style truth value)
    CmpEq,
    /// `fc = (fa < fb)` as 0/2.0
    CmpLt,
}

impl FpOp {
    const ALL: [FpOp; 5] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::CmpEq, FpOp::CmpLt];

    fn func(self) -> u32 {
        self as u32
    }

    fn from_func(func: u32) -> Option<FpOp> {
        FpOp::ALL.get(func as usize).copied()
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "addt",
            FpOp::Sub => "subt",
            FpOp::Mul => "mult",
            FpOp::CmpEq => "cmpteq",
            FpOp::CmpLt => "cmptlt",
        }
    }
}

/// A machine instruction of the synthetic Alpha-like ISA.
///
/// Control-flow displacement fields (`disp` on branches and calls) are in
/// units of instruction words relative to the *next* instruction, exactly as
/// on Alpha. Indirect jumps ([`Instruction::Jmp`]) find their targets
/// through a jump table stored in the program image (§3.5); the instruction
/// itself only names the base register holding the target address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// Integer register-register ALU operation: `rc = ra <op> rb`.
    Operate { op: AluOp, ra: Reg, rb: Reg, rc: Reg },
    /// Integer register-immediate ALU operation: `rc = ra <op> imm`.
    OperateImm { op: AluOp, ra: Reg, imm: u8, rc: Reg },
    /// Load address: `rd = base + disp`.
    Lda { rd: Reg, base: Reg, disp: i16 },
    /// Load address high: `rd = base + (disp << 16)`.
    Ldah { rd: Reg, base: Reg, disp: i16 },
    /// Memory load: `rd = mem[base + disp]`.
    Load { width: MemWidth, rd: Reg, base: Reg, disp: i16 },
    /// Memory store: `mem[base + disp] = rs`.
    Store { width: MemWidth, rs: Reg, base: Reg, disp: i16 },
    /// Floating-point operate: `fc = fa <op> fb`.
    FpOperate { op: FpOp, fa: Reg, fb: Reg, fc: Reg },
    /// Unconditional branch.
    Br { disp: i32 },
    /// Direct call (branch-and-link); defines `ra`.
    Bsr { disp: i32 },
    /// Conditional branch on `ra`.
    CondBranch { cond: BranchCond, ra: Reg, disp: i32 },
    /// Indirect jump through `base` (multiway branch when a jump table is
    /// associated with this instruction's address).
    Jmp { base: Reg },
    /// Indirect call through `base`; defines `ra`.
    Jsr { base: Reg },
    /// Return through `base` (conventionally `ra`).
    Ret { base: Reg },
    /// Stop the machine (program exit).
    Halt,
    /// Emit the value of `v0` to the observable output stream. Gives the
    /// simulator an externally visible effect for soundness testing.
    PutInt,
}

/// Error returned by [`Instruction::decode`] for malformed words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The primary opcode field names no instruction.
    UnknownOpcode(u32),
    /// The function field within a known opcode group is undefined.
    UnknownFunction(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(w) => {
                write!(f, "unknown opcode {:#04x} in word {w:#010x}", w >> 26)
            }
            DecodeError::UnknownFunction(w) => {
                write!(f, "unknown function code in word {w:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Primary opcodes.
const OP_PAL: u32 = 0x00;
const OP_LDA: u32 = 0x08;
const OP_LDAH: u32 = 0x09;
const OP_OPERATE: u32 = 0x10;
const OP_FPOP: u32 = 0x16;
const OP_JUMP: u32 = 0x1A;
const OP_LDT: u32 = 0x23;
const OP_STT: u32 = 0x27;
const OP_LDL: u32 = 0x28;
const OP_LDQ: u32 = 0x29;
const OP_STL: u32 = 0x2C;
const OP_STQ: u32 = 0x2D;
const OP_BR: u32 = 0x30;
const OP_BSR: u32 = 0x34;
const OP_CONDBR_BASE: u32 = 0x38; // 0x38..=0x3F, one per BranchCond

const PAL_HALT: u32 = 0;
const PAL_PUTINT: u32 = 1;

const JUMP_JMP: u32 = 0;
const JUMP_JSR: u32 = 1;
const JUMP_RET: u32 = 2;

const DISP21_MAX: i32 = (1 << 20) - 1;
const DISP21_MIN: i32 = -(1 << 20);
// `br`/`bsr` carry no register operand, so the whole 26-bit field below the
// opcode holds the displacement — large executables need calls that span
// millions of words.
const DISP26_MAX: i32 = (1 << 25) - 1;
const DISP26_MIN: i32 = -(1 << 25);

fn field_reg(word: u32, lo: u32, fp: bool) -> Reg {
    let n = ((word >> lo) & 31) as u8;
    if fp {
        Reg::fp(n)
    } else {
        Reg::int(n)
    }
}

fn sext21(v: u32) -> i32 {
    ((v << 11) as i32) >> 11
}

fn sext26(v: u32) -> i32 {
    ((v << 6) as i32) >> 6
}

impl Instruction {
    /// The registers this instruction may read. Zero registers are never
    /// reported.
    ///
    /// Conditional moves report their destination as a use (the old value
    /// survives on the untaken side). Calls and returns report only their
    /// architectural operands; the registers consumed *inside* a callee are
    /// exactly what the paper's interprocedural analysis reconstructs.
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::new();
        match *self {
            Instruction::Operate { op, ra, rb, rc } => {
                s.insert(ra);
                s.insert(rb);
                if op.is_cmov() {
                    s.insert(rc);
                }
            }
            Instruction::OperateImm { op, ra, rc, .. } => {
                s.insert(ra);
                if op.is_cmov() {
                    s.insert(rc);
                }
            }
            Instruction::Lda { base, .. } | Instruction::Ldah { base, .. } => {
                s.insert(base);
            }
            Instruction::Load { base, .. } => {
                s.insert(base);
            }
            Instruction::Store { rs, base, .. } => {
                s.insert(rs);
                s.insert(base);
            }
            Instruction::FpOperate { fa, fb, .. } => {
                s.insert(fa);
                s.insert(fb);
            }
            Instruction::CondBranch { ra, .. } => {
                s.insert(ra);
            }
            Instruction::Jmp { base } | Instruction::Jsr { base } | Instruction::Ret { base } => {
                s.insert(base);
            }
            Instruction::Br { .. } | Instruction::Bsr { .. } | Instruction::Halt => {}
            Instruction::PutInt => {
                s.insert(Reg::V0);
            }
        }
        s.remove(Reg::ZERO);
        s.remove(Reg::FZERO);
        s
    }

    /// The registers this instruction writes. Zero registers are never
    /// reported (writes to them are architecturally discarded).
    pub fn defs(&self) -> RegSet {
        let mut s = RegSet::new();
        match *self {
            Instruction::Operate { rc, .. } | Instruction::OperateImm { rc, .. } => {
                s.insert(rc);
            }
            Instruction::Lda { rd, .. }
            | Instruction::Ldah { rd, .. }
            | Instruction::Load { rd, .. } => {
                s.insert(rd);
            }
            Instruction::FpOperate { fc, .. } => {
                s.insert(fc);
            }
            Instruction::Bsr { .. } | Instruction::Jsr { .. } => {
                s.insert(Reg::RA);
            }
            Instruction::Store { .. }
            | Instruction::CondBranch { .. }
            | Instruction::Br { .. }
            | Instruction::Jmp { .. }
            | Instruction::Ret { .. }
            | Instruction::Halt
            | Instruction::PutInt => {}
        }
        s.remove(Reg::ZERO);
        s.remove(Reg::FZERO);
        s
    }

    /// Whether this instruction ends a basic block: branches, jumps, calls,
    /// returns, and halts all do. The paper additionally ends blocks at call
    /// instructions ("the basic block counts assume a basic block is ended
    /// by a call instruction"), which this predicate honours by returning
    /// `true` for [`Instruction::Bsr`] and [`Instruction::Jsr`].
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instruction::Br { .. }
                | Instruction::Bsr { .. }
                | Instruction::CondBranch { .. }
                | Instruction::Jmp { .. }
                | Instruction::Jsr { .. }
                | Instruction::Ret { .. }
                | Instruction::Halt
        )
    }

    /// Whether this is a call (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Instruction::Bsr { .. } | Instruction::Jsr { .. })
    }

    /// Encodes the instruction into a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range for its encoding: branch/call
    /// displacements must fit in 21 signed bits, and the register banks
    /// must match the instruction (e.g. `Load` with [`MemWidth::T`]
    /// requires a floating-point data register, integer widths an integer
    /// register; `FpOperate` requires floating-point registers).
    pub fn encode(&self) -> u32 {
        fn ireg(r: Reg) -> u32 {
            assert!(!r.is_fp(), "expected integer register, got {r}");
            r.number() as u32
        }
        fn freg(r: Reg) -> u32 {
            assert!(r.is_fp(), "expected floating-point register, got {r}");
            r.number() as u32
        }
        fn disp21(d: i32) -> u32 {
            assert!(
                (DISP21_MIN..=DISP21_MAX).contains(&d),
                "branch displacement {d} out of 21-bit range"
            );
            (d as u32) & 0x1F_FFFF
        }
        fn disp26(d: i32) -> u32 {
            assert!(
                (DISP26_MIN..=DISP26_MAX).contains(&d),
                "branch displacement {d} out of 26-bit range"
            );
            (d as u32) & 0x03FF_FFFF
        }
        fn mem(op: u32, data: u32, base: Reg, disp: i16) -> u32 {
            (op << 26) | (data << 21) | (ireg(base) << 16) | (disp as u16 as u32)
        }

        match *self {
            Instruction::Operate { op, ra, rb, rc } => {
                (OP_OPERATE << 26)
                    | (ireg(ra) << 21)
                    | (ireg(rb) << 16)
                    | (op.func() << 5)
                    | ireg(rc)
            }
            Instruction::OperateImm { op, ra, imm, rc } => {
                (OP_OPERATE << 26)
                    | (ireg(ra) << 21)
                    | ((imm as u32) << 13)
                    | (1 << 12)
                    | (op.func() << 5)
                    | ireg(rc)
            }
            Instruction::Lda { rd, base, disp } => mem(OP_LDA, ireg(rd), base, disp),
            Instruction::Ldah { rd, base, disp } => mem(OP_LDAH, ireg(rd), base, disp),
            Instruction::Load { width, rd, base, disp } => match width {
                MemWidth::L => mem(OP_LDL, ireg(rd), base, disp),
                MemWidth::Q => mem(OP_LDQ, ireg(rd), base, disp),
                MemWidth::T => mem(OP_LDT, freg(rd), base, disp),
            },
            Instruction::Store { width, rs, base, disp } => match width {
                MemWidth::L => mem(OP_STL, ireg(rs), base, disp),
                MemWidth::Q => mem(OP_STQ, ireg(rs), base, disp),
                MemWidth::T => mem(OP_STT, freg(rs), base, disp),
            },
            Instruction::FpOperate { op, fa, fb, fc } => {
                (OP_FPOP << 26) | (freg(fa) << 21) | (freg(fb) << 16) | (op.func() << 5) | freg(fc)
            }
            Instruction::Br { disp } => (OP_BR << 26) | disp26(disp),
            Instruction::Bsr { disp } => (OP_BSR << 26) | disp26(disp),
            Instruction::CondBranch { cond, ra, disp } => {
                ((OP_CONDBR_BASE + cond.index()) << 26) | (ireg(ra) << 21) | disp21(disp)
            }
            Instruction::Jmp { base } => {
                (OP_JUMP << 26) | (31 << 21) | (ireg(base) << 16) | (JUMP_JMP << 14)
            }
            Instruction::Jsr { base } => {
                (OP_JUMP << 26)
                    | ((Reg::RA.number() as u32) << 21)
                    | (ireg(base) << 16)
                    | (JUMP_JSR << 14)
            }
            Instruction::Ret { base } => {
                (OP_JUMP << 26) | (31 << 21) | (ireg(base) << 16) | (JUMP_RET << 14)
            }
            Instruction::Halt => PAL_HALT,
            Instruction::PutInt => PAL_PUTINT,
        }
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnknownOpcode`] if the primary opcode names no
    /// instruction, and [`DecodeError::UnknownFunction`] if a function code
    /// within a known group is undefined.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opcode = word >> 26;
        let insn = match opcode {
            OP_PAL => match word & 0x03FF_FFFF {
                PAL_HALT => Instruction::Halt,
                PAL_PUTINT => Instruction::PutInt,
                _ => return Err(DecodeError::UnknownFunction(word)),
            },
            OP_LDA => Instruction::Lda {
                rd: field_reg(word, 21, false),
                base: field_reg(word, 16, false),
                disp: word as u16 as i16,
            },
            OP_LDAH => Instruction::Ldah {
                rd: field_reg(word, 21, false),
                base: field_reg(word, 16, false),
                disp: word as u16 as i16,
            },
            OP_OPERATE => {
                let op = AluOp::from_func((word >> 5) & 0x7F)
                    .ok_or(DecodeError::UnknownFunction(word))?;
                let ra = field_reg(word, 21, false);
                let rc = field_reg(word, 0, false);
                if word & (1 << 12) != 0 {
                    Instruction::OperateImm { op, ra, imm: ((word >> 13) & 0xFF) as u8, rc }
                } else {
                    Instruction::Operate { op, ra, rb: field_reg(word, 16, false), rc }
                }
            }
            OP_FPOP => {
                let op = FpOp::from_func((word >> 5) & 0x7F)
                    .ok_or(DecodeError::UnknownFunction(word))?;
                Instruction::FpOperate {
                    op,
                    fa: field_reg(word, 21, true),
                    fb: field_reg(word, 16, true),
                    fc: field_reg(word, 0, true),
                }
            }
            OP_JUMP => {
                let base = field_reg(word, 16, false);
                match (word >> 14) & 3 {
                    JUMP_JMP => Instruction::Jmp { base },
                    JUMP_JSR => Instruction::Jsr { base },
                    JUMP_RET => Instruction::Ret { base },
                    _ => return Err(DecodeError::UnknownFunction(word)),
                }
            }
            OP_LDL | OP_LDQ | OP_LDT => Instruction::Load {
                width: match opcode {
                    OP_LDL => MemWidth::L,
                    OP_LDQ => MemWidth::Q,
                    _ => MemWidth::T,
                },
                rd: field_reg(word, 21, opcode == OP_LDT),
                base: field_reg(word, 16, false),
                disp: word as u16 as i16,
            },
            OP_STL | OP_STQ | OP_STT => Instruction::Store {
                width: match opcode {
                    OP_STL => MemWidth::L,
                    OP_STQ => MemWidth::Q,
                    _ => MemWidth::T,
                },
                rs: field_reg(word, 21, opcode == OP_STT),
                base: field_reg(word, 16, false),
                disp: word as u16 as i16,
            },
            OP_BR => Instruction::Br { disp: sext26(word & 0x03FF_FFFF) },
            OP_BSR => Instruction::Bsr { disp: sext26(word & 0x03FF_FFFF) },
            op if (OP_CONDBR_BASE..OP_CONDBR_BASE + 8).contains(&op) => Instruction::CondBranch {
                cond: BranchCond::from_index(op - OP_CONDBR_BASE)
                    .expect("condition index in range"),
                ra: field_reg(word, 21, false),
                disp: sext21(word & 0x1F_FFFF),
            },
            _ => return Err(DecodeError::UnknownOpcode(word)),
        };
        Ok(insn)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Operate { op, ra, rb, rc } => {
                write!(f, "{} {ra}, {rb}, {rc}", op.mnemonic())
            }
            Instruction::OperateImm { op, ra, imm, rc } => {
                write!(f, "{} {ra}, #{imm}, {rc}", op.mnemonic())
            }
            Instruction::Lda { rd, base, disp } => write!(f, "lda {rd}, {disp}({base})"),
            Instruction::Ldah { rd, base, disp } => write!(f, "ldah {rd}, {disp}({base})"),
            Instruction::Load { width, rd, base, disp } => {
                let m = match width {
                    MemWidth::L => "ldl",
                    MemWidth::Q => "ldq",
                    MemWidth::T => "ldt",
                };
                write!(f, "{m} {rd}, {disp}({base})")
            }
            Instruction::Store { width, rs, base, disp } => {
                let m = match width {
                    MemWidth::L => "stl",
                    MemWidth::Q => "stq",
                    MemWidth::T => "stt",
                };
                write!(f, "{m} {rs}, {disp}({base})")
            }
            Instruction::FpOperate { op, fa, fb, fc } => {
                write!(f, "{} {fa}, {fb}, {fc}", op.mnemonic())
            }
            Instruction::Br { disp } => write!(f, "br {disp}"),
            Instruction::Bsr { disp } => write!(f, "bsr {disp}"),
            Instruction::CondBranch { cond, ra, disp } => {
                write!(f, "{} {ra}, {disp}", cond.mnemonic())
            }
            Instruction::Jmp { base } => write!(f, "jmp ({base})"),
            Instruction::Jsr { base } => write!(f, "jsr ({base})"),
            Instruction::Ret { base } => write!(f, "ret ({base})"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::PutInt => f.write_str("putint"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for op in AluOp::ALL {
            v.push(Instruction::Operate { op, ra: Reg::A0, rb: Reg::A1, rc: Reg::T0 });
            v.push(Instruction::OperateImm { op, ra: Reg::V0, imm: 0xAB, rc: Reg::S0 });
        }
        for op in FpOp::ALL {
            v.push(Instruction::FpOperate { op, fa: Reg::fp(16), fb: Reg::fp(17), fc: Reg::fp(0) });
        }
        v.push(Instruction::Lda { rd: Reg::SP, base: Reg::SP, disp: -64 });
        v.push(Instruction::Ldah { rd: Reg::GP, base: Reg::ZERO, disp: 0x1234u16 as i16 });
        for width in [MemWidth::L, MemWidth::Q] {
            v.push(Instruction::Load { width, rd: Reg::T1, base: Reg::SP, disp: 8 });
            v.push(Instruction::Store { width, rs: Reg::T1, base: Reg::SP, disp: -8 });
        }
        v.push(Instruction::Load { width: MemWidth::T, rd: Reg::fp(2), base: Reg::SP, disp: 16 });
        v.push(Instruction::Store { width: MemWidth::T, rs: Reg::fp(2), base: Reg::SP, disp: 16 });
        v.push(Instruction::Br { disp: -100 });
        v.push(Instruction::Br { disp: DISP26_MIN });
        v.push(Instruction::Bsr { disp: DISP26_MAX });
        for cond in BranchCond::ALL {
            v.push(Instruction::CondBranch { cond, ra: Reg::T2, disp: DISP21_MIN });
        }
        v.push(Instruction::Jmp { base: Reg::PV });
        v.push(Instruction::Jsr { base: Reg::PV });
        v.push(Instruction::Ret { base: Reg::RA });
        v.push(Instruction::Halt);
        v.push(Instruction::PutInt);
        v
    }

    #[test]
    fn encode_decode_round_trips_every_form() {
        for insn in sample_instructions() {
            let word = insn.encode();
            let back = Instruction::decode(word)
                .unwrap_or_else(|e| panic!("decode failed for {insn}: {e}"));
            assert_eq!(back, insn, "round trip for {insn} (word {word:#010x})");
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        // Opcode 0x3 is unassigned.
        let err = Instruction::decode(0x3 << 26).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownOpcode(_)));
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn decode_rejects_unknown_function() {
        // Operate with function 0x7F is unassigned.
        let word = (OP_OPERATE << 26) | (0x7F << 5);
        assert!(matches!(Instruction::decode(word), Err(DecodeError::UnknownFunction(_))));
        // PAL with function 99 is unassigned.
        assert!(matches!(Instruction::decode(99), Err(DecodeError::UnknownFunction(_))));
    }

    #[test]
    fn defs_and_uses_for_alu() {
        let add = Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::V0 };
        assert_eq!(add.uses(), RegSet::of(&[Reg::A0, Reg::A1]));
        assert_eq!(add.defs(), RegSet::of(&[Reg::V0]));

        let addi = Instruction::OperateImm { op: AluOp::Add, ra: Reg::A0, imm: 1, rc: Reg::V0 };
        assert_eq!(addi.uses(), RegSet::of(&[Reg::A0]));
        assert_eq!(addi.defs(), RegSet::of(&[Reg::V0]));
    }

    #[test]
    fn cmov_uses_its_destination() {
        let cmov =
            Instruction::Operate { op: AluOp::CmovNe, ra: Reg::T0, rb: Reg::T1, rc: Reg::V0 };
        assert_eq!(cmov.uses(), RegSet::of(&[Reg::T0, Reg::T1, Reg::V0]));
        assert_eq!(cmov.defs(), RegSet::of(&[Reg::V0]));
    }

    #[test]
    fn zero_registers_never_appear_in_def_use() {
        let i = Instruction::Operate { op: AluOp::Add, ra: Reg::ZERO, rb: Reg::T0, rc: Reg::ZERO };
        assert_eq!(i.uses(), RegSet::of(&[Reg::T0]));
        assert_eq!(i.defs(), RegSet::EMPTY);
        let f = Instruction::FpOperate {
            op: FpOp::Add,
            fa: Reg::FZERO,
            fb: Reg::fp(1),
            fc: Reg::FZERO,
        };
        assert_eq!(f.uses(), RegSet::of(&[Reg::fp(1)]));
        assert_eq!(f.defs(), RegSet::EMPTY);
    }

    #[test]
    fn calls_define_the_return_address() {
        assert_eq!(Instruction::Bsr { disp: 0 }.defs(), RegSet::of(&[Reg::RA]));
        let jsr = Instruction::Jsr { base: Reg::PV };
        assert_eq!(jsr.defs(), RegSet::of(&[Reg::RA]));
        assert_eq!(jsr.uses(), RegSet::of(&[Reg::PV]));
        let ret = Instruction::Ret { base: Reg::RA };
        assert_eq!(ret.uses(), RegSet::of(&[Reg::RA]));
        assert_eq!(ret.defs(), RegSet::EMPTY);
    }

    #[test]
    fn store_uses_data_and_base() {
        let st = Instruction::Store { width: MemWidth::Q, rs: Reg::S0, base: Reg::SP, disp: 0 };
        assert_eq!(st.uses(), RegSet::of(&[Reg::S0, Reg::SP]));
        assert_eq!(st.defs(), RegSet::EMPTY);
    }

    #[test]
    fn terminator_and_call_classification() {
        assert!(Instruction::Br { disp: 0 }.is_terminator());
        assert!(Instruction::Bsr { disp: 0 }.is_terminator());
        assert!(Instruction::Bsr { disp: 0 }.is_call());
        assert!(Instruction::Jsr { base: Reg::PV }.is_call());
        assert!(Instruction::Ret { base: Reg::RA }.is_terminator());
        assert!(Instruction::Halt.is_terminator());
        assert!(!Instruction::PutInt.is_terminator());
        assert!(!Instruction::Lda { rd: Reg::T0, base: Reg::SP, disp: 0 }.is_call());
    }

    #[test]
    #[should_panic(expected = "out of 26-bit range")]
    fn encode_rejects_oversized_branch_displacement() {
        let _ = Instruction::Br { disp: DISP26_MAX + 1 }.encode();
    }

    #[test]
    #[should_panic(expected = "out of 21-bit range")]
    fn encode_rejects_oversized_cond_displacement() {
        let _ = Instruction::CondBranch { cond: BranchCond::Eq, ra: Reg::T0, disp: DISP21_MAX + 1 }
            .encode();
    }

    #[test]
    #[should_panic(expected = "expected floating-point register")]
    fn encode_rejects_bank_mismatch() {
        let _ =
            Instruction::Load { width: MemWidth::T, rd: Reg::T0, base: Reg::SP, disp: 0 }.encode();
    }

    #[test]
    fn negative_displacements_sign_extend() {
        for d in [-1, -17, DISP26_MIN, 0, 1, DISP26_MAX] {
            let i = Instruction::Br { disp: d };
            assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
        }
        for d in [-1, DISP21_MIN, DISP21_MAX] {
            let i = Instruction::CondBranch { cond: BranchCond::Ne, ra: Reg::T3, disp: d };
            assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn display_is_never_empty_and_readable() {
        for insn in sample_instructions() {
            let s = insn.to_string();
            assert!(!s.is_empty());
        }
        let add = Instruction::Operate { op: AluOp::Add, ra: Reg::A0, rb: Reg::A1, rc: Reg::V0 };
        assert_eq!(add.to_string(), "addq a0, a1, v0");
        assert_eq!(Instruction::Ret { base: Reg::RA }.to_string(), "ret (ra)");
    }

    #[test]
    fn branch_cond_eval_truth_table() {
        assert!(BranchCond::Eq.eval(0) && !BranchCond::Eq.eval(1));
        assert!(BranchCond::Ne.eval(-3) && !BranchCond::Ne.eval(0));
        assert!(BranchCond::Lt.eval(-1) && !BranchCond::Lt.eval(0));
        assert!(BranchCond::Le.eval(0) && !BranchCond::Le.eval(2));
        assert!(BranchCond::Ge.eval(0) && !BranchCond::Ge.eval(-2));
        assert!(BranchCond::Gt.eval(5) && !BranchCond::Gt.eval(0));
        assert!(BranchCond::Lbc.eval(2) && !BranchCond::Lbc.eval(3));
        assert!(BranchCond::Lbs.eval(3) && !BranchCond::Lbs.eval(2));
    }
}
