//! Architectural registers.

use std::fmt;

/// Total number of architectural registers: 32 integer + 32 floating-point.
pub const NUM_REGS: usize = 64;

/// An architectural register.
///
/// Registers `0..=31` are the integer registers `r0..r31`; registers
/// `32..=63` are the floating-point registers `f0..f31`. The Alpha
/// convention that `r31` and `f31` always read as zero (and writes to them
/// are discarded) is honoured by [`crate::Instruction::defs`] and
/// [`crate::Instruction::uses`].
///
/// ```
/// use spike_isa::Reg;
/// assert_eq!(Reg::V0.index(), 0);
/// assert_eq!(Reg::int(26), Reg::RA);
/// assert_eq!(Reg::RA.to_string(), "ra");
/// assert!(Reg::fp(2).is_fp());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Integer return-value register (`r0`, `v0`).
    pub const V0: Reg = Reg(0);
    /// First integer temporary (`r1`, `t0`).
    pub const T0: Reg = Reg(1);
    /// Second integer temporary (`r2`, `t1`).
    pub const T1: Reg = Reg(2);
    /// Third integer temporary (`r3`, `t2`).
    pub const T2: Reg = Reg(3);
    /// Fourth integer temporary (`r4`, `t3`).
    pub const T3: Reg = Reg(4);
    /// First callee-saved integer register (`r9`, `s0`).
    pub const S0: Reg = Reg(9);
    /// Second callee-saved integer register (`r10`, `s1`).
    pub const S1: Reg = Reg(10);
    /// Third callee-saved integer register (`r11`, `s2`).
    pub const S2: Reg = Reg(11);
    /// Frame pointer (`r15`, callee-saved).
    pub const FP: Reg = Reg(15);
    /// First integer argument register (`r16`, `a0`).
    pub const A0: Reg = Reg(16);
    /// Second integer argument register (`r17`, `a1`).
    pub const A1: Reg = Reg(17);
    /// Third integer argument register (`r18`, `a2`).
    pub const A2: Reg = Reg(18);
    /// Fourth integer argument register (`r19`, `a3`).
    pub const A3: Reg = Reg(19);
    /// Return-address register (`r26`, `ra`).
    pub const RA: Reg = Reg(26);
    /// Procedure-value register (`r27`, `pv`/`t12`); holds the address of
    /// the called routine at indirect call sites.
    pub const PV: Reg = Reg(27);
    /// Global pointer (`r29`, `gp`).
    pub const GP: Reg = Reg(29);
    /// Stack pointer (`r30`, `sp`).
    pub const SP: Reg = Reg(30);
    /// Integer zero register (`r31`); reads as zero, writes discarded.
    pub const ZERO: Reg = Reg(31);
    /// Floating-point return-value register (`f0`).
    pub const F0: Reg = Reg(32);
    /// Floating-point zero register (`f31`).
    pub const FZERO: Reg = Reg(63);

    /// Returns the integer register `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// Returns the floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn fp(n: u8) -> Reg {
        assert!(n < 32, "floating-point register index out of range");
        Reg(32 + n)
    }

    /// Constructs a register from its dense index `0..64`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub const fn from_index(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index out of range");
        Reg(index as u8)
    }

    /// The dense index of this register in `0..64`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The register number within its bank (`0..32`).
    #[inline]
    pub const fn number(self) -> u8 {
        self.0 & 31
    }

    /// Whether this is a floating-point register.
    #[inline]
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is one of the hardwired zero registers (`r31`, `f31`),
    /// which never carry dataflow.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31 || self.0 == 63
    }

    /// Iterates over every architectural register, `r0..r31` then `f0..f31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            return write!(f, "f{}", self.number());
        }
        // Alpha/NT software names for the integer bank.
        let name: &str = match self.0 {
            0 => "v0",
            1..=8 => return write!(f, "t{}", self.0 - 1),
            9..=14 => return write!(f, "s{}", self.0 - 9),
            15 => "fp",
            16..=21 => return write!(f, "a{}", self.0 - 16),
            22..=25 => return write!(f, "t{}", self.0 - 22 + 8),
            26 => "ra",
            27 => "pv",
            28 => "at",
            29 => "gp",
            30 => "sp",
            31 => "zero",
            _ => unreachable!(),
        };
        f.write_str(name)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_have_documented_indices() {
        assert_eq!(Reg::V0.index(), 0);
        assert_eq!(Reg::RA.index(), 26);
        assert_eq!(Reg::SP.index(), 30);
        assert_eq!(Reg::ZERO.index(), 31);
        assert_eq!(Reg::F0.index(), 32);
        assert_eq!(Reg::FZERO.index(), 63);
    }

    #[test]
    fn display_names_match_alpha_nt_convention() {
        assert_eq!(Reg::int(0).to_string(), "v0");
        assert_eq!(Reg::int(1).to_string(), "t0");
        assert_eq!(Reg::int(8).to_string(), "t7");
        assert_eq!(Reg::int(9).to_string(), "s0");
        assert_eq!(Reg::int(15).to_string(), "fp");
        assert_eq!(Reg::int(16).to_string(), "a0");
        assert_eq!(Reg::int(22).to_string(), "t8");
        assert_eq!(Reg::int(25).to_string(), "t11");
        assert_eq!(Reg::int(27).to_string(), "pv");
        assert_eq!(Reg::int(31).to_string(), "zero");
        assert_eq!(Reg::fp(7).to_string(), "f7");
    }

    #[test]
    fn zero_registers_are_recognized() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::FZERO.is_zero());
        assert!(!Reg::V0.is_zero());
        assert!(!Reg::F0.is_zero());
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "integer register index out of range")]
    fn int_rejects_out_of_range() {
        let _ = Reg::int(32);
    }

    #[test]
    fn fp_bank_round_trips() {
        for n in 0..32 {
            let r = Reg::fp(n);
            assert!(r.is_fp());
            assert_eq!(r.number(), n);
            assert_eq!(Reg::from_index(r.index()), r);
        }
    }
}
