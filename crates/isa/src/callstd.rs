//! The Alpha/NT calling standard register roles (§3.4, §3.5 of the paper).

use crate::reg::Reg;
use crate::regset::RegSet;

/// Register roles defined by the Windows NT calling standard for Alpha
/// (`[CALLSTD]` in the paper).
///
/// Spike's analysis consults the calling standard in two places:
///
/// * **§3.4 callee-saved registers** — definitions and uses of registers in
///   [`callee_saved`](CallingStandard::callee_saved) that a routine saves and
///   restores must not propagate to callers;
/// * **§3.5 indirect calls to unknown targets** — assumed to obey the
///   standard: [`argument`](CallingStandard::argument) registers are
///   call-used, [`return_value`](CallingStandard::return_value) registers are
///   call-defined, and [`temporary`](CallingStandard::temporary) registers
///   are call-killed.
///
/// ```
/// use spike_isa::{CallingStandard, Reg};
/// let std = CallingStandard::alpha_nt();
/// assert!(std.callee_saved().contains(Reg::S0));
/// assert!(std.argument().contains(Reg::A0));
/// assert!(std.temporary().contains(Reg::T0));
/// assert!(std.callee_saved().is_disjoint(std.temporary()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallingStandard {
    argument: RegSet,
    return_value: RegSet,
    callee_saved: RegSet,
    temporary: RegSet,
    special: RegSet,
}

impl CallingStandard {
    /// The Alpha/NT calling standard used throughout the paper.
    ///
    /// Integer bank: `v0` return value; `t0..t7`, `t8..t11`, `at`, `pv`
    /// temporaries; `s0..s5`, `fp` callee-saved; `a0..a5` arguments; `ra`,
    /// `gp`, `sp`, `zero` special. Floating-point bank: `f0`/`f1` return
    /// values, `f16..f21` arguments, `f2..f9` callee-saved, the rest
    /// temporaries.
    pub fn alpha_nt() -> CallingStandard {
        let mut argument = RegSet::new();
        for n in 16..=21 {
            argument.insert(Reg::int(n));
            argument.insert(Reg::fp(n));
        }

        let return_value = RegSet::of(&[Reg::V0, Reg::fp(0), Reg::fp(1)]);

        let mut callee_saved = RegSet::new();
        for n in 9..=14 {
            callee_saved.insert(Reg::int(n));
        }
        callee_saved.insert(Reg::FP);
        for n in 2..=9 {
            callee_saved.insert(Reg::fp(n));
        }

        let mut temporary = RegSet::new();
        for n in 1..=8 {
            temporary.insert(Reg::int(n));
        }
        for n in 22..=25 {
            temporary.insert(Reg::int(n));
        }
        temporary.insert(Reg::int(27)); // pv
        temporary.insert(Reg::int(28)); // at
        for n in 10..=15 {
            temporary.insert(Reg::fp(n));
        }
        for n in 22..=30 {
            temporary.insert(Reg::fp(n));
        }

        let special = RegSet::of(&[Reg::RA, Reg::GP, Reg::SP, Reg::ZERO, Reg::FZERO]);

        CallingStandard { argument, return_value, callee_saved, temporary, special }
    }

    /// Registers used to pass arguments (`a0..a5`, `f16..f21`).
    #[inline]
    pub fn argument(&self) -> RegSet {
        self.argument
    }

    /// Registers used to return values (`v0`, `f0`, `f1`).
    #[inline]
    pub fn return_value(&self) -> RegSet {
        self.return_value
    }

    /// Callee-saved registers (`s0..s5`, `fp`, `f2..f9`).
    #[inline]
    pub fn callee_saved(&self) -> RegSet {
        self.callee_saved
    }

    /// Caller-saved (temporary) registers. Return-value and argument
    /// registers are *not* included even though they are also volatile;
    /// query [`caller_saved`](CallingStandard::caller_saved) for the full
    /// volatile set.
    #[inline]
    pub fn temporary(&self) -> RegSet {
        self.temporary
    }

    /// Special registers (`ra`, `gp`, `sp`, and the zero registers) that
    /// take no part in ordinary value dataflow.
    #[inline]
    pub fn special(&self) -> RegSet {
        self.special
    }

    /// Every register a call may clobber: temporaries, argument and
    /// return-value registers, and `ra`.
    #[inline]
    pub fn caller_saved(&self) -> RegSet {
        self.temporary | self.argument | self.return_value | RegSet::singleton(Reg::RA)
    }

    /// The registers assumed **call-used** by an indirect call to an
    /// unknown target (§3.5): the argument registers plus `sp`/`gp` (the
    /// stack and global environment are always considered consumed).
    #[inline]
    pub fn unknown_call_used(&self) -> RegSet {
        self.argument | RegSet::of(&[Reg::SP, Reg::GP, Reg::PV])
    }

    /// The registers assumed **call-defined** by an indirect call to an
    /// unknown target (§3.5): the return-value registers.
    #[inline]
    pub fn unknown_call_defined(&self) -> RegSet {
        self.return_value
    }

    /// The registers assumed **call-killed** by an indirect call to an
    /// unknown target (§3.5): every caller-saved register.
    #[inline]
    pub fn unknown_call_killed(&self) -> RegSet {
        self.caller_saved()
    }

    /// The registers assumed live at the target of an indirect jump whose
    /// jump table cannot be recovered (§3.5): all of them.
    #[inline]
    pub fn unknown_jump_live(&self) -> RegSet {
        RegSet::ALL
    }
}

impl Default for CallingStandard {
    fn default() -> CallingStandard {
        CallingStandard::alpha_nt()
    }
}

impl crate::Snap for CallingStandard {
    fn snap(&self, w: &mut crate::SnapWriter) {
        self.argument.snap(w);
        self.return_value.snap(w);
        self.callee_saved.snap(w);
        self.temporary.snap(w);
        self.special.snap(w);
    }
    fn unsnap(r: &mut crate::SnapReader<'_>) -> Result<Self, crate::SnapError> {
        Ok(CallingStandard {
            argument: crate::Snap::unsnap(r)?,
            return_value: crate::Snap::unsnap(r)?,
            callee_saved: crate::Snap::unsnap(r)?,
            temporary: crate::Snap::unsnap(r)?,
            special: crate::Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_sets_partition_the_register_file() {
        let std = CallingStandard::alpha_nt();
        let all = std.argument()
            | std.return_value()
            | std.callee_saved()
            | std.temporary()
            | std.special();
        assert_eq!(all, RegSet::ALL, "every register has a role");

        // Pairwise disjoint.
        let sets = [
            std.argument(),
            std.return_value(),
            std.callee_saved(),
            std.temporary(),
            std.special(),
        ];
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    assert!(a.is_disjoint(*b), "roles {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn documented_examples_hold() {
        let std = CallingStandard::alpha_nt();
        assert!(std.argument().contains(Reg::A0));
        assert!(std.argument().contains(Reg::fp(16)));
        assert!(std.return_value().contains(Reg::V0));
        assert!(std.callee_saved().contains(Reg::S0));
        assert!(std.callee_saved().contains(Reg::FP));
        assert!(std.callee_saved().contains(Reg::fp(2)));
        assert!(std.temporary().contains(Reg::T0));
        assert!(std.temporary().contains(Reg::PV));
        assert!(std.special().contains(Reg::SP));
        assert!(std.special().contains(Reg::ZERO));
    }

    #[test]
    fn unknown_call_assumptions_follow_section_3_5() {
        let std = CallingStandard::alpha_nt();
        assert!(std.unknown_call_used().contains(Reg::A0));
        assert!(std.unknown_call_defined().contains(Reg::V0));
        assert!(std.unknown_call_killed().contains(Reg::T0));
        assert!(std.unknown_call_killed().contains(Reg::RA));
        // Callee-saved registers are never assumed killed.
        assert!(std.unknown_call_killed().is_disjoint(std.callee_saved()));
        assert_eq!(std.unknown_jump_live(), RegSet::ALL);
    }

    #[test]
    fn caller_saved_is_superset_of_temporaries_and_args() {
        let std = CallingStandard::alpha_nt();
        assert!(std.temporary().is_subset(std.caller_saved()));
        assert!(std.argument().is_subset(std.caller_saved()));
        assert!(std.return_value().is_subset(std.caller_saved()));
        assert!(std.caller_saved().is_disjoint(std.callee_saved()));
    }
}
