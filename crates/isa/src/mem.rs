//! Deterministic memory accounting for analysis structures.
//!
//! Table 2 and Figure 15 of the paper report the memory required to perform
//! interprocedural dataflow analysis. Resident-set measurements are not
//! reproducible across machines and allocators, so this workspace instead
//! counts the bytes of every live analysis structure with the [`HeapSize`]
//! trait: `size_of::<T>()` for the value itself plus all heap storage it
//! owns, recursively.

/// Types that can report the heap bytes they own.
///
/// [`HeapSize::heap_bytes`] counts owned heap allocations only; the
/// inline size of the value is `size_of::<Self>()` and is added by
/// [`HeapSize::total_bytes`]. Collections report their *capacity*, matching
/// what an allocator would have handed out.
///
/// ```
/// use spike_isa::HeapSize;
/// let v: Vec<u32> = Vec::with_capacity(8);
/// assert_eq!(v.heap_bytes(), 8 * 4);
/// assert_eq!(v.total_bytes(), std::mem::size_of::<Vec<u32>>() + 32);
/// ```
pub trait HeapSize {
    /// Bytes of owned heap storage, recursively.
    fn heap_bytes(&self) -> usize;

    /// Inline size plus owned heap storage.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

/// Deep clone that preserves every collection's *capacity*, so the clone
/// reports exactly the same [`HeapSize::heap_bytes`] as its source.
///
/// `Clone` on a `Vec` allocates exactly `len` elements, silently
/// compacting the growth slack the original accumulated — which changes
/// `heap_bytes` and with it `AnalysisStats::memory_bytes`. Pipelines
/// that fork an analysis and still promise capacity-exact accounting
/// (the incremental re-analysis contract) must clone through this trait
/// instead.
///
/// ```
/// use spike_isa::{CloneExact, HeapSize};
/// let mut v: Vec<u32> = Vec::with_capacity(8);
/// v.push(1);
/// assert_ne!(v.clone().heap_bytes(), v.heap_bytes());
/// assert_eq!(v.clone_exact().heap_bytes(), v.heap_bytes());
/// ```
pub trait CloneExact {
    /// Clones `self`, reproducing the exact heap capacities of every
    /// owned collection.
    fn clone_exact(&self) -> Self;
}

/// Implements [`CloneExact`] for `Copy` types (no owned heap, so a bit
/// copy is already exact).
#[macro_export]
macro_rules! impl_clone_exact_for_copy {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::CloneExact for $t {
            #[inline]
            fn clone_exact(&self) -> Self { *self }
        })*
    };
}

macro_rules! impl_heap_size_zero {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_heap_size_zero!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    (),
    crate::Reg,
    crate::RegSet,
    crate::Instruction
);

impl_clone_exact_for_copy!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    (),
    crate::Reg,
    crate::RegSet,
    crate::Instruction,
    crate::CallingStandard
);

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: CloneExact> CloneExact for Vec<T> {
    fn clone_exact(&self) -> Vec<T> {
        let mut v = Vec::with_capacity(self.capacity());
        v.extend(self.iter().map(CloneExact::clone_exact));
        v
    }
}

impl<T: CloneExact> CloneExact for Box<T> {
    fn clone_exact(&self) -> Box<T> {
        Box::new(self.as_ref().clone_exact())
    }
}

impl<T: CloneExact> CloneExact for Option<T> {
    fn clone_exact(&self) -> Option<T> {
        self.as_ref().map(CloneExact::clone_exact)
    }
}

impl CloneExact for String {
    fn clone_exact(&self) -> String {
        let mut s = String::with_capacity(self.capacity());
        s.push_str(self);
        s
    }
}

impl<A: CloneExact, B: CloneExact> CloneExact for (A, B) {
    fn clone_exact(&self) -> (A, B) {
        (self.0.clone_exact(), self.1.clone_exact())
    }
}

impl<A: CloneExact, B: CloneExact, C: CloneExact> CloneExact for (A, B, C) {
    fn clone_exact(&self) -> (A, B, C) {
        (self.0.clone_exact(), self.1.clone_exact(), self.2.clone_exact())
    }
}

impl<K: CloneExact + Ord, V: CloneExact> CloneExact for std::collections::BTreeMap<K, V> {
    fn clone_exact(&self) -> Self {
        // BTreeMap allocates per node from `len` alone, so rebuilding
        // from the entries reproduces the accounting exactly.
        self.iter().map(|(k, v)| (k.clone_exact(), v.clone_exact())).collect()
    }
}

impl<T: CloneExact + Ord> CloneExact for std::collections::BTreeSet<T> {
    fn clone_exact(&self) -> Self {
        self.iter().map(CloneExact::clone_exact).collect()
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for std::collections::BTreeMap<K, V> {
    fn heap_bytes(&self) -> usize {
        // BTreeMap nodes are opaque; approximate with entry payloads plus a
        // small per-entry node overhead, which is stable across runs.
        self.iter()
            .map(|(k, v)| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<V>()
                    + k.heap_bytes()
                    + v.heap_bytes()
            })
            .sum::<usize>()
            + self.len() * 2 * std::mem::size_of::<usize>()
    }
}

impl<T: HeapSize> HeapSize for std::collections::BTreeSet<T> {
    fn heap_bytes(&self) -> usize {
        self.iter().map(|v| std::mem::size_of::<T>() + v.heap_bytes()).sum::<usize>()
            + self.len() * 2 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_own_no_heap() {
        assert_eq!(42u32.heap_bytes(), 0);
        assert_eq!(42u32.total_bytes(), 4);
        assert_eq!(crate::RegSet::ALL.heap_bytes(), 0);
    }

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }

    #[test]
    fn nested_vectors_count_recursively() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let inline = v.capacity() * std::mem::size_of::<Vec<u8>>();
        assert_eq!(v.heap_bytes(), inline + 30);
    }

    #[test]
    fn string_counts_capacity() {
        let s = String::from("hello");
        assert!(s.heap_bytes() >= 5);
    }

    #[test]
    fn option_and_box() {
        let b: Box<u64> = Box::new(7);
        assert_eq!(b.heap_bytes(), 8);
        let o: Option<Vec<u8>> = Some(Vec::with_capacity(4));
        assert_eq!(o.heap_bytes(), 4);
        assert_eq!(None::<Vec<u8>>.heap_bytes(), 0);
    }

    #[test]
    fn clone_exact_preserves_capacity_slack() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        v.push(2);
        assert_eq!(v.clone().heap_bytes(), 2 * 8, "Clone compacts to len");
        assert_eq!(v.clone_exact().heap_bytes(), v.heap_bytes());
        assert_eq!(v.clone_exact(), v);

        let mut nested: Vec<Vec<u8>> = Vec::with_capacity(4);
        nested.push(Vec::with_capacity(32));
        assert_eq!(nested.clone_exact().heap_bytes(), nested.heap_bytes());

        let mut s = String::with_capacity(64);
        s.push_str("hi");
        assert_eq!(s.clone_exact().heap_bytes(), 64);
        assert_eq!(s.clone_exact(), s);

        let o: Option<Vec<u8>> = Some(Vec::with_capacity(4));
        assert_eq!(o.clone_exact().heap_bytes(), 4);
    }

    #[test]
    fn btree_map_is_deterministic() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(1u32, 2u64);
        m.insert(3u32, 4u64);
        let a = m.heap_bytes();
        let m2 = m.clone();
        assert_eq!(a, m2.heap_bytes());
        assert!(a > 0);
    }
}
