//! Deterministic memory accounting for analysis structures.
//!
//! Table 2 and Figure 15 of the paper report the memory required to perform
//! interprocedural dataflow analysis. Resident-set measurements are not
//! reproducible across machines and allocators, so this workspace instead
//! counts the bytes of every live analysis structure with the [`HeapSize`]
//! trait: `size_of::<T>()` for the value itself plus all heap storage it
//! owns, recursively.

/// Types that can report the heap bytes they own.
///
/// [`HeapSize::heap_bytes`] counts owned heap allocations only; the
/// inline size of the value is `size_of::<Self>()` and is added by
/// [`HeapSize::total_bytes`]. Collections report their *capacity*, matching
/// what an allocator would have handed out.
///
/// ```
/// use spike_isa::HeapSize;
/// let v: Vec<u32> = Vec::with_capacity(8);
/// assert_eq!(v.heap_bytes(), 8 * 4);
/// assert_eq!(v.total_bytes(), std::mem::size_of::<Vec<u32>>() + 32);
/// ```
pub trait HeapSize {
    /// Bytes of owned heap storage, recursively.
    fn heap_bytes(&self) -> usize;

    /// Inline size plus owned heap storage.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

macro_rules! impl_heap_size_zero {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_heap_size_zero!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    (),
    crate::Reg,
    crate::RegSet,
    crate::Instruction
);

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for std::collections::BTreeMap<K, V> {
    fn heap_bytes(&self) -> usize {
        // BTreeMap nodes are opaque; approximate with entry payloads plus a
        // small per-entry node overhead, which is stable across runs.
        self.iter()
            .map(|(k, v)| {
                std::mem::size_of::<K>()
                    + std::mem::size_of::<V>()
                    + k.heap_bytes()
                    + v.heap_bytes()
            })
            .sum::<usize>()
            + self.len() * 2 * std::mem::size_of::<usize>()
    }
}

impl<T: HeapSize> HeapSize for std::collections::BTreeSet<T> {
    fn heap_bytes(&self) -> usize {
        self.iter().map(|v| std::mem::size_of::<T>() + v.heap_bytes()).sum::<usize>()
            + self.len() * 2 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_own_no_heap() {
        assert_eq!(42u32.heap_bytes(), 0);
        assert_eq!(42u32.total_bytes(), 4);
        assert_eq!(crate::RegSet::ALL.heap_bytes(), 0);
    }

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }

    #[test]
    fn nested_vectors_count_recursively() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let inline = v.capacity() * std::mem::size_of::<Vec<u8>>();
        assert_eq!(v.heap_bytes(), inline + 30);
    }

    #[test]
    fn string_counts_capacity() {
        let s = String::from("hello");
        assert!(s.heap_bytes() >= 5);
    }

    #[test]
    fn option_and_box() {
        let b: Box<u64> = Box::new(7);
        assert_eq!(b.heap_bytes(), 8);
        let o: Option<Vec<u8>> = Some(Vec::with_capacity(4));
        assert_eq!(o.heap_bytes(), 4);
        assert_eq!(None::<Vec<u8>>.heap_bytes(), 0);
    }

    #[test]
    fn btree_map_is_deterministic() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(1u32, 2u64);
        m.insert(3u32, 4u64);
        let a = m.heap_bytes();
        let m2 = m.clone();
        assert_eq!(a, m2.heap_bytes());
        assert!(a > 0);
    }
}
