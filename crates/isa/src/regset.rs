//! Dense bitsets over the architectural register file.

use std::fmt;
use std::ops::{
    BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not, Sub, SubAssign,
};

use crate::reg::Reg;

#[cfg(test)]
use crate::reg::NUM_REGS;

/// A set of architectural registers, represented as a 64-bit bitset.
///
/// `RegSet` is the currency of every dataflow computation in this
/// workspace: per-block `DEF`/`UBD` sets, flow-summary-edge labels, and the
/// per-routine `MAY-USE`/`MAY-DEF`/`MUST-DEF` summaries are all `RegSet`s.
/// All operations are O(1).
///
/// ```
/// use spike_isa::{Reg, RegSet};
///
/// let a = RegSet::of(&[Reg::V0, Reg::A0]);
/// let b = RegSet::of(&[Reg::A0, Reg::A1]);
/// assert_eq!(a | b, RegSet::of(&[Reg::V0, Reg::A0, Reg::A1]));
/// assert_eq!(a & b, RegSet::of(&[Reg::A0]));
/// assert_eq!(a - b, RegSet::of(&[Reg::V0]));
/// assert_eq!((a | b).len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty register set.
    pub const EMPTY: RegSet = RegSet(0);

    /// The set of every architectural register, including the zero
    /// registers.
    pub const ALL: RegSet = RegSet(u64::MAX);

    /// Creates an empty set. Equivalent to [`RegSet::EMPTY`].
    #[inline]
    pub const fn new() -> RegSet {
        RegSet(0)
    }

    /// Creates a set containing exactly the given registers.
    #[inline]
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::new();
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Creates a set containing the single register `r`.
    #[inline]
    pub const fn singleton(r: Reg) -> RegSet {
        RegSet(1u64 << r.index())
    }

    /// Creates a set from its raw 64-bit representation. Bit `i`
    /// corresponds to [`Reg::from_index`]`(i)`.
    #[inline]
    pub const fn from_bits(bits: u64) -> RegSet {
        RegSet(bits)
    }

    /// The raw 64-bit representation of the set.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Inserts `r`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, r: Reg) -> bool {
        let prev = self.0;
        self.0 |= 1u64 << r.index();
        self.0 != prev
    }

    /// Removes `r`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, r: Reg) -> bool {
        let prev = self.0;
        self.0 &= !(1u64 << r.index());
        self.0 != prev
    }

    /// Whether `r` is in the set.
    #[inline]
    pub const fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The number of registers in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `self` is a subset of `other` (not necessarily proper).
    #[inline]
    pub const fn is_subset(self, other: RegSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self` and `other` have no register in common.
    #[inline]
    pub const fn is_disjoint(self, other: RegSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union; identical to `self | other`.
    #[inline]
    pub const fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection; identical to `self & other`.
    #[inline]
    pub const fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference; identical to `self - other`.
    #[inline]
    pub const fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates over the registers in the set in ascending index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

impl BitOr for RegSet {
    type Output = RegSet;
    #[inline]
    fn bitor(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for RegSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: RegSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for RegSet {
    type Output = RegSet;
    #[inline]
    fn bitand(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & rhs.0)
    }
}

impl BitAndAssign for RegSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: RegSet) {
        self.0 &= rhs.0;
    }
}

impl BitXor for RegSet {
    type Output = RegSet;
    #[inline]
    fn bitxor(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for RegSet {
    #[inline]
    fn bitxor_assign(&mut self, rhs: RegSet) {
        self.0 ^= rhs.0;
    }
}

impl Sub for RegSet {
    type Output = RegSet;
    #[inline]
    fn sub(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & !rhs.0)
    }
}

impl SubAssign for RegSet {
    #[inline]
    fn sub_assign(&mut self, rhs: RegSet) {
        self.0 &= !rhs.0;
    }
}

impl Not for RegSet {
    type Output = RegSet;
    #[inline]
    fn not(self) -> RegSet {
        RegSet(!self.0)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl From<Reg> for RegSet {
    fn from(r: Reg) -> RegSet {
        RegSet::singleton(r)
    }
}

impl IntoIterator for RegSet {
    type Item = Reg;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the registers in a [`RegSet`], ascending by index.
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = Reg;

    #[inline]
    fn next(&mut self) -> Option<Reg> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(Reg::from_index(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{r}")?;
        }
        f.write_str("}")
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegSet{self}")
    }
}

impl fmt::Binary for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Reg::V0));
        assert!(!s.insert(Reg::V0));
        assert!(s.contains(Reg::V0));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Reg::V0));
        assert!(!s.remove(Reg::V0));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra_matches_boolean_identities() {
        let a = RegSet::of(&[Reg::V0, Reg::A0, Reg::F0]);
        let b = RegSet::of(&[Reg::A0, Reg::RA]);
        assert_eq!((a | b) - b, a - b);
        assert_eq!(a & (a | b), a);
        assert_eq!(a | (a & b), a);
        assert_eq!(a ^ b, (a | b) - (a & b));
        assert_eq!(!(!a), a);
    }

    #[test]
    fn difference_is_not_symmetric() {
        let a = RegSet::of(&[Reg::V0, Reg::A0]);
        let b = RegSet::of(&[Reg::A0]);
        assert_eq!(a - b, RegSet::singleton(Reg::V0));
        assert_eq!(b - a, RegSet::EMPTY);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = RegSet::of(&[Reg::V0, Reg::A0]);
        let b = RegSet::of(&[Reg::A0]);
        assert!(b.is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.is_subset(a));
        assert!(a.is_disjoint(RegSet::singleton(Reg::RA)));
        assert!(!a.is_disjoint(b));
        assert!(RegSet::EMPTY.is_subset(b));
    }

    #[test]
    fn iter_yields_ascending_order() {
        let s = RegSet::of(&[Reg::RA, Reg::V0, Reg::F0, Reg::A1]);
        let v: Vec<usize> = s.iter().map(Reg::index).collect();
        assert_eq!(v, vec![0, 17, 26, 32]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn collect_round_trips() {
        let s = RegSet::of(&[Reg::T0, Reg::SP, Reg::FZERO]);
        let collected: RegSet = s.iter().collect();
        assert_eq!(collected, s);
    }

    #[test]
    fn display_lists_register_names() {
        let s = RegSet::of(&[Reg::V0, Reg::A0]);
        assert_eq!(s.to_string(), "{v0, a0}");
        assert_eq!(RegSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn all_contains_everything() {
        for r in Reg::all() {
            assert!(RegSet::ALL.contains(r));
        }
        assert_eq!(RegSet::ALL.len(), NUM_REGS);
    }
}
