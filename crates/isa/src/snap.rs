//! `Snap`: a compact, versioned binary serialization for the analysis
//! structures, built for warm-cache snapshots.
//!
//! The encoding has one unusual obligation that rules out every
//! off-the-shelf format: it must round-trip **`Vec` capacities**, not
//! just contents. [`HeapSize`](crate::HeapSize) charges capacity, the
//! daemon's memory accounting is asserted bit-identical between
//! incremental and from-scratch runs, and a restored snapshot entry is
//! used as a re-analysis donor — so a `Vec` that comes back with a
//! different capacity would change `memory_bytes` and trip the
//! equality properties. `Vec<T>` therefore encodes as
//! `(capacity, len, items…)` and decodes via `Vec::with_capacity`.
//!
//! Everything else is deliberately plain: little-endian fixed-width
//! integers, `u8` enum tags, no self-description. Integrity is the
//! *container's* job — snapshot files carry a checksum over the whole
//! payload and a format version, and decoding only runs after both
//! check out. The decoder still never panics on malformed input
//! (every read is bounds-checked and every tag validated), so a bad
//! file costs an error, not the daemon.

use std::time::Duration;

/// Errors a [`Snap`] decode can produce. Encoding is infallible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapError {
    /// The buffer ended before the value did.
    Truncated,
    /// A tag or invariant check failed; the payload names the field.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot payload is truncated"),
            SnapError::Malformed(what) => write!(f, "snapshot payload is malformed: {what}"),
        }
    }
}

/// Sink for [`Snap::snap`]. A thin wrapper over a byte vector.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Source for [`Snap::unsnap`]. Every read is bounds-checked.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed — decoders of
    /// containers check this to reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::Malformed("usize overflow"))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }
}

/// Binary snapshot encoding: writes to a [`SnapWriter`], reads back
/// from a [`SnapReader`]. Round-trips values exactly, including `Vec`
/// capacities (see the module docs for why that matters).
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the buffer ends early,
    /// [`SnapError::Malformed`] on an invalid tag or invariant.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool tag")),
        }
    }
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u8()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u64()
    }
}

impl Snap for i64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_i64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_i64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_usize()
    }
}

impl Snap for Duration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_secs());
        w.put_u32(self.subsec_nanos());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let secs = r.get_u64()?;
        let nanos = r.get_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(SnapError::Malformed("duration nanos"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            _ => Err(SnapError::Malformed("option tag")),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity());
        w.put_usize(self.len());
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cap = r.get_usize()?;
        let len = r.get_usize()?;
        if len > cap {
            return Err(SnapError::Malformed("vec len > cap"));
        }
        // Every element encoding is at least one byte, so `len` is
        // bounded by the remaining payload; capacity can legitimately
        // exceed `len` (retained growth), but a corrupt header must
        // cost an error, not an allocation abort — bound it.
        if len > r.remaining() {
            return Err(SnapError::Truncated);
        }
        if cap > (len.max(1)) << 16 {
            return Err(SnapError::Malformed("vec capacity implausible"));
        }
        let mut v = Vec::with_capacity(cap);
        for _ in 0..len {
            v.push(T::unsnap(r)?);
        }
        Ok(v)
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_usize()?;
        let bytes = r.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed("string utf-8"))
    }
}

impl Snap for crate::Reg {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.index() as u8);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_u8()?;
        if usize::from(n) >= crate::NUM_REGS {
            return Err(SnapError::Malformed("register index"));
        }
        Ok(crate::Reg::from_index(usize::from(n)))
    }
}

impl Snap for crate::RegSet {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.bits());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::RegSet::from_bits(r.get_u64()?))
    }
}

impl Snap for crate::MemWidth {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            crate::MemWidth::L => 0,
            crate::MemWidth::Q => 1,
            crate::MemWidth::T => 2,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(crate::MemWidth::L),
            1 => Ok(crate::MemWidth::Q),
            2 => Ok(crate::MemWidth::T),
            _ => Err(SnapError::Malformed("mem width tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CloneExact, HeapSize, MemWidth, Reg, RegSet};

    fn roundtrip<T: Snap>(v: &T) -> T {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("roundtrip decodes");
        assert!(r.is_exhausted(), "decoder must consume every byte");
        back
    }

    #[test]
    fn scalars_roundtrip() {
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&0xAB_u8), 0xAB);
        assert_eq!(roundtrip(&0xDEAD_BEEF_u32), 0xDEAD_BEEF);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&-42_i64), -42);
        assert_eq!(roundtrip(&12345_usize), 12345);
        let d = Duration::new(7, 999_999_999);
        assert_eq!(roundtrip(&d), d);
        assert_eq!(roundtrip(&Some(9_u64)), Some(9));
        assert_eq!(roundtrip(&None::<u64>), None);
        assert_eq!(roundtrip(&"héllo".to_string()), "héllo");
        assert_eq!(roundtrip(&Reg::A0), Reg::A0);
        let set = RegSet::of(&[Reg::A0, Reg::V0, Reg::SP]);
        assert_eq!(roundtrip(&set), set);
        assert_eq!(roundtrip(&MemWidth::T), MemWidth::T);
    }

    #[test]
    fn vec_roundtrip_preserves_capacity() {
        // A vector whose capacity exceeds its length — the shape eviction
        // and incremental reuse leave behind — must come back with the
        // same heap charge, not a shrunk-to-fit one.
        let mut v: Vec<u64> = Vec::with_capacity(32);
        v.extend([1, 2, 3]);
        let back = roundtrip(&v);
        assert_eq!(back, v);
        assert_eq!(back.capacity(), 32);
        assert_eq!(back.heap_bytes(), v.heap_bytes());
        // And it matches what CloneExact produces, since the snapshot
        // path must be indistinguishable from an in-memory deep copy.
        assert_eq!(back.capacity(), v.clone_exact().capacity());
    }

    #[test]
    fn nested_vec_roundtrip() {
        let mut inner = Vec::with_capacity(8);
        inner.extend([RegSet::of(&[Reg::T0]), RegSet::new()]);
        let outer = vec![inner, Vec::with_capacity(4)];
        let back = roundtrip(&outer);
        assert_eq!(back, outer);
        assert_eq!(back.heap_bytes(), outer.heap_bytes());
        assert_eq!(back[0].capacity(), 8);
        assert_eq!(back[1].capacity(), 4);
    }

    #[test]
    fn truncated_and_malformed_inputs_error_cleanly() {
        let mut w = SnapWriter::new();
        vec![1_u64, 2, 3].snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(Vec::<u64>::unsnap(&mut r).is_err(), "cut at {cut} must not decode");
        }
        // A bad enum tag errors rather than panicking.
        let mut r = SnapReader::new(&[9]);
        assert_eq!(MemWidth::unsnap(&mut r), Err(SnapError::Malformed("mem width tag")));
        let mut r = SnapReader::new(&[7]);
        assert_eq!(bool::unsnap(&mut r), Err(SnapError::Malformed("bool tag")));
        // An absurd capacity claim is refused before allocating.
        let mut w = SnapWriter::new();
        w.put_usize(usize::MAX);
        w.put_usize(1);
        w.put_u64(0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(Vec::<u64>::unsnap(&mut r).is_err());
    }
}
