//! # spike-isa
//!
//! The synthetic Alpha-like instruction set architecture used by the Spike
//! reproduction.
//!
//! The PLDI'97 paper analyzed Alpha/NT executables. This crate provides the
//! subset of architectural knowledge that Spike's interprocedural dataflow
//! analysis actually consumes:
//!
//! * a register file of 32 integer + 32 floating-point registers
//!   ([`Reg`]), with dense bitset operations over them ([`RegSet`]),
//! * the Alpha/NT calling standard register roles ([`CallingStandard`]):
//!   argument, return-value, temporary (caller-saved), callee-saved and
//!   special registers,
//! * a concrete instruction set ([`Instruction`]) with per-instruction
//!   definition and use sets, covering ALU operations, loads/stores,
//!   conditional branches, multiway (jump-table) jumps, direct and indirect
//!   calls, and returns,
//! * a 32-bit binary encoding ([`Instruction::encode`] /
//!   [`Instruction::decode`]) so that programs can round-trip through an
//!   executable image, exercising the *post-link-time* nature of the system,
//! * deterministic memory accounting ([`HeapSize`]) used to reproduce the
//!   paper's memory-usage results.
//!
//! # Example
//!
//! ```
//! use spike_isa::{AluOp, Instruction, Reg, RegSet};
//!
//! // t0 = a0 + a1
//! let insn = Instruction::Operate {
//!     op: AluOp::Add,
//!     ra: Reg::A0,
//!     rb: Reg::A1,
//!     rc: Reg::T0,
//! };
//! assert_eq!(insn.uses(), RegSet::of(&[Reg::A0, Reg::A1]));
//! assert_eq!(insn.defs(), RegSet::of(&[Reg::T0]));
//!
//! // Round-trip through the binary encoding.
//! let word = insn.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), insn);
//! ```

mod callstd;
mod insn;
mod mem;
mod reg;
mod regset;
mod snap;

pub use callstd::CallingStandard;
pub use insn::{AluOp, BranchCond, DecodeError, FpOp, Instruction, MemWidth};
pub use mem::{CloneExact, HeapSize};
pub use reg::{Reg, NUM_REGS};
pub use regset::RegSet;
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
