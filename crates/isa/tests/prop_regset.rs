//! Model-based property tests for [`RegSet`]: every operation must agree
//! with a reference implementation over `BTreeSet<usize>`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use spike_isa::{Reg, RegSet};

fn arb_regs() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..64, 0..20)
}

fn build(regs: &[u8]) -> (RegSet, BTreeSet<usize>) {
    let mut s = RegSet::new();
    let mut m = BTreeSet::new();
    for &r in regs {
        s.insert(Reg::from_index(r as usize));
        m.insert(r as usize);
    }
    (s, m)
}

fn model_of(s: RegSet) -> BTreeSet<usize> {
    s.iter().map(|r| r.index()).collect()
}

proptest! {
    #[test]
    fn construction_matches_model(a in arb_regs()) {
        let (s, m) = build(&a);
        prop_assert_eq!(model_of(s), m.clone());
        prop_assert_eq!(s.len(), m.len());
        prop_assert_eq!(s.is_empty(), m.is_empty());
    }

    #[test]
    fn union_intersection_difference_match_model(a in arb_regs(), b in arb_regs()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        prop_assert_eq!(model_of(sa | sb), ma.union(&mb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(model_of(sa & sb), ma.intersection(&mb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(model_of(sa - sb), ma.difference(&mb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(
            model_of(sa ^ sb),
            ma.symmetric_difference(&mb).copied().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn subset_and_disjoint_match_model(a in arb_regs(), b in arb_regs()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        prop_assert_eq!(sa.is_subset(sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn de_morgan_holds(a in arb_regs(), b in arb_regs()) {
        let (sa, _) = build(&a);
        let (sb, _) = build(&b);
        prop_assert_eq!(!(sa | sb), (!sa) & (!sb));
        prop_assert_eq!(!(sa & sb), (!sa) | (!sb));
    }

    #[test]
    fn insert_remove_round_trip(a in arb_regs(), r in 0u8..64) {
        let (mut s, _) = build(&a);
        let reg = Reg::from_index(r as usize);
        let had = s.contains(reg);
        let inserted = s.insert(reg);
        prop_assert_eq!(inserted, !had);
        prop_assert!(s.contains(reg));
        let removed = s.remove(reg);
        prop_assert!(removed);
        prop_assert!(!s.contains(reg));
    }

    #[test]
    fn bits_round_trip(bits in any::<u64>()) {
        prop_assert_eq!(RegSet::from_bits(bits).bits(), bits);
    }
}
