//! Property tests for the instruction encoding.

use proptest::prelude::*;
use spike_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg};

fn arb_ireg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::int)
}

fn arb_freg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::fp)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::CmpEq),
        Just(AluOp::CmpLt),
        Just(AluOp::CmpLe),
        Just(AluOp::CmpUlt),
        Just(AluOp::CmovEq),
        Just(AluOp::CmovNe),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Le),
        Just(BranchCond::Ge),
        Just(BranchCond::Gt),
        Just(BranchCond::Lbc),
        Just(BranchCond::Lbs),
    ]
}

fn arb_fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::CmpEq),
        Just(FpOp::CmpLt),
    ]
}

fn arb_disp21() -> impl Strategy<Value = i32> {
    -(1i32 << 20)..(1i32 << 20)
}

fn arb_disp26() -> impl Strategy<Value = i32> {
    -(1i32 << 25)..(1i32 << 25)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_alu_op(), arb_ireg(), arb_ireg(), arb_ireg())
            .prop_map(|(op, ra, rb, rc)| Instruction::Operate { op, ra, rb, rc }),
        (arb_alu_op(), arb_ireg(), any::<u8>(), arb_ireg())
            .prop_map(|(op, ra, imm, rc)| Instruction::OperateImm { op, ra, imm, rc }),
        (arb_ireg(), arb_ireg(), any::<i16>()).prop_map(|(rd, base, disp)| Instruction::Lda {
            rd,
            base,
            disp
        }),
        (arb_ireg(), arb_ireg(), any::<i16>()).prop_map(|(rd, base, disp)| Instruction::Ldah {
            rd,
            base,
            disp
        }),
        (arb_ireg(), arb_ireg(), any::<i16>(), prop_oneof![Just(MemWidth::L), Just(MemWidth::Q)])
            .prop_map(|(rd, base, disp, width)| Instruction::Load { width, rd, base, disp }),
        (arb_freg(), arb_ireg(), any::<i16>()).prop_map(|(rd, base, disp)| Instruction::Load {
            width: MemWidth::T,
            rd,
            base,
            disp
        }),
        (arb_ireg(), arb_ireg(), any::<i16>(), prop_oneof![Just(MemWidth::L), Just(MemWidth::Q)])
            .prop_map(|(rs, base, disp, width)| Instruction::Store { width, rs, base, disp }),
        (arb_fp_op(), arb_freg(), arb_freg(), arb_freg())
            .prop_map(|(op, fa, fb, fc)| Instruction::FpOperate { op, fa, fb, fc }),
        arb_disp26().prop_map(|disp| Instruction::Br { disp }),
        arb_disp26().prop_map(|disp| Instruction::Bsr { disp }),
        (arb_cond(), arb_ireg(), arb_disp21())
            .prop_map(|(cond, ra, disp)| Instruction::CondBranch { cond, ra, disp }),
        arb_ireg().prop_map(|base| Instruction::Jmp { base }),
        arb_ireg().prop_map(|base| Instruction::Jsr { base }),
        arb_ireg().prop_map(|base| Instruction::Ret { base }),
        Just(Instruction::Halt),
        Just(Instruction::PutInt),
    ]
}

proptest! {
    /// Every encodable instruction decodes back to itself.
    #[test]
    fn encode_decode_round_trip(insn in arb_instruction()) {
        let word = insn.encode();
        prop_assert_eq!(Instruction::decode(word), Ok(insn));
    }

    /// Decoding any word either fails or re-encodes to a word that decodes
    /// to the same instruction (decode is a partial inverse of encode).
    #[test]
    fn decode_encode_is_stable(word in any::<u32>()) {
        if let Ok(insn) = Instruction::decode(word) {
            let word2 = insn.encode();
            prop_assert_eq!(Instruction::decode(word2), Ok(insn));
        }
    }

    /// Defs and uses never mention the hardwired zero registers.
    #[test]
    fn def_use_never_contains_zero_registers(insn in arb_instruction()) {
        prop_assert!(!insn.defs().contains(Reg::ZERO));
        prop_assert!(!insn.defs().contains(Reg::FZERO));
        prop_assert!(!insn.uses().contains(Reg::ZERO));
        prop_assert!(!insn.uses().contains(Reg::FZERO));
    }
}
