//! The profile-driven program generator.
//!
//! Produces valid (analyzable, loadable) programs whose shape statistics —
//! routines, basic blocks, instructions, calls/branches/exits per routine —
//! match a [`Profile`](crate::Profile)'s Table 2/3 targets. The emission
//! scheme mirrors how compiled code actually lands:
//!
//! * basic blocks are created by the terminators themselves (each call and
//!   branch ends one), and forward-branch targets are placed at existing
//!   block boundaries, so `blocks ≈ calls + branches + extra exits` per
//!   routine — the identity the paper's Tables 2 and 3 obey;
//! * a fraction of multiway branches sit in call-bearing loops (the
//!   Figure-12 pattern), which is what makes branch nodes pay off in the
//!   Table 4 ablation;
//! * routines save and restore callee-saved registers with real
//!   prologue/epilogue store/load sequences, so §3.4 filtering has
//!   something to find;
//! * framed routines carry a scratch area whose loads follow the same
//!   MUST-defined discipline as register reads (a slot is reloaded only
//!   when a store on every path wrote it), so the stack-slot lints stay
//!   clean by construction — while scratch stores are free to go unread,
//!   giving the dead-stack-store pass real work;
//! * indirect calls appear both with recovered target lists and as
//!   unknown-target calls (§3.5).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use spike_isa::{AluOp, BranchCond, Reg, RegSet};
use spike_program::{Program, ProgramBuilder, RoutineBuilder};

use crate::profiles::Profile;

/// Generates a program matching `profile`'s shape statistics,
/// deterministically from `seed`.
///
/// `scale` multiplies the routine count (and thereby total size) while
/// preserving all per-routine densities; `scale = 1.0` reproduces the
/// paper's benchmark sizes. At least two routines are always generated.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive.
pub fn generate(profile: &Profile, scale: f64, seed: u64) -> Program {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    let n = ((profile.routines as f64 * scale).round() as usize).max(2);
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let mut rng =
            StdRng::seed_from_u64(splitmix(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        emit_routine(&mut b, profile, n, i, &mut rng);
    }
    b.build().expect("generated program must be valid")
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Samples a non-negative count with mean `mean` (Knuth's Poisson; means
/// in these profiles stay below ~30, where this is exact and fast).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numeric safety net; unreachable for sane means
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    Call,
    Branch,
    Multiway,
    /// A dispatch loop: one `k`-way multiway branch in a loop with a call
    /// behind every case (the Figure-12 pattern at scale).
    Dispatch(usize),
    /// A dispatch loop built from a chain of two-way branches (§3.6's
    /// many-conditional-branches-in-a-loop case); branch nodes cannot
    /// compress it.
    BinaryDispatch(usize),
    Exit,
}

const TEMPS: [Reg; 8] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::int(5), Reg::int(6), Reg::int(22), Reg::int(23)];
const ARGS: [Reg; 4] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];
const SAVED: [Reg; 4] = [Reg::S0, Reg::S1, Reg::S2, Reg::int(12)];
const CONDS: [BranchCond; 4] = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Ge];

struct Emitter<'a, 'b> {
    r: &'a mut RoutineBuilder,
    rng: &'b mut StdRng,
    /// Labels created by forward branches, each with a countdown of
    /// boundaries still to skip. Labels are always placed *at* an event
    /// boundary so they coincide with an existing block leader and create
    /// no extra block; a countdown above one lets the branch bypass later
    /// events (including call sites).
    pending: Vec<(String, usize)>,
    /// Labels at past boundaries, usable as backward-branch targets.
    back_labels: Vec<String>,
    next_label: usize,
    /// Callee-saved registers this routine saves (restored at each exit).
    saved: Vec<Reg>,
    saves_ra: bool,
    frame: i16,
    emitted: usize,
    /// Registers defined on every path to the current emission point.
    /// Reads are materialized against this set so generated programs are
    /// free of uninitialized register reads (`spike lint` dogfoods every
    /// profile, so the generator must be defect-free by construction).
    valid: RegSet,
    /// The floor `valid` resets to at labels (join points): `sp` always,
    /// plus `a0`/`a1` for routines whose every call site sets both.
    base: RegSet,
    /// SP-relative offsets of the frame's scratch slots (empty when the
    /// routine has no frame).
    scratch: Vec<i16>,
    /// Bitmask over `scratch` of slots stored on every path to the
    /// current emission point — the slot analogue of `valid`. Resets to
    /// empty at every label, exactly where `valid` resets to `base`.
    slots_valid: u32,
}

impl Emitter<'_, '_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_label += 1;
        format!("{prefix}{}", self.next_label)
    }

    fn temp(&mut self) -> Reg {
        TEMPS[self.rng.gen_range(0..TEMPS.len())]
    }

    /// Picks a register to mention: temporaries, arguments, the return
    /// value, and saved callee-saved registers all appear, giving the
    /// dataflow sets realistic variety. The pick carries no definedness
    /// guarantee — see [`read_reg`](Emitter::read_reg).
    fn pick_reg(&mut self) -> Reg {
        match self.rng.gen_range(0..10) {
            0..=4 => self.temp(),
            5..=6 => ARGS[self.rng.gen_range(0..ARGS.len())],
            7 => Reg::V0,
            8 if !self.saved.is_empty() => self.saved[self.rng.gen_range(0..self.saved.len())],
            _ => self.temp(),
        }
    }

    /// Ensures `reg` is defined on every path to this point, materializing
    /// it with an `lda` if it is not already.
    fn defined(&mut self, reg: Reg) -> Reg {
        if !self.valid.contains(reg) {
            let v = self.rng.gen_range(-128..=127i16);
            self.r.lda(reg, Reg::ZERO, v);
            self.emitted += 1;
            self.valid.insert(reg);
        }
        reg
    }

    /// A register that is safe to read here.
    fn read_reg(&mut self) -> Reg {
        let reg = self.pick_reg();
        self.defined(reg)
    }

    /// Resets path-sensitive definedness at a join point: only `base`
    /// registers and no scratch slots are certain there.
    fn join(&mut self) {
        self.valid = self.base;
        self.slots_valid = 0;
    }

    fn arith(&mut self) {
        let op =
            [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And][self.rng.gen_range(0..5)];
        let (a, b2) = (self.read_reg(), self.read_reg());
        let d = self.temp();
        self.r.op(op, a, b2, d);
        self.valid.insert(d);
    }

    fn pad(&mut self, n: usize) {
        for _ in 0..n {
            self.emitted += 1;
            match self.rng.gen_range(0..8) {
                0 => {
                    let d = self.temp();
                    let v = self.rng.gen_range(-128..=127i16);
                    self.r.lda(d, Reg::ZERO, v);
                    self.valid.insert(d);
                }
                1 => {
                    // Reload a scratch slot only when a store on every path
                    // here wrote it — the slot analogue of `read_reg`.
                    let defined: Vec<usize> = (0..self.scratch.len())
                        .filter(|i| self.slots_valid & (1 << i) != 0)
                        .collect();
                    if defined.is_empty() {
                        self.arith();
                    } else {
                        let off = self.scratch[defined[self.rng.gen_range(0..defined.len())]];
                        let d = self.temp();
                        self.r.load(d, Reg::SP, off);
                        self.valid.insert(d);
                    }
                }
                2 if !self.scratch.is_empty() => {
                    // Store data is exempt from definedness (the prologue
                    // save idiom stores the caller's registers unread), so
                    // an unmaterialized pick is fine here. The slot itself
                    // may well stay unread — a dead stack store for the
                    // optimizer to find.
                    let i = self.rng.gen_range(0..self.scratch.len());
                    let s = self.pick_reg();
                    self.r.store(s, Reg::SP, self.scratch[i]);
                    self.slots_valid |= 1 << i;
                }
                _ => self.arith(),
            }
        }
    }

    /// Places due pending labels at the current position — called right
    /// after a terminator, where a block boundary already exists.
    fn boundary(&mut self) {
        let mut placed_any = false;
        let mut still_pending = Vec::with_capacity(self.pending.len());
        for (label, countdown) in std::mem::take(&mut self.pending) {
            if countdown <= 1 {
                self.r.label(&label);
                if !placed_any && self.rng.gen_bool(0.5) {
                    // Boundaries double as backward-branch targets.
                    self.back_labels.push(label.clone());
                }
                placed_any = true;
            } else {
                still_pending.push((label, countdown - 1));
            }
        }
        self.pending = still_pending;
        if !placed_any && self.rng.gen_bool(0.35) {
            let l = self.fresh("bk");
            self.r.label(&l);
            self.back_labels.push(l);
            placed_any = true;
        }
        if placed_any {
            // A label is a join point: only `base` survives the meet.
            self.join();
        }
    }

    fn epilogue(&mut self) {
        for (i, &s) in self.saved.clone().iter().enumerate() {
            self.r.load(s, Reg::SP, 8 * i as i16);
            self.emitted += 1;
        }
        if self.saves_ra {
            self.r.load(Reg::RA, Reg::SP, self.frame - 8);
            self.emitted += 1;
        }
        if self.frame > 0 {
            self.r.lda(Reg::SP, Reg::SP, self.frame);
            self.emitted += 1;
        }
        self.r.ret();
        self.emitted += 1;
    }
}

fn emit_routine(
    b: &mut ProgramBuilder,
    p: &Profile,
    n_routines: usize,
    idx: usize,
    rng: &mut StdRng,
) {
    let name = format!("r{idx}");
    let exported = idx != 0 && rng.gen_bool(p.exported_frac);

    // Dispatch-style routines (rare): every call hides behind one big
    // multiway branch (or §3.6 binary-branch chain) in a loop. Their call
    // appetite is compensated in the plain-call mean so the Table 3
    // calls/routine statistic holds.
    let dispatch_frac = (p.fig12_frac / 8.0).min(1.0);
    let dispatch_k = (3.0 * p.calls_per_routine).clamp(8.0, 40.0) as usize;
    let binary_k = p.calls_per_routine.clamp(4.0, 12.0) as usize;
    let dispatch = rng.gen_bool(dispatch_frac);
    let binary_dispatch = !dispatch && rng.gen_bool(p.binary_dispatch_frac);
    let consumed = dispatch_frac * dispatch_k as f64
        + (1.0 - dispatch_frac) * p.binary_dispatch_frac * binary_k as f64;
    let plain_call_mean = ((p.calls_per_routine - consumed)
        / ((1.0 - dispatch_frac) * (1.0 - p.binary_dispatch_frac)).max(1e-9))
    .max(0.3);

    let n_calls = if dispatch || binary_dispatch { 0 } else { poisson(rng, plain_call_mean) };
    // Calling routines also get a hot counted loop over invariant frame
    // slots (emitted right after the prologue) — the shape the
    // profile-guided loop optimizer exists for.
    let hot_loop = n_calls > 0 || dispatch || binary_dispatch;
    // Dispatch loops contribute their own branch instructions (the
    // selector chain and the per-case back-branches); charge them against
    // the routine's branch budget so Table 3 and block counts hold. The
    // hot loop adds two more conditional branches.
    let branch_mean = if binary_dispatch {
        (p.branches_per_routine - 2.0 * binary_k as f64).max(0.5)
    } else if dispatch {
        (p.branches_per_routine - dispatch_k as f64).max(0.5)
    } else {
        p.branches_per_routine
    };
    let branch_mean = if hot_loop { (branch_mean - 2.0).max(0.5) } else { branch_mean };
    let n_branches = poisson(rng, branch_mean);
    let n_multi = poisson(rng, p.multiway_per_routine);
    let n_exits = poisson(rng, p.exits_per_routine).max(1);
    let n_alt = poisson(rng, (p.entrances_per_routine - 1.0).max(0.0));

    // Heavy-tailed size factor: most routines small, a few large.
    let factor =
        if rng.gen_bool(0.8) { 0.5 + rng.gen::<f64>() * 0.5 } else { 1.0 + rng.gen::<f64>() * 3.0 };
    let instr_target = (p.instructions_per_routine() * factor) as usize;

    let mut events: Vec<Event> = Vec::new();
    let mut plain_calls = n_calls;
    events.extend(std::iter::repeat_n(Event::Branch, n_branches));
    for _ in 0..n_multi {
        // A multiway branch near calls is common (dispatch to handlers);
        // emit a small call-bearing loop for a fraction of them, drawing
        // the calls from the routine's call budget.
        if rng.gen_bool(0.4) {
            let k = rng.gen_range(2..=4usize).min(plain_calls.max(2));
            plain_calls = plain_calls.saturating_sub(k);
            events.push(Event::Dispatch(k));
        } else {
            events.push(Event::Multiway);
        }
    }
    events.extend(std::iter::repeat_n(Event::Call, plain_calls));
    events.extend(std::iter::repeat_n(Event::Exit, n_exits - 1));
    if dispatch {
        events.push(Event::Dispatch(dispatch_k));
    }
    if binary_dispatch {
        events.push(Event::BinaryDispatch(binary_k));
    }
    events.shuffle(rng);

    // Routines that will grow alternate entrances save nothing: an entrance
    // that skips the prologue would make the epilogue restore garbage into
    // the caller's callee-saved registers — a real clobber `spike lint`
    // would (correctly) flag.
    let saved: Vec<Reg> = if n_alt == 0 && rng.gen_bool(p.callee_saved_frac) {
        SAVED[..rng.gen_range(1..=SAVED.len())].to_vec()
    } else {
        Vec::new()
    };
    let saves_ra = hot_loop;
    // Frame layout, entry SP downwards: saved callee-saved registers at
    // [0, 8s), a 32-byte scratch area above them, `ra` in the top slot.
    // Frameless routines get no scratch and emit no stack traffic at all.
    let scratch_len: i16 = if saved.is_empty() && !saves_ra { 0 } else { 4 };
    let frame: i16 = if scratch_len == 0 {
        0
    } else {
        (8 * saved.len() as i16 + 8 * scratch_len + if saves_ra { 8 } else { 0 } + 15) & !15
    };
    let scratch: Vec<i16> = (0..scratch_len).map(|i| 8 * saved.len() as i16 + 8 * i).collect();

    let r = b.routine(&name);
    if exported {
        r.export();
    }
    // The entry routine is entered with only `sp` defined; every other
    // routine is only ever entered through call sites that set `a0`/`a1`
    // (and exported routines are assumed entered per the calling standard,
    // which also covers the argument registers).
    let base = if idx == 0 {
        RegSet::singleton(Reg::SP)
    } else {
        RegSet::of(&[Reg::SP, Reg::A0, Reg::A1])
    };
    let mut e = Emitter {
        r,
        rng,
        pending: Vec::new(),
        back_labels: Vec::new(),
        next_label: 0,
        saved: saved.clone(),
        saves_ra,
        frame,
        emitted: 0,
        valid: base,
        base,
        scratch,
        slots_valid: 0,
    };

    // Prologue: allocate the frame, save ra and callee-saved registers.
    if frame > 0 {
        e.r.lda(Reg::SP, Reg::SP, -frame);
        e.emitted += 1;
    }
    for (i, &s) in saved.iter().enumerate() {
        e.r.store(s, Reg::SP, 8 * i as i16);
        e.emitted += 1;
    }
    if saves_ra {
        e.r.store(Reg::RA, Reg::SP, frame - 8);
        e.emitted += 1;
    }

    // The hot counted loop: two frame slots written once ahead of the
    // loop, reloaded on every trip — one in the header (hoistable by
    // static loop-invariant code motion, since it dominates the back
    // edge) and one behind a never-taken guard (hoistable only once a
    // profile proves it runs hotter than the loop is entered). The
    // `put_int`s give the dynamic-instruction comparison an observable
    // output stream to align on. Registers `t10`/`t11`/`at` are reserved
    // for this pattern — nothing else the generator emits touches them,
    // so the loads' destinations stay dead at the loop header.
    if hot_loop {
        let (val, guarded, cnt) = (Reg::int(24), Reg::int(25), Reg::int(28));
        let top = e.fresh("hot");
        let skip = e.fresh("hs");
        let iters = e.rng.gen_range(6..=20i16);
        for (slot, offv) in [(0, -64i16..=127), (1, -64i16..=127)] {
            let v = e.rng.gen_range(offv);
            e.r.lda(val, Reg::ZERO, v);
            e.r.store(val, Reg::SP, e.scratch[slot]);
        }
        e.r.lda(cnt, Reg::ZERO, iters);
        e.r.label(&top);
        e.r.load(val, Reg::SP, e.scratch[0]);
        e.r.copy(val, Reg::V0);
        e.r.put_int();
        // `cnt` stays in [1, iters] at this test, so the guard never
        // fires at runtime — only a profile can prove the guarded load
        // hot, which is exactly the case static weighting must refuse.
        e.r.cond(BranchCond::Eq, cnt, &skip);
        e.r.load(guarded, Reg::SP, e.scratch[1]);
        e.r.copy(guarded, Reg::V0);
        e.r.put_int();
        e.r.label(&skip);
        e.r.op_imm(AluOp::Sub, cnt, 1, cnt);
        e.r.cond(BranchCond::Ne, cnt, &top);
        e.emitted += 14;
        e.join();
    }

    // Estimated instruction overhead per event kind, to size the padding.
    let overhead: usize = events
        .iter()
        .map(|ev| match ev {
            Event::Call => 5,
            Event::Branch => 2,
            Event::Multiway => 2 + 2 * p.multiway_fanout,
            Event::Dispatch(k) => 2 + 4 * k,
            Event::BinaryDispatch(k) => 5 * k,
            Event::Exit => 3 + saved.len(),
        })
        .sum::<usize>()
        + 4
        + saved.len() * 2
        + if hot_loop { 14 } else { 0 };
    let slots = events.len() + 1;
    let pad_budget = instr_target.saturating_sub(overhead);

    let mut alt_remaining = n_alt;
    for (i, ev) in events.iter().enumerate() {
        let pad_n = pad_budget * (i + 1) / slots - pad_budget * i / slots;
        e.pad(pad_n);
        match ev {
            Event::Call => {
                // Set up the arguments, then call. Every call site defines
                // at least `a0`/`a1`, which is what lets callees assume
                // them defined at entry (their `base`).
                for a in ARGS.iter().take(2 + e.rng.gen_range(0..=2)) {
                    e.r.lda(*a, Reg::ZERO, 1);
                    e.valid.insert(*a);
                    e.emitted += 1;
                }
                let roll: f64 = e.rng.gen();
                if roll < p.indirect_unknown_frac {
                    e.r.lda(Reg::PV, Reg::ZERO, 1);
                    e.r.jsr_unknown(Reg::PV);
                    e.emitted += 2;
                } else if roll < p.indirect_unknown_frac + p.indirect_known_frac {
                    let k = e.rng.gen_range(2..=3);
                    let targets: Vec<String> =
                        (0..k).map(|_| format!("r{}", e.rng.gen_range(0..n_routines))).collect();
                    let trefs: Vec<&str> = targets.iter().map(String::as_str).collect();
                    e.r.lda(Reg::PV, Reg::ZERO, 1);
                    e.r.jsr_known(Reg::PV, &trefs);
                    e.emitted += 2;
                } else {
                    let callee = if e.rng.gen_bool(0.02) {
                        idx // direct recursion
                    } else {
                        e.rng.gen_range(0..n_routines)
                    };
                    e.r.call(&format!("r{callee}"));
                    e.emitted += 1;
                }
                e.boundary();
            }
            Event::Branch => {
                let cond = CONDS[e.rng.gen_range(0..CONDS.len())];
                let reg = e.read_reg();
                let backward = e.rng.gen_bool(p.backward_branch_frac) && !e.back_labels.is_empty();
                if backward {
                    let l = e.back_labels[e.rng.gen_range(0..e.back_labels.len())].clone();
                    e.r.cond(cond, reg, &l);
                } else {
                    let l = e.fresh("fw");
                    e.r.cond(cond, reg, &l);
                    let span = e.rng.gen_range(1..=p.branch_span.max(1));
                    e.pending.push((l, span));
                }
                e.emitted += 1;
                e.boundary();
            }
            Event::Multiway => {
                // Plain switch: cases rejoin below.
                let k = e.rng.gen_range(2..=p.multiway_fanout.max(2));
                let idx_reg = e.temp();
                e.defined(idx_reg);
                let join = e.fresh("mj");
                let cases: Vec<String> = (0..k).map(|_| e.fresh("mc")).collect();
                let crefs: Vec<&str> = cases.iter().map(String::as_str).collect();
                e.r.switch(idx_reg, &crefs);
                e.emitted += 1;
                for (ci, c) in cases.iter().enumerate() {
                    e.r.label(c);
                    e.join();
                    let d = e.temp();
                    e.r.lda(d, Reg::ZERO, ci as i16);
                    e.valid.insert(d);
                    e.emitted += 1;
                    if ci + 1 < k {
                        e.r.br(&join);
                        e.emitted += 1;
                    }
                }
                e.r.label(&join);
                e.join();
                e.boundary();
            }
            Event::Dispatch(k) => {
                // Figure-12 at scale: a k+1-way multiway branch in a loop
                // with a call behind every case; the extra case exits.
                let top = e.fresh("dt");
                let out = e.fresh("do");
                // The selector is defined ahead of the loop head; calls in
                // the loop body never un-define it, so the read at the
                // switch stays covered on the back edges too.
                let idx_reg = e.temp();
                e.defined(idx_reg);
                let mut cases: Vec<String> = (0..*k).map(|_| e.fresh("dc")).collect();
                cases.push(out.clone());
                e.r.label(&top);
                e.join();
                let crefs: Vec<&str> = cases.iter().map(String::as_str).collect();
                e.r.switch(idx_reg, &crefs);
                e.emitted += 1;
                for c in &cases[..*k] {
                    e.r.label(c);
                    e.join();
                    for a in ARGS.iter().take(2) {
                        e.r.lda(*a, Reg::ZERO, 1);
                        e.valid.insert(*a);
                        e.emitted += 1;
                    }
                    let callee = e.rng.gen_range(0..n_routines);
                    e.r.call(&format!("r{callee}"));
                    e.r.br(&top);
                    e.emitted += 2;
                }
                e.r.label(&out);
                e.join();
                e.boundary();
            }
            Event::BinaryDispatch(k) => {
                // §3.6's hard case: a loop whose body selects among k
                // call-bearing cases with a chain of two-way branches.
                // Every case's return reaches every case's call through
                // the loop head — O(k²) flow-summary edges that branch
                // nodes cannot remove (there is no multiway branch).
                let top = e.fresh("bt");
                let out = e.fresh("bo");
                let cases: Vec<String> = (0..*k).map(|_| e.fresh("bc")).collect();
                let sel = e.temp();
                e.defined(sel); // ahead of the loop head, like Dispatch
                e.r.label(&top);
                e.join();
                for c in &cases[1..] {
                    e.r.cond(BranchCond::Ne, sel, c);
                    e.emitted += 1;
                }
                // The selector chain falls through into case 0, which is
                // also the case that leaves the loop.
                for (ci, c) in cases.iter().enumerate() {
                    if ci > 0 {
                        e.r.label(c);
                        e.join();
                    }
                    for a in ARGS.iter().take(2) {
                        e.r.lda(*a, Reg::ZERO, 1);
                        e.valid.insert(*a);
                        e.emitted += 1;
                    }
                    let callee = e.rng.gen_range(0..n_routines);
                    e.r.call(&format!("r{callee}"));
                    e.emitted += 1;
                    if ci == 0 {
                        e.r.br(&out);
                    } else {
                        e.r.br(&top);
                    }
                    e.emitted += 1;
                }
                e.r.label(&out);
                e.join();
                e.boundary();
            }
            Event::Exit => {
                // Early return: skip label lands right after the ret.
                let skip = e.fresh("sk");
                let reg = e.read_reg();
                e.r.cond(BranchCond::Eq, reg, &skip);
                e.emitted += 1;
                if e.rng.gen_bool(0.5) {
                    e.r.lda(Reg::V0, Reg::ZERO, 1);
                    e.emitted += 1;
                }
                e.epilogue();
                e.r.label(&skip);
                e.join();
                e.boundary();
            }
        }
        // Alternate entrances land at event boundaries (a block leader
        // already exists); restricted to frameless routines so entering
        // mid-routine cannot skip a prologue.
        if alt_remaining > 0 && e.saved.is_empty() {
            let l = e.fresh("alt");
            e.r.label(&l).alt_entry(&l);
            e.join();
            alt_remaining -= 1;
        }
    }

    let final_pad = pad_budget - pad_budget * events.len() / slots;
    e.pad(final_pad);

    // Place any labels still pending, then the final exit.
    let leftovers: Vec<String> = e.pending.drain(..).map(|(l, _)| l).collect();
    for l in &leftovers {
        e.r.label(l);
        e.join();
    }
    if idx == 0 {
        // The entry routine ends the program.
        e.r.lda(Reg::V0, Reg::ZERO, 0);
        e.r.halt();
    } else {
        if e.rng.gen_bool(0.5) {
            e.r.lda(Reg::V0, Reg::ZERO, 1);
            e.emitted += 1;
        }
        e.epilogue();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, profiles};
    use spike_cfg::ProgramCfg;

    #[test]
    fn generation_is_deterministic() {
        let p = profile("li").unwrap();
        let a = generate(&p, 0.1, 7);
        let b = generate(&p, 0.1, 7);
        assert_eq!(a, b);
        let c = generate(&p, 0.1, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn all_profiles_generate_valid_programs() {
        for p in profiles() {
            let scale = (60.0 / p.routines as f64).min(1.0);
            let prog = generate(&p, scale, 42);
            assert!(prog.routines().len() >= 2, "{}", p.name);
            // Round-trips through the image format.
            let img = prog.to_image();
            assert_eq!(spike_program::Program::from_image(&img).unwrap(), prog);
        }
    }

    #[test]
    fn shape_statistics_track_the_profile() {
        let p = profile("gcc").unwrap();
        let prog = generate(&p, 0.2, 11);
        let pcfg = ProgramCfg::build(&prog);
        let n = prog.routines().len() as f64;

        let calls: usize = pcfg.cfgs().iter().map(|c| c.call_count()).sum();
        let calls_per = calls as f64 / n;
        assert!(
            (calls_per - p.calls_per_routine).abs() / p.calls_per_routine < 0.25,
            "calls/routine {calls_per:.2} vs target {:.2}",
            p.calls_per_routine
        );

        let blocks_per = pcfg.total_blocks() as f64 / n;
        assert!(
            (blocks_per - p.blocks_per_routine()).abs() / p.blocks_per_routine() < 0.35,
            "blocks/routine {blocks_per:.2} vs target {:.2}",
            p.blocks_per_routine()
        );

        let instrs = prog.total_instructions() as f64 / n;
        assert!(
            (instrs - p.instructions_per_routine()).abs() / p.instructions_per_routine() < 0.5,
            "instrs/routine {instrs:.1} vs target {:.1}",
            p.instructions_per_routine()
        );
    }

    #[test]
    fn exported_and_indirect_features_appear() {
        let p = profile("sqlservr").unwrap();
        let prog = generate(&p, 0.2, 3);
        assert!(prog.routines().iter().any(|r| r.exported()));
        assert!(!prog.indirect_calls().is_empty());
        assert!(!prog.jump_tables().is_empty());
        // sqlservr's profile has 1.02 entrances/routine: at 655 routines
        // some alternate entrances must appear.
        assert!(prog.routines().iter().any(|r| r.entry_offsets().len() > 1));
    }

    #[test]
    fn scale_changes_size_proportionally() {
        let p = profile("compress").unwrap();
        let small = generate(&p, 0.25, 5);
        let large = generate(&p, 0.5, 5);
        let ratio = large.routines().len() as f64 / small.routines().len() as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }
}
