//! # spike-synth
//!
//! Synthetic benchmark generation for the Spike reproduction.
//!
//! The paper evaluates on the SPEC95 integer suite and eight commercial PC
//! applications — binaries we cannot ship. This crate substitutes
//! deterministic, seeded generators:
//!
//! * [`profiles`] / [`generate`] — one [`Profile`] per paper benchmark,
//!   calibrated to the shape statistics of Tables 2 and 3 (routines,
//!   basic blocks, instructions, calls/branches/exits per routine) and to
//!   the Figure-12 loop patterns that drive the Table 4 branch-node
//!   ablation. Analysis cost depends on exactly these statistics, so the
//!   paper's relative results are preserved.
//! * [`generate_executable`] — smaller programs with a DAG call graph,
//!   bounded loops and strict register discipline, which terminate under
//!   `spike-sim` and serve as oracles for optimization soundness tests.
//! * [`generate_executable_with_defect`] — the same programs with one
//!   seeded defect (an uninitialized read or a callee-saved clobber),
//!   used as ground truth when testing `spike-lint`.
//!
//! # Example
//!
//! ```
//! let profile = spike_synth::profile("compress").expect("known benchmark");
//! // Scale to 10% of the paper's size for a quick run.
//! let program = spike_synth::generate(&profile, 0.1, 42);
//! assert!(program.routines().len() >= 2);
//! ```

mod exec;
mod gen;
mod profiles;

pub use exec::{generate_executable, generate_executable_with_defect, DefectKind, InjectedDefect};
pub use gen::generate;
pub use profiles::{profile, profiles, Profile, Suite};
