//! Generator for *executable* synthetic programs.
//!
//! Unlike the profile generator (which targets shape statistics and is
//! never run), these programs are guaranteed to terminate and to follow
//! the calling standard, so they can be executed by `spike-sim` before and
//! after optimization to check that summary-driven transformations
//! preserve observable behaviour.
//!
//! Guarantees:
//!
//! * the call graph is a DAG (routine `i` calls only `j > i`), loops run a
//!   bounded count held in a callee-saved register, and every multiway
//!   branch has a computed in-range index — execution always halts;
//! * non-leaf routines save and restore `ra` (and any callee-saved
//!   registers they use) with real frames;
//! * a register is read only if it provably holds a value: arguments at
//!   entry, results after calls, and explicit writes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spike_isa::{AluOp, BranchCond, Reg, RegSet};
use spike_program::{Program, ProgramBuilder, RoutineBuilder};

const TEMPS: [Reg; 6] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::int(5), Reg::int(6)];
const COUNTERS: [Reg; 3] = [Reg::S0, Reg::S1, Reg::S2];

/// A temporary no generated instruction ever writes — reading it is a
/// guaranteed uninitialized-register defect.
const NEVER_WRITTEN_TEMP: Reg = Reg::int(7); // t6
/// A callee-saved register outside [`COUNTERS`] — writing it without a
/// save/restore is a guaranteed calling-standard violation.
const UNSAVED_CALLEE_SAVED: Reg = Reg::int(12); // s3

/// The kind of defect [`generate_executable_with_defect`] plants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum DefectKind {
    /// Drop an initialization: the entry routine reads a register no
    /// instruction in the program ever writes.
    UninitRead,
    /// Overwrite a callee-saved register on a path to a routine's exit
    /// without saving and restoring it.
    CalleeSavedClobber,
    /// Read a freshly allocated stack slot no instruction ever stores —
    /// the memory analogue of [`DefectKind::UninitRead`].
    UninitStackSlotRead,
    /// Store above the entry stack pointer, into memory belonging to the
    /// caller's frame.
    OutOfFrameStore,
}

/// Where and what [`generate_executable_with_defect`] injected, so tests
/// can check the checker flags exactly this defect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectedDefect {
    /// The planted defect kind.
    pub kind: DefectKind,
    /// Name of the routine holding the defective instruction.
    pub routine: String,
    /// The register the defect reads (uninit) or clobbers (callee-saved).
    pub reg: Reg,
    /// For stack defects, the entry-SP-relative byte offset of the slot
    /// the defective access touches; `None` for register defects.
    pub slot: Option<i64>,
}

#[derive(Clone, Debug)]
enum Stmt {
    Arith,
    PutInt,
    Call(usize),
    If(Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
    Switch(Vec<Vec<Stmt>>),
}

fn gen_stmts(
    rng: &mut StdRng,
    routine: usize,
    n_routines: usize,
    budget: &mut usize,
    depth: usize,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    let len = rng.gen_range(1..=4);
    for _ in 0..len {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let can_call = routine + 1 < n_routines;
        let can_nest = depth < 2 && *budget > 2;
        let stmt = match rng.gen_range(0..10) {
            0..=3 => Stmt::Arith,
            4 => Stmt::PutInt,
            5 | 6 if can_call => Stmt::Call(rng.gen_range(routine + 1..n_routines)),
            7 if can_nest => Stmt::If(gen_stmts(rng, routine, n_routines, budget, depth + 1)),
            8 if can_nest => Stmt::Loop(
                rng.gen_range(1..=3),
                gen_stmts(rng, routine, n_routines, budget, depth + 1),
            ),
            9 if can_nest => {
                let k = rng.gen_range(2..=3);
                Stmt::Switch(
                    (0..k)
                        .map(|_| gen_stmts(rng, routine, n_routines, budget, depth + 1))
                        .collect(),
                )
            }
            _ => Stmt::Arith,
        };
        out.push(stmt);
    }
    if out.is_empty() {
        out.push(Stmt::Arith);
    }
    out
}

fn uses_calls(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Call(_) => true,
        Stmt::If(b) | Stmt::Loop(_, b) => uses_calls(b),
        Stmt::Switch(arms) => arms.iter().any(|a| uses_calls(a)),
        _ => false,
    })
}

fn count_loops(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If(b) => count_loops(b),
            Stmt::Loop(_, b) => 1 + count_loops(b),
            Stmt::Switch(arms) => arms.iter().map(|a| count_loops(a)).sum(),
            _ => 0,
        })
        .sum()
}

struct Ctx<'a, 'b> {
    r: &'a mut RoutineBuilder,
    rng: &'b mut StdRng,
    /// Registers currently holding a defined value.
    valid: RegSet,
    /// Callee-saved counters not yet claimed by an enclosing loop.
    free_counters: Vec<Reg>,
    labels: usize,
    /// Frame offsets available for compiler-style spills around calls
    /// (Figure 1(c) patterns); 0 when the routine has no frame.
    spill_slots: Vec<i16>,
    next_spill: usize,
}

impl Ctx<'_, '_> {
    fn fresh(&mut self) -> String {
        self.labels += 1;
        format!("l{}", self.labels)
    }

    /// A register guaranteed to hold a value; materializes a constant if
    /// nothing is valid.
    fn source(&mut self) -> Reg {
        // SP is always valid but never a data source: arithmetic reading
        // the stack pointer into a general register is an SP leak, which
        // (rightly) makes the stack-slot analysis treat the whole frame
        // as escaped and masks every stack check on the routine.
        let candidates: Vec<Reg> =
            self.valid.iter().filter(|r| !r.is_fp() && *r != Reg::SP).collect();
        if candidates.is_empty() || self.rng.gen_bool(0.2) {
            let d = TEMPS[self.rng.gen_range(0..TEMPS.len())];
            let v = self.rng.gen_range(-50..=50i16);
            self.r.lda(d, Reg::ZERO, v);
            self.valid.insert(d);
            d
        } else {
            candidates[self.rng.gen_range(0..candidates.len())]
        }
    }

    fn dest(&mut self) -> Reg {
        let d = if self.rng.gen_bool(0.15) {
            Reg::V0
        } else {
            TEMPS[self.rng.gen_range(0..TEMPS.len())]
        };
        self.valid.insert(d);
        d
    }

    fn emit(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Arith => {
                    let (a, b) = (self.source(), self.source());
                    let d = self.dest();
                    let op = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Mul]
                        [self.rng.gen_range(0..5)];
                    self.r.op(op, a, b, d);
                }
                Stmt::PutInt => {
                    if !self.valid.contains(Reg::V0) {
                        let s = self.source();
                        self.r.copy(s, Reg::V0);
                        self.valid.insert(Reg::V0);
                    }
                    self.r.put_int();
                }
                Stmt::Call(callee) => {
                    // Arguments, then the call; afterwards only the result,
                    // the stack pointer and callee-saved values survive.
                    // Both argument registers are always written: callees
                    // assume `a0`/`a1` hold values at entry, so every call
                    // site must justify that assumption.
                    for a in [Reg::A0, Reg::A1] {
                        let s = self.source();
                        self.r.copy(s, a);
                        self.valid.insert(a);
                    }
                    // Compiler-style spill (Figure 1(c)): keep a live
                    // temporary across the call through a frame slot. If
                    // the callee happens not to kill the register, the
                    // optimizer can delete both halves.
                    let spill = if !self.spill_slots.is_empty() && self.rng.gen_bool(0.4) {
                        let live: Vec<Reg> =
                            TEMPS.iter().copied().filter(|t| self.valid.contains(*t)).collect();
                        if live.is_empty() {
                            None
                        } else {
                            let t = live[self.rng.gen_range(0..live.len())];
                            let slot = self.spill_slots[self.next_spill % self.spill_slots.len()];
                            self.next_spill += 1;
                            self.r.store(t, Reg::SP, slot);
                            Some((t, slot))
                        }
                    } else {
                        None
                    };
                    if self.rng.gen_bool(0.2) {
                        // Indirect call with a known target set.
                        let name = format!("x{callee}");
                        self.r.lda_routine(Reg::PV, &name);
                        self.r.jsr_known(Reg::PV, &[&name]);
                    } else {
                        self.r.call(&format!("x{callee}"));
                    }
                    let saved: RegSet = COUNTERS.iter().copied().collect();
                    self.valid &= saved | RegSet::of(&[Reg::SP, Reg::FP]);
                    self.valid.insert(Reg::V0);
                    if let Some((t, slot)) = spill {
                        self.r.load(t, Reg::SP, slot);
                        self.valid.insert(t);
                    }
                }
                Stmt::If(body) => {
                    let skip = self.fresh();
                    let c = self.source();
                    let cond = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Ge]
                        [self.rng.gen_range(0..4)];
                    self.r.cond(cond, c, &skip);
                    let valid_before = self.valid;
                    self.emit(body);
                    self.r.label(&skip);
                    // Writes inside the skipped region may not have run.
                    self.valid = valid_before;
                }
                Stmt::Loop(n, body) => {
                    let Some(counter) = self.free_counters.pop() else {
                        // No counter register free: run the body once.
                        self.emit(body);
                        continue;
                    };
                    let top = self.fresh();
                    self.r.lda(counter, Reg::ZERO, *n as i16);
                    self.valid.insert(counter);
                    self.r.label(&top);
                    let valid_before = self.valid;
                    self.emit(body);
                    // Only values valid on every iteration entry survive
                    // the back edge.
                    self.valid &= valid_before;
                    self.r.op_imm(AluOp::Sub, counter, 1, counter);
                    self.r.cond(BranchCond::Ne, counter, &top);
                    self.free_counters.push(counter);
                }
                Stmt::Switch(arms) => {
                    let k = arms.len();
                    let join = self.fresh();
                    let cases: Vec<String> = (0..k).map(|_| self.fresh()).collect();
                    // idx = source & (k-1) for k a power of two, else
                    // clamp via compare+cmov; here k ∈ {2,3}.
                    let x = self.source();
                    let idx = Reg::int(22); // t8: scratch for the selector
                    if k == 2 {
                        self.r.op_imm(AluOp::And, x, 1, idx);
                    } else {
                        // idx = x & 3; if idx >= k then idx = 0.
                        self.r.op_imm(AluOp::And, x, 3, idx);
                        let cmp = Reg::int(23);
                        self.r.op_imm(AluOp::CmpLt, idx, k as u8, cmp);
                        self.r.op(AluOp::CmovEq, cmp, Reg::ZERO, idx);
                    }
                    // Select the case address: start with case 0, then
                    // conditionally move each later case's address in.
                    let addr = Reg::int(24); // t10
                    let scratch = Reg::int(25); // t11
                    self.r.lda_label(addr, &cases[0]);
                    for (ci, c) in cases.iter().enumerate().skip(1) {
                        self.r.lda_label(scratch, c);
                        let cmp = Reg::int(23);
                        self.r.op_imm(AluOp::CmpEq, idx, ci as u8, cmp);
                        self.r.op(AluOp::CmovNe, cmp, scratch, addr);
                    }
                    let crefs: Vec<&str> = cases.iter().map(String::as_str).collect();
                    self.r.switch(addr, &crefs);
                    let valid_before = self.valid;
                    let mut valid_join = RegSet::ALL;
                    for (ci, arm) in arms.iter().enumerate() {
                        self.r.label(&cases[ci]);
                        self.valid = valid_before;
                        self.emit(arm);
                        valid_join &= self.valid;
                        if ci + 1 < k {
                            self.r.br(&join);
                        }
                    }
                    self.r.label(&join);
                    self.valid = valid_join;
                }
            }
        }
    }
}

/// Generates a terminating, calling-standard-conformant program with
/// roughly `n_routines` routines, deterministically from `seed`.
///
/// The entry routine is `main`; the others are named `x1`, `x2`, ….
///
/// # Panics
///
/// Panics if `n_routines` is zero.
pub fn generate_executable(seed: u64, n_routines: usize) -> Program {
    generate_inner(seed, n_routines, None).0
}

/// Like [`generate_executable`], but plants one seeded defect of the given
/// kind and reports where.
///
/// * [`DefectKind::UninitRead`] adds, on the entry routine's always-taken
///   final path, a read of a register nothing ever writes — the shadow
///   simulator traps on it and the checker must flag it.
/// * [`DefectKind::CalleeSavedClobber`] writes an unsaved callee-saved
///   register in one non-entry routine. Execution is unaffected (nothing
///   reads that register), which is exactly why only a static check can
///   catch it.
/// * [`DefectKind::UninitStackSlotRead`] dips the entry routine's stack
///   pointer on its final path and loads from a slot in the dip that no
///   store ever wrote — the per-slot shadow simulator traps on it.
/// * [`DefectKind::OutOfFrameStore`] stores 8 bytes above the entry
///   routine's entry SP — memory the frame model places in the caller.
///
/// # Panics
///
/// Panics if `n_routines` is zero, or below two for
/// [`DefectKind::CalleeSavedClobber`] (the defect needs a returning
/// routine).
pub fn generate_executable_with_defect(
    seed: u64,
    n_routines: usize,
    kind: DefectKind,
) -> (Program, InjectedDefect) {
    let (program, defect) = generate_inner(seed, n_routines, Some(kind));
    (program, defect.expect("defect was injected"))
}

fn generate_inner(
    seed: u64,
    n_routines: usize,
    kind: Option<DefectKind>,
) -> (Program, Option<InjectedDefect>) {
    assert!(n_routines > 0, "need at least the entry routine");
    // The clobber goes in a returning (non-entry) routine chosen from the
    // seed, so different seeds exercise different call-graph positions.
    let clobber_target = match kind {
        Some(DefectKind::CalleeSavedClobber) => {
            assert!(n_routines >= 2, "a callee-saved clobber needs a non-entry routine");
            1 + (seed as usize) % (n_routines - 1)
        }
        _ => usize::MAX,
    };
    let mut defect = None;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();

    for i in 0..n_routines {
        let name = if i == 0 { "main".to_string() } else { format!("x{i}") };
        let mut budget = rng.gen_range(4..=12);
        let mut stmts = gen_stmts(&mut rng, i, n_routines, &mut budget, 0);
        if i == 0 {
            // Drive the whole program several times: gives the dynamic
            // measurements enough executed instructions to be stable
            // without risking exponential blow-up deeper in the DAG.
            stmts = vec![Stmt::Loop(rng.gen_range(2..=4), stmts)];
        }

        let n_loops = count_loops(&stmts).min(COUNTERS.len());
        let saves_ra = uses_calls(&stmts);
        let used_counters: Vec<Reg> = COUNTERS[..n_loops].to_vec();
        // Frame layout: [0] ra, [8..] saved counters, then spill slots.
        let spill_base = 8 + 8 * used_counters.len() as i16;
        let spill_area: i16 = if saves_ra { 32 } else { 0 };
        let frame: i16 = if saves_ra || !used_counters.is_empty() {
            (spill_base + spill_area + 15) & !15
        } else {
            0
        };
        let spill_slots: Vec<i16> = (0..spill_area / 8).map(|i| spill_base + 8 * i).collect();

        let r = b.routine(&name);
        if frame > 0 {
            r.lda(Reg::SP, Reg::SP, -frame);
            if saves_ra {
                r.store(Reg::RA, Reg::SP, 0);
            }
            for (ci, &c) in used_counters.iter().enumerate() {
                r.store(c, Reg::SP, 8 + 8 * ci as i16);
            }
        }
        if i == clobber_target {
            // The planted defect: overwrite a callee-saved register the
            // prologue did not save. Every entry-to-exit path runs this.
            r.lda(UNSAVED_CALLEE_SAVED, Reg::ZERO, 7);
            defect = Some(InjectedDefect {
                kind: DefectKind::CalleeSavedClobber,
                routine: name.clone(),
                reg: UNSAVED_CALLEE_SAVED,
                slot: None,
            });
        }

        let mut valid = RegSet::of(&[Reg::SP]);
        if i != 0 {
            valid.insert(Reg::A0);
            valid.insert(Reg::A1);
        }
        let mut ctx = Ctx {
            r,
            rng: &mut rng,
            valid,
            free_counters: used_counters.clone(),
            labels: 0,
            spill_slots,
            next_spill: 0,
        };
        ctx.emit(&stmts);

        // Make sure the result register is defined, then return/halt.
        if !ctx.valid.contains(Reg::V0) {
            let s = ctx.source();
            ctx.r.copy(s, Reg::V0);
        }
        if i == 0 {
            match kind {
                Some(DefectKind::UninitRead) => {
                    // The planted defect: consume a register no instruction
                    // in the program writes, on the once-executed final path.
                    ctx.r.op(AluOp::Add, NEVER_WRITTEN_TEMP, Reg::ZERO, Reg::T0);
                    defect = Some(InjectedDefect {
                        kind: DefectKind::UninitRead,
                        routine: name.clone(),
                        reg: NEVER_WRITTEN_TEMP,
                        slot: None,
                    });
                }
                Some(DefectKind::UninitStackSlotRead) => {
                    // Dip SP below every slot the routine ever stores and
                    // read from the fresh region: a guaranteed uninitialized
                    // stack slot, on the once-executed final path.
                    ctx.r.lda(Reg::SP, Reg::SP, -16);
                    ctx.r.load(Reg::T0, Reg::SP, 8);
                    ctx.r.lda(Reg::SP, Reg::SP, 16);
                    defect = Some(InjectedDefect {
                        kind: DefectKind::UninitStackSlotRead,
                        routine: name.clone(),
                        reg: Reg::T0,
                        slot: Some(-(frame as i64) - 8),
                    });
                }
                Some(DefectKind::OutOfFrameStore) => {
                    // Store above the entry SP: the slot belongs to the
                    // caller's frame (for `main`, to nobody at all).
                    ctx.r.store(Reg::V0, Reg::SP, frame + 8);
                    defect = Some(InjectedDefect {
                        kind: DefectKind::OutOfFrameStore,
                        routine: name.clone(),
                        reg: Reg::V0,
                        slot: Some(8),
                    });
                }
                _ => {}
            }
            ctx.r.put_int();
            ctx.r.halt();
        } else {
            if frame > 0 {
                if saves_ra {
                    ctx.r.load(Reg::RA, Reg::SP, 0);
                }
                for (ci, &c) in used_counters.iter().enumerate() {
                    ctx.r.load(c, Reg::SP, 8 + 8 * ci as i16);
                }
                ctx.r.lda(Reg::SP, Reg::SP, frame);
            }
            ctx.r.ret();
        }
    }

    (b.build().expect("generated executable must be valid"), defect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_sim::{run, Outcome};

    #[test]
    fn executables_halt_and_are_deterministic() {
        for seed in 0..30 {
            let p = generate_executable(seed, 5);
            let a = run(&p, 2_000_000);
            let b = run(&p, 2_000_000);
            assert!(matches!(a, Outcome::Halted { .. }), "seed {seed} did not halt: {a:?}");
            assert_eq!(a, b, "seed {seed} nondeterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_executable(1, 4);
        let b = generate_executable(2, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn image_round_trip_preserves_behaviour() {
        for seed in 0..10 {
            let p = generate_executable(seed, 4);
            let loaded = Program::from_image(&p.to_image()).unwrap();
            assert_eq!(run(&p, 2_000_000), run(&loaded, 2_000_000), "seed {seed}");
        }
    }

    #[test]
    fn single_routine_program_works() {
        let p = generate_executable(9, 1);
        assert!(matches!(run(&p, 1_000_000), Outcome::Halted { .. }));
    }

    #[test]
    fn clean_executables_pass_the_shadow_simulator() {
        for seed in 0..30 {
            let p = generate_executable(seed, 5);
            let shadow = spike_sim::run_shadow(&p, 2_000_000);
            assert!(matches!(shadow, Outcome::Halted { .. }), "seed {seed}: {shadow:?}");
            assert_eq!(shadow, run(&p, 2_000_000), "seed {seed}");
        }
    }

    #[test]
    fn injected_uninit_read_traps_in_shadow_mode() {
        for seed in 0..10 {
            let (p, d) = generate_executable_with_defect(seed, 4, DefectKind::UninitRead);
            assert_eq!(d.routine, "main");
            match spike_sim::run_shadow(&p, 2_000_000) {
                Outcome::Fault(spike_sim::Fault::UninitRead { reg, .. }) => {
                    assert_eq!(reg, d.reg, "seed {seed}")
                }
                other => panic!("seed {seed}: expected uninit trap, got {other:?}"),
            }
            // The plain interpreter runs the defective program happily.
            assert!(matches!(run(&p, 2_000_000), Outcome::Halted { .. }));
        }
    }

    #[test]
    fn injected_uninit_slot_read_traps_in_slot_shadow_mode() {
        for seed in 0..10 {
            let (p, d) = generate_executable_with_defect(seed, 4, DefectKind::UninitStackSlotRead);
            assert_eq!(d.routine, "main");
            let slot = d.slot.expect("stack defects carry a slot");
            match spike_sim::run_shadow_slots(&p, 2_000_000) {
                Outcome::Fault(spike_sim::Fault::UninitStackRead { routine, offset, .. }) => {
                    assert_eq!(routine, d.routine, "seed {seed}");
                    assert_eq!(offset, slot, "seed {seed}");
                }
                other => panic!("seed {seed}: expected uninit-slot trap, got {other:?}"),
            }
            // The plain interpreter runs the defective program happily.
            assert!(matches!(run(&p, 2_000_000), Outcome::Halted { .. }));
        }
    }

    #[test]
    fn injected_out_of_frame_store_traps_in_slot_shadow_mode() {
        for seed in 0..10 {
            let (p, d) = generate_executable_with_defect(seed, 4, DefectKind::OutOfFrameStore);
            assert_eq!(d.routine, "main");
            assert_eq!(d.slot, Some(8));
            match spike_sim::run_shadow_slots(&p, 2_000_000) {
                Outcome::Fault(spike_sim::Fault::OutOfFrame { routine, .. }) => {
                    assert_eq!(routine, d.routine, "seed {seed}");
                }
                other => panic!("seed {seed}: expected out-of-frame trap, got {other:?}"),
            }
            assert!(matches!(run(&p, 2_000_000), Outcome::Halted { .. }));
        }
    }

    #[test]
    fn injected_clobber_is_behaviorally_silent() {
        for seed in 0..10 {
            let (p, d) = generate_executable_with_defect(seed, 4, DefectKind::CalleeSavedClobber);
            assert_ne!(d.routine, "main");
            let clean = generate_executable(seed, 4);
            let (a, b) = (run(&p, 2_000_000), run(&clean, 2_000_000));
            let (Outcome::Halted { output: oa, .. }, Outcome::Halted { output: ob, .. }) = (a, b)
            else {
                panic!("seed {seed}: defective or clean program did not halt");
            };
            assert_eq!(oa, ob, "seed {seed}: the clobber must not change observable output");
        }
    }
}
