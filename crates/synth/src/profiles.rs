//! Benchmark profiles calibrated to Tables 1–4 of the paper.
//!
//! Each profile records the *shape statistics* the paper reports for one
//! of its sixteen benchmarks — routine count, basic blocks, instructions
//! (Table 2), and the per-routine entrance/exit/call/branch densities
//! (Table 3) — plus generation knobs chosen so the branch-node ablation
//! reproduces the spread of Table 4 (multiway branches inside call-bearing
//! loops are what make branch nodes pay off).

/// Which benchmark suite a profile belongs to (Table 2's grouping).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPEC95 integer benchmarks.
    SpecInt95,
    /// Large PC applications (Table 1).
    PcApp,
}

impl Suite {
    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Suite::SpecInt95 => "SPECint95",
            Suite::PcApp => "PC Applications",
        }
    }
}

/// Shape statistics and generation knobs for one benchmark.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Suite grouping.
    pub suite: Suite,
    /// Table 1 description (empty for SPEC benchmarks).
    pub description: &'static str,
    /// Routine count (Table 2).
    pub routines: usize,
    /// Basic blocks, counting blocks as ended by calls (Table 2).
    pub basic_blocks: usize,
    /// Total machine instructions (Table 2, reported there in thousands).
    pub instructions: usize,
    /// Entrances per routine (Table 3).
    pub entrances_per_routine: f64,
    /// Exits per routine (Table 3).
    pub exits_per_routine: f64,
    /// Calls per routine (Table 3).
    pub calls_per_routine: f64,
    /// Branches per routine (Table 3).
    pub branches_per_routine: f64,
    /// Multiway branches per routine (generation knob; the paper folds
    /// these into the branch count).
    pub multiway_per_routine: f64,
    /// Drives the Table 4 branch-node edge reduction: `fig12_frac / 8` of
    /// the routines are *dispatch-style* — all their calls sit behind one
    /// big multiway branch in a loop (the Figure-12 pattern at scale),
    /// which is where branch nodes turn O(n²) flow edges into O(n).
    pub fig12_frac: f64,
    /// Typical fan-out of a multiway branch.
    pub multiway_fanout: usize,
    /// Fraction of two-way branches that jump backward (loops). The
    /// paper singles out vortex for its "large number of branches inside
    /// loops", which makes its PSG *edge* count exceed the CFG arc count
    /// (Table 5); a high value reproduces that anomaly.
    pub backward_branch_frac: f64,
    /// How many events (calls, branches, …) a forward branch may skip.
    /// Spans > 1 let control bypass call sites, so one return point can
    /// reach several later calls — each pair is a PSG flow edge.
    pub branch_span: usize,
    /// Fraction of routines whose calls sit in a *binary* dispatch loop —
    /// a chain of two-way branches selecting among k call-bearing cases
    /// inside a loop. §3.6 notes this shape "could potentially produce a
    /// large number of PSG edges" that branch nodes cannot remove; it is
    /// what pushes vortex's PSG edge count past its CFG arc count
    /// (Table 5) while its Table 4 reduction stays small.
    pub binary_dispatch_frac: f64,
    /// Fraction of calls that are indirect with recovered targets.
    pub indirect_known_frac: f64,
    /// Fraction of calls that are indirect with unknown targets (§3.5).
    pub indirect_unknown_frac: f64,
    /// Fraction of routines exported to unseen callers.
    pub exported_frac: f64,
    /// Fraction of routines that save and restore callee-saved registers.
    pub callee_saved_frac: f64,
}

impl Profile {
    /// Average instructions per routine.
    pub fn instructions_per_routine(&self) -> f64 {
        self.instructions as f64 / self.routines as f64
    }

    /// Average basic blocks per routine.
    pub fn blocks_per_routine(&self) -> f64 {
        self.basic_blocks as f64 / self.routines as f64
    }
}

macro_rules! profile {
    ($name:literal, $suite:expr, $desc:literal, routines: $r:expr, blocks: $b:expr,
     instrs: $i:expr, entr: $en:expr, exits: $ex:expr, calls: $c:expr, branches: $br:expr,
     fig12: $f12:expr) => {
        Profile {
            name: $name,
            suite: $suite,
            description: $desc,
            routines: $r,
            basic_blocks: $b,
            instructions: $i,
            entrances_per_routine: $en,
            exits_per_routine: $ex,
            calls_per_routine: $c,
            branches_per_routine: $br,
            // Multiway branches are rare in real code (the paper's <1%
            // node increase implies roughly one per 5–10 routines).
            multiway_per_routine: ($br as f64 / 80.0).max(0.05),
            fig12_frac: $f12,
            multiway_fanout: 4,
            backward_branch_frac: 0.35,
            branch_span: 2,
            binary_dispatch_frac: 0.0,
            indirect_known_frac: 0.04,
            indirect_unknown_frac: 0.03,
            exported_frac: 0.05,
            callee_saved_frac: 0.5,
        }
    };
}

/// The sixteen benchmark profiles of the paper's evaluation, in the order
/// of Table 2. `fig12` values are calibrated from Table 4's edge
/// reductions.
pub fn profiles() -> Vec<Profile> {
    use Suite::*;
    let mut ps = vec![
        profile!("compress", SpecInt95, "", routines: 122, blocks: 2546, instrs: 13_500,
                 entr: 1.04, exits: 1.81, calls: 3.30, branches: 13.75, fig12: 0.35),
        profile!("gcc", SpecInt95, "", routines: 1878, blocks: 69_588, instrs: 297_600,
                 entr: 1.00, exits: 1.62, calls: 9.86, branches: 23.16, fig12: 0.49),
        profile!("go", SpecInt95, "", routines: 462, blocks: 12_548, instrs: 71_400,
                 entr: 1.01, exits: 1.71, calls: 4.92, branches: 17.99, fig12: 0.12),
        profile!("ijpeg", SpecInt95, "", routines: 393, blocks: 6814, instrs: 42_800,
                 entr: 1.02, exits: 1.49, calls: 3.92, branches: 10.55, fig12: 0.17),
        profile!("li", SpecInt95, "", routines: 491, blocks: 6052, instrs: 29_400,
                 entr: 1.01, exits: 1.37, calls: 3.49, branches: 7.18, fig12: 0.013),
        profile!("m88ksim", SpecInt95, "", routines: 383, blocks: 8205, instrs: 40_600,
                 entr: 1.02, exits: 1.75, calls: 4.66, branches: 13.47, fig12: 0.012),
        profile!("perl", SpecInt95, "", routines: 487, blocks: 19_468, instrs: 92_700,
                 entr: 1.01, exits: 1.47, calls: 9.34, branches: 25.55, fig12: 0.74),
        profile!("vortex", SpecInt95, "", routines: 818, blocks: 21_880, instrs: 110_000,
                 entr: 1.01, exits: 1.20, calls: 8.97, branches: 15.00, fig12: 0.047),
        profile!("acad", PcApp, "Autodesk AutoCad (mechanical CAD)",
                 routines: 31_766, blocks: 339_962, instrs: 1_734_700,
                 entr: 1.00, exits: 1.14, calls: 5.02, branches: 4.58, fig12: 0.018),
        profile!("excel", PcApp, "Microsoft Excel 5.0 (spreadsheet)",
                 routines: 12_657, blocks: 301_823, instrs: 1_506_300,
                 entr: 1.00, exits: 1.00, calls: 8.42, branches: 12.98, fig12: 0.041),
        profile!("maxeda", PcApp, "OrCad MaxEDA 6.0 (electronic CAD)",
                 routines: 2126, blocks: 84_053, instrs: 418_600,
                 entr: 1.00, exits: 1.12, calls: 15.45, branches: 20.25, fig12: 0.009),
        profile!("sqlservr", PcApp, "Microsoft Sqlservr 6.5 (database)",
                 routines: 3275, blocks: 123_607, instrs: 754_900,
                 entr: 1.02, exits: 1.30, calls: 10.48, branches: 22.60, fig12: 0.80),
        profile!("texim", PcApp, "Welcom Software Texim 2.0 (project manager)",
                 routines: 1821, blocks: 50_955, instrs: 302_000,
                 entr: 1.00, exits: 1.29, calls: 11.24, branches: 13.90, fig12: 0.036),
        profile!("ustation", PcApp, "Bentley Systems Microstation (mechanical CAD)",
                 routines: 12_101, blocks: 165_929, instrs: 916_400,
                 entr: 1.00, exits: 1.35, calls: 5.03, branches: 6.86, fig12: 0.021),
        profile!("vc", PcApp, "Microsoft Visual C (compiler backend)",
                 routines: 2154, blocks: 82_072, instrs: 493_700,
                 entr: 1.03, exits: 1.10, calls: 9.11, branches: 24.47, fig12: 0.55),
        profile!("winword", PcApp, "Microsoft Word 6.0 (word processing)",
                 routines: 12_252, blocks: 288_799, instrs: 1_520_800,
                 entr: 1.00, exits: 1.01, calls: 8.10, branches: 13.02, fig12: 0.003),
    ];
    // The paper's Table 5 outlier: vortex's many branches inside loops
    // give it more PSG edges than CFG arcs.
    {
        let vortex = ps.iter_mut().find(|p| p.name == "vortex").expect("vortex exists");
        vortex.backward_branch_frac = 0.5;
        vortex.branch_span = 4;
        vortex.binary_dispatch_frac = 0.55;
    }
    ps
}

/// Looks up a profile by benchmark name.
pub fn profile(name: &str) -> Option<Profile> {
    profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_profiles_in_table2_order() {
        let ps = profiles();
        assert_eq!(ps.len(), 16);
        assert_eq!(ps[0].name, "compress");
        assert_eq!(ps[8].name, "acad");
        assert_eq!(ps[15].name, "winword");
        assert_eq!(ps.iter().filter(|p| p.suite == Suite::SpecInt95).count(), 8);
        assert_eq!(ps.iter().filter(|p| p.suite == Suite::PcApp).count(), 8);
    }

    #[test]
    fn table2_sizes_are_faithful() {
        let gcc = profile("gcc").unwrap();
        assert_eq!(gcc.routines, 1878);
        assert_eq!(gcc.basic_blocks, 69_588);
        assert_eq!(gcc.instructions, 297_600);
        let acad = profile("acad").unwrap();
        assert_eq!(acad.routines, 31_766);
        assert!((acad.blocks_per_routine() - 10.7).abs() < 0.1);
    }

    #[test]
    fn pc_apps_have_descriptions() {
        for p in profiles() {
            match p.suite {
                Suite::PcApp => assert!(!p.description.is_empty(), "{}", p.name),
                Suite::SpecInt95 => assert!(p.description.is_empty(), "{}", p.name),
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile("quake").is_none());
    }

    #[test]
    fn fig12_calibration_tracks_table4_extremes() {
        assert!(profile("sqlservr").unwrap().fig12_frac > 0.7);
        assert!(profile("winword").unwrap().fig12_frac < 0.01);
        assert!(profile("perl").unwrap().fig12_frac > profile("go").unwrap().fig12_frac);
    }
}
