//! # spike-opt
//!
//! The summary-driven post-link optimizations of Figure 1 of the paper —
//! the transformations that motivate Spike's interprocedural dataflow
//! analysis:
//!
//! * **1(a) dead result elimination** — a definition is dead when no
//!   caller reads it on any return (live-at-exit);
//! * **1(b) dead argument elimination** — an argument set up for a call is
//!   dead when the callee never reads it (call-used);
//! * **1(c) spill elimination** — a store/reload of a register around a
//!   call is removable when the call does not kill it (call-killed);
//! * **1(d) callee-saved reallocation** — a value held in a callee-saved
//!   register can move to a caller-saved register the calls do not kill,
//!   deleting the save and restore.
//!
//! All decisions are justified exclusively by the summaries computed by
//! [`spike_core::analyze`]; edits are applied with the relinking
//! [`spike_program::Rewriter`]. Soundness is property-tested by running
//! programs under `spike-sim` before and after optimization.
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main")
//!     .def(Reg::A0) // argument f never reads: deleted
//!     .call("f")
//!     .put_int()
//!     .halt();
//! b.routine("f").lda(Reg::V0, Reg::ZERO, 7).ret();
//! let program = b.build()?;
//!
//! let (optimized, report) = spike_opt::optimize(&program)?;
//! assert_eq!(report.dead_deleted, 1);
//! assert_eq!(
//!     optimized.total_instructions(),
//!     program.total_instructions() - 1
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod dead;
mod licm;
mod liveness;
mod save_restore;
mod spill;
mod stack_dse;

use std::borrow::Cow;

use spike_core::{Analysis, AnalysisCache, AnalysisOptions};
use spike_isa::Instruction;
use spike_program::{Program, RewriteError, Rewriter, RoutineId};

pub use liveness::{routine_liveness, step_back, RoutineLiveness};

/// Bound on [`OptOptions::iterate`] rounds: each round re-runs every
/// enabled pass, and the loop stops early the first round no pass edits
/// anything. Deletions strictly shrink the program, so the loop cannot
/// oscillate — the bound only caps pathological cascades.
const MAX_ROUNDS: usize = 8;

/// Which passes [`optimize_with`] runs, and how the pass manager
/// schedules them.
#[derive(Clone, Debug)]
pub struct OptOptions {
    /// Dead-code elimination (Figure 1(a)/(b)).
    pub dead_code: bool,
    /// Spill elimination around calls (Figure 1(c)).
    pub spills: bool,
    /// Callee-saved register reallocation (Figure 1(d)).
    pub realloc: bool,
    /// Dead-stack-store elimination and frame shrinking, driven by the
    /// interprocedural stack-slot analysis.
    pub stack: bool,
    /// Loop-invariant code motion into synthesized preheaders, guarded
    /// by the interprocedural MOD/REF summaries and register liveness.
    pub licm: bool,
    /// An execution profile of the *input* image. When present (and its
    /// fingerprint matches), LICM weighs hoists by measured execution
    /// counts instead of the static every-iteration rule, and only hoists
    /// code that actually ran hotter than its loop entry.
    pub profile: Option<spike_profile::Profile>,
    /// Loop spills → reallocation → dead code until a whole round finds
    /// nothing to edit (bounded by an internal round cap). The paper's
    /// passes expose each other's opportunities — a removed spill frees a
    /// register reallocation can claim, reallocation strands stores dead
    /// code can delete — so iterating converges to a smaller program.
    pub iterate: bool,
    /// Re-analyze only the routines each pass edited (plus whatever their
    /// changes can influence), reusing the cached front-end structures
    /// and converged dataflow of everything else. The result is
    /// bit-identical to from-scratch analysis between passes; disabling
    /// this exists for benchmarking and belt-and-suspenders comparison.
    pub incremental: bool,
    /// Analysis options used to compute the summaries.
    pub analysis: AnalysisOptions,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            dead_code: true,
            spills: true,
            realloc: true,
            stack: true,
            licm: true,
            profile: None,
            iterate: false,
            incremental: true,
            analysis: AnalysisOptions::default(),
        }
    }
}

/// What the optimizer did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Instructions deleted by dead-code elimination.
    pub dead_deleted: usize,
    /// Spill store/reload pairs removed.
    pub spill_pairs_removed: usize,
    /// Dynamic instructions saved by the removed spill pairs: measured
    /// execution counts when a matching profile was supplied, otherwise
    /// the static loop-depth estimate (2 × 10^depth per pair).
    pub spill_dynamic_saved: u64,
    /// Callee-saved registers reallocated to caller-saved homes (or whose
    /// dead save/restore pairs were deleted).
    pub registers_reallocated: usize,
    /// Save/restore instructions deleted by reallocation.
    pub save_restores_deleted: usize,
    /// Dead stack stores deleted by the stack-slot pass.
    pub stack_stores_deleted: usize,
    /// Loop-invariant loads hoisted into preheaders.
    pub loads_hoisted: usize,
    /// Loop-invariant register computations hoisted into preheaders.
    pub ops_hoisted: usize,
    /// Total bytes removed from stack frames by frame shrinking.
    pub frame_bytes_shrunk: usize,
    /// Instruction count before optimization.
    pub instructions_before: usize,
    /// Instruction count after optimization.
    pub instructions_after: usize,
    /// Pass-loop rounds executed (1 unless [`OptOptions::iterate`]).
    pub rounds: usize,
    /// Routines whose front-end analysis structures were rebuilt, summed
    /// over every analysis run the pass manager performed.
    pub routines_reanalyzed: usize,
    /// Routines reused from the analysis cache, summed over every
    /// analysis run (always `0` with `incremental` disabled).
    pub routines_reused: usize,
}

impl OptReport {
    /// Total instructions removed.
    pub fn removed(&self) -> usize {
        self.instructions_before - self.instructions_after
    }
}

/// Optimizes `program` with every pass enabled.
///
/// # Errors
///
/// Returns a [`RewriteError`] if relinking fails (which indicates a bug in
/// a pass, not bad input — any validated program is optimizable).
pub fn optimize(program: &Program) -> Result<(Program, OptReport), RewriteError> {
    optimize_with(program, &OptOptions::default())
}

/// The passes the manager can schedule, in their fixed run order: LICM
/// goes first, both because motion creates the loop-free straight-line
/// shapes the deleting passes understand and because profile counts are
/// only address-valid against the unedited input image; removing a spill
/// next makes its register visibly live across the call, so reallocation
/// cannot claim it; stack DSE runs before register dead-code elimination
/// because a deleted stack store often strands the definition that
/// produced the stored value; dead-code elimination last cleans up
/// whatever the earlier passes expose.
#[derive(Clone, Copy, Debug)]
enum Pass {
    Licm,
    Spills,
    Realloc,
    StackDse,
    Dead,
}

/// The edits one pass wants applied, plus the report counters it already
/// claimed. Collected against a borrowed analysis, applied afterwards.
struct PassEdits {
    deletes: Vec<u32>,
    replaces: Vec<(u32, Instruction)>,
    inserts: Vec<(u32, Vec<Instruction>)>,
    bypasses: Vec<u32>,
}

impl PassEdits {
    fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.replaces.is_empty() && self.inserts.is_empty()
    }
}

fn collect_edits(
    pass: Pass,
    program: &Program,
    analysis: &Analysis,
    profile: Option<&spike_profile::Profile>,
    report: &mut OptReport,
) -> PassEdits {
    let mut edits = PassEdits {
        deletes: Vec::new(),
        replaces: Vec::new(),
        inserts: Vec::new(),
        bypasses: Vec::new(),
    };
    match pass {
        Pass::Licm => {
            let hoists = licm::find_hoists(program, analysis, profile);
            report.loads_hoisted += hoists.loads;
            report.ops_hoisted += hoists.ops;
            for lh in hoists.loops {
                let mut moved = Vec::with_capacity(lh.insns.len());
                for (addr, insn) in lh.insns {
                    edits.deletes.push(addr);
                    moved.push(insn);
                }
                edits.inserts.push((lh.header_addr, moved));
                edits.bypasses.extend_from_slice(&lh.bypasses);
            }
        }
        Pass::Spills => {
            let pairs = spill::find_spills(program, analysis, profile);
            report.spill_pairs_removed += pairs.len();
            for p in &pairs {
                report.spill_dynamic_saved += p.weight;
                edits.deletes.push(p.store_addr);
                edits.deletes.push(p.load_addr);
            }
        }
        Pass::Realloc => {
            for r in &save_restore::find_reallocs(program, analysis) {
                report.registers_reallocated += 1;
                report.save_restores_deleted += r.delete.len();
                edits.deletes.extend_from_slice(&r.delete);
                edits.replaces.extend_from_slice(&r.rename);
            }
        }
        Pass::StackDse => {
            let se = stack_dse::find(program, analysis);
            report.stack_stores_deleted += se.stores_deleted;
            report.frame_bytes_shrunk += se.frame_bytes_shrunk;
            edits.deletes.extend_from_slice(&se.deletes);
            edits.replaces.extend_from_slice(&se.replaces);
        }
        Pass::Dead => {
            let dead = dead::find_dead(program, analysis);
            report.dead_deleted += dead.len();
            edits.deletes.extend(dead.iter().copied());
        }
    }
    edits
}

/// Optimizes `program` with explicit pass selection.
///
/// A small pass manager threads one [`AnalysisCache`] through the enabled
/// passes (spills → reallocation → dead code; see [`Pass`] for why that
/// order). Each pass reports the routines it edited, and by default only
/// those — plus whatever their changes can influence — are re-analyzed
/// before the next pass ([`OptOptions::incremental`]); a pass that finds
/// nothing leaves the cached analysis untouched for its successor. With
/// [`OptOptions::iterate`] the whole sequence loops until a round finds
/// nothing to edit.
///
/// The input program is not cloned until an edit actually lands: a run
/// where every pass is disabled or finds nothing only pays for the final
/// copy out.
///
/// # Errors
///
/// Returns a [`RewriteError`] if relinking fails; see [`optimize`].
pub fn optimize_with(
    program: &Program,
    options: &OptOptions,
) -> Result<(Program, OptReport), RewriteError> {
    let mut report =
        OptReport { instructions_before: program.total_instructions(), ..OptReport::default() };
    report.instructions_after = report.instructions_before;

    let mut passes = Vec::new();
    if options.licm {
        passes.push(Pass::Licm);
    }
    if options.spills {
        passes.push(Pass::Spills);
    }
    if options.realloc {
        passes.push(Pass::Realloc);
    }
    if options.stack {
        passes.push(Pass::StackDse);
    }
    if options.dead_code {
        passes.push(Pass::Dead);
    }
    if passes.is_empty() {
        return Ok((program.clone(), report));
    }

    let mut current: Cow<'_, Program> = Cow::Borrowed(program);
    let mut cache = AnalysisCache::new(options.analysis.clone());
    // Routines edited since the cache last saw the program; empty means
    // the cached analysis is still exact and is reused wholesale.
    let mut pending: Vec<RoutineId> = Vec::new();
    let mut edited = false;

    let max_rounds = if options.iterate { MAX_ROUNDS } else { 1 };
    for _ in 0..max_rounds {
        report.rounds += 1;
        let mut round_edited = false;
        for &pass in &passes {
            let edits = {
                let analysis = if !options.incremental || cache.analysis().is_none() {
                    cache.analyze(&current)
                } else {
                    cache.reanalyze(&current, &std::mem::take(&mut pending))
                };
                report.routines_reanalyzed += analysis.stats.routines_reanalyzed;
                report.routines_reused += analysis.stats.routines_reused;
                // Profile counts are keyed by address, so they only apply
                // while the program is still byte-identical to the image
                // that was profiled; once any pass edits, LICM and spill
                // weighting fall back to their static rules.
                let profile = match pass {
                    Pass::Licm | Pass::Spills => {
                        options.profile.as_ref().filter(|p| p.matches(&current.to_image()))
                    }
                    _ => None,
                };
                collect_edits(pass, &current, analysis, profile, &mut report)
            };
            if edits.is_empty() {
                continue;
            }
            let mut rw = Rewriter::new(&current);
            for &addr in &edits.deletes {
                rw.delete(addr);
            }
            for &(addr, insn) in &edits.replaces {
                rw.replace(addr, insn);
            }
            for (addr, insns) in edits.inserts {
                rw.insert_before(addr, insns);
            }
            for &addr in &edits.bypasses {
                rw.bypass(addr);
            }
            let (next, changed) = rw.finish()?;
            current = Cow::Owned(next);
            pending = changed;
            edited = true;
            round_edited = true;
        }
        if !round_edited {
            break;
        }
    }

    if edited {
        report.instructions_after = current.total_instructions();
    }
    Ok((current.into_owned(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;
    use spike_sim::{run, Outcome};

    /// Observable behaviour: the output stream. Step counts are expected
    /// to differ (that is the point of optimizing).
    fn behaviour(p: &Program) -> Vec<i64> {
        match run(p, 5_000_000) {
            Outcome::Halted { output, .. } => output,
            other => panic!("program did not halt: {other:?}"),
        }
    }

    #[test]
    fn figure1a_dead_result() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::T0, Reg::ZERO, 1)
            .copy(Reg::T0, Reg::V0) // nobody reads v0 on return
            .ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.dead_deleted, 2);
        assert_eq!(behaviour(&p), behaviour(&q));
    }

    #[test]
    fn figure1b_dead_argument() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 5)
            .lda(Reg::A1, Reg::ZERO, 6) // f never reads a1
            .call("f")
            .put_int()
            .halt();
        b.routine("f").copy(Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.dead_deleted, 1);
        assert_eq!(behaviour(&q), vec![5]);
    }

    #[test]
    fn figure1c_spill_elimination() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 11)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").lda(Reg::int(6), Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.spill_pairs_removed, 1);
        assert_eq!(behaviour(&p), behaviour(&q));
        // The dead pass then kills quiet's pointless def too.
        assert!(q.total_instructions() <= p.total_instructions() - 2);
    }

    #[test]
    fn figure1d_reallocation_end_to_end() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 3).call("f").put_int().halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 8)
            .store(Reg::S0, Reg::SP, 0)
            .copy(Reg::A0, Reg::S0)
            .call("quiet")
            .copy(Reg::S0, Reg::V0)
            .load(Reg::S0, Reg::SP, 0)
            .load(Reg::RA, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        b.routine("quiet").lda(Reg::T0, Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.registers_reallocated, 1);
        assert_eq!(report.save_restores_deleted, 2);
        assert_eq!(behaviour(&p), behaviour(&q));
        assert_eq!(behaviour(&q), vec![3]);
    }

    #[test]
    fn dead_stack_store_is_deleted_and_the_frame_vanishes() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").put_int().halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T0, Reg::ZERO, 3)
            .store(Reg::T0, Reg::SP, 8) // nothing ever reads this slot
            .copy(Reg::T0, Reg::V0)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.stack_stores_deleted, 1);
        // With no surviving access the whole frame goes away too.
        assert_eq!(report.frame_bytes_shrunk, 16);
        assert_eq!(behaviour(&p), behaviour(&q));
        assert_eq!(behaviour(&q), vec![3]);
    }

    #[test]
    fn oversized_frame_is_shrunk_around_surviving_slots() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").put_int().halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -32)
            .lda(Reg::T0, Reg::ZERO, 7)
            .store(Reg::T0, Reg::SP, 24)
            .load(Reg::T1, Reg::SP, 24)
            .copy(Reg::T1, Reg::V0)
            .lda(Reg::SP, Reg::SP, 32)
            .ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        // The only live slot sits 8 bytes below entry SP; 16 bytes of
        // frame suffice and 16 are returned.
        assert_eq!(report.stack_stores_deleted, 0);
        assert_eq!(report.frame_bytes_shrunk, 16);
        assert_eq!(behaviour(&p), behaviour(&q));
        assert_eq!(behaviour(&q), vec![7]);
    }

    #[test]
    fn red_zone_store_is_left_to_the_spill_pass() {
        // A store below an unadjusted SP (Figure 1(c)'s shape) is an
        // out-of-frame access: the stack DSE must not touch the routine
        // even though nothing reads the slot.
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 1)
            .store(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.stack_stores_deleted, 0);
        assert_eq!(report.frame_bytes_shrunk, 0);
        assert_eq!(behaviour(&p), behaviour(&q));
    }

    #[test]
    fn stack_pass_can_be_disabled() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .lda(Reg::T0, Reg::ZERO, 3)
            .store(Reg::T0, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        let p = b.build().unwrap();
        let options = OptOptions { stack: false, ..OptOptions::default() };
        let (q, report) = optimize_with(&p, &options).unwrap();
        assert_eq!(report.stack_stores_deleted, 0);
        assert_eq!(report.frame_bytes_shrunk, 0);
        assert!(q.total_instructions() >= p.total_instructions() - 1); // dead pass may still fire
    }

    #[test]
    fn optimization_reduces_dynamic_instructions() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 9)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        let (q, _) = optimize(&p).unwrap();
        let (Outcome::Halted { steps: s0, output: o0 }, Outcome::Halted { steps: s1, output: o1 }) =
            (run(&p, 1_000_000), run(&q, 1_000_000))
        else {
            panic!("both must halt");
        };
        assert_eq!(o0, o1);
        assert!(s1 < s0, "optimization should execute fewer instructions");
    }

    #[test]
    fn passes_can_be_disabled() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let options = OptOptions { dead_code: false, ..OptOptions::default() };
        let (q, report) = optimize_with(&p, &options).unwrap();
        assert_eq!(report.dead_deleted, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn iterate_mode_keeps_behaviour_and_reaches_a_fixpoint() {
        let options = OptOptions { iterate: true, ..OptOptions::default() };
        for seed in 0..10 {
            let p = spike_synth::generate_executable(seed, 5);
            let (single, single_report) = optimize(&p).unwrap();
            let (iterated, report) = optimize_with(&p, &options).unwrap();
            assert!(report.rounds >= 1 && report.rounds <= MAX_ROUNDS);
            assert!(
                report.removed() >= single_report.removed(),
                "seed {seed}: iterating must not lose deletions"
            );
            assert_eq!(behaviour(&p), behaviour(&iterated), "seed {seed} changed behaviour");
            let _ = single;
            if report.rounds < MAX_ROUNDS {
                // The loop stopped because a whole round found nothing, so
                // the result is a fixpoint of the pass sequence.
                let (again, re_report) = optimize_with(&iterated, &options).unwrap();
                assert_eq!(again, iterated, "seed {seed}: fixpoint must be stable");
                assert_eq!(re_report.removed(), 0);
            }
        }
    }

    #[test]
    fn single_round_reuses_clean_routines() {
        // Five routines and three passes: unless every pass edits every
        // routine, the cache must report some reuse.
        let p = spike_synth::generate_executable(7, 5);
        let (_, report) = optimize(&p).unwrap();
        assert!(report.routines_reused > 0, "{report:?}");
        assert!(report.rounds == 1);

        let off = OptOptions { incremental: false, ..OptOptions::default() };
        let (_, report_off) = optimize_with(&p, &off).unwrap();
        assert_eq!(report_off.routines_reused, 0);
    }

    #[test]
    fn generated_executables_keep_their_behaviour() {
        for seed in 0..25 {
            let p = spike_synth::generate_executable(seed, 5);
            let (q, report) = optimize(&p).unwrap();
            assert_eq!(behaviour(&p), behaviour(&q), "seed {seed} changed behaviour ({report:?})");
        }
    }

    #[test]
    fn optimized_profile_programs_stay_valid() {
        let profile = spike_synth::profile("li").unwrap();
        let p = spike_synth::generate(&profile, 30.0 / profile.routines as f64, 5);
        let (q, report) = optimize(&p).unwrap();
        assert!(report.instructions_after <= report.instructions_before);
        // The optimized program re-analyzes cleanly.
        let _ = spike_core::analyze(&q);
    }
}
