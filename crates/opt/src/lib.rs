//! # spike-opt
//!
//! The summary-driven post-link optimizations of Figure 1 of the paper —
//! the transformations that motivate Spike's interprocedural dataflow
//! analysis:
//!
//! * **1(a) dead result elimination** — a definition is dead when no
//!   caller reads it on any return (live-at-exit);
//! * **1(b) dead argument elimination** — an argument set up for a call is
//!   dead when the callee never reads it (call-used);
//! * **1(c) spill elimination** — a store/reload of a register around a
//!   call is removable when the call does not kill it (call-killed);
//! * **1(d) callee-saved reallocation** — a value held in a callee-saved
//!   register can move to a caller-saved register the calls do not kill,
//!   deleting the save and restore.
//!
//! All decisions are justified exclusively by the summaries computed by
//! [`spike_core::analyze`]; edits are applied with the relinking
//! [`spike_program::Rewriter`]. Soundness is property-tested by running
//! programs under `spike-sim` before and after optimization.
//!
//! # Example
//!
//! ```
//! use spike_isa::Reg;
//! use spike_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.routine("main")
//!     .def(Reg::A0) // argument f never reads: deleted
//!     .call("f")
//!     .put_int()
//!     .halt();
//! b.routine("f").lda(Reg::V0, Reg::ZERO, 7).ret();
//! let program = b.build()?;
//!
//! let (optimized, report) = spike_opt::optimize(&program)?;
//! assert_eq!(report.dead_deleted, 1);
//! assert_eq!(
//!     optimized.total_instructions(),
//!     program.total_instructions() - 1
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod dead;
mod liveness;
mod save_restore;
mod spill;

use spike_core::{analyze_with, AnalysisOptions};
use spike_program::{Program, RewriteError, Rewriter};

pub use liveness::{routine_liveness, step_back, RoutineLiveness};

/// Which passes [`optimize_with`] runs.
#[derive(Clone, Debug)]
pub struct OptOptions {
    /// Dead-code elimination (Figure 1(a)/(b)).
    pub dead_code: bool,
    /// Spill elimination around calls (Figure 1(c)).
    pub spills: bool,
    /// Callee-saved register reallocation (Figure 1(d)).
    pub realloc: bool,
    /// Analysis options used to compute the summaries.
    pub analysis: AnalysisOptions,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            dead_code: true,
            spills: true,
            realloc: true,
            analysis: AnalysisOptions::default(),
        }
    }
}

/// What the optimizer did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Instructions deleted by dead-code elimination.
    pub dead_deleted: usize,
    /// Spill store/reload pairs removed.
    pub spill_pairs_removed: usize,
    /// Callee-saved registers reallocated to caller-saved homes (or whose
    /// dead save/restore pairs were deleted).
    pub registers_reallocated: usize,
    /// Save/restore instructions deleted by reallocation.
    pub save_restores_deleted: usize,
    /// Instruction count before optimization.
    pub instructions_before: usize,
    /// Instruction count after optimization.
    pub instructions_after: usize,
}

impl OptReport {
    /// Total instructions removed.
    pub fn removed(&self) -> usize {
        self.instructions_before - self.instructions_after
    }
}

/// Optimizes `program` with every pass enabled.
///
/// # Errors
///
/// Returns a [`RewriteError`] if relinking fails (which indicates a bug in
/// a pass, not bad input — any validated program is optimizable).
pub fn optimize(program: &Program) -> Result<(Program, OptReport), RewriteError> {
    optimize_with(program, &OptOptions::default())
}

/// Optimizes `program` with explicit pass selection.
///
/// Each enabled pass analyzes, edits, and relinks once, in the order
/// spills → reallocation → dead code: removing a spill first makes its
/// register visibly live across the call, so reallocation cannot claim it;
/// dead-code elimination last cleans up whatever the earlier passes
/// expose.
///
/// # Errors
///
/// Returns a [`RewriteError`] if relinking fails; see [`optimize`].
pub fn optimize_with(
    program: &Program,
    options: &OptOptions,
) -> Result<(Program, OptReport), RewriteError> {
    let mut report =
        OptReport { instructions_before: program.total_instructions(), ..OptReport::default() };
    let mut current = program.clone();

    if options.spills {
        let analysis = analyze_with(&current, &options.analysis);
        let pairs = spill::find_spills(&current, &analysis);
        if !pairs.is_empty() {
            let mut rw = Rewriter::new(&current);
            for p in &pairs {
                rw.delete(p.store_addr).delete(p.load_addr);
            }
            report.spill_pairs_removed = pairs.len();
            current = rw.finish()?;
        }
    }

    if options.realloc {
        let analysis = analyze_with(&current, &options.analysis);
        let reallocs = save_restore::find_reallocs(&current, &analysis);
        if !reallocs.is_empty() {
            let mut rw = Rewriter::new(&current);
            for r in &reallocs {
                report.registers_reallocated += 1;
                report.save_restores_deleted += r.delete.len();
                for &addr in &r.delete {
                    rw.delete(addr);
                }
                for &(addr, insn) in &r.rename {
                    rw.replace(addr, insn);
                }
            }
            current = rw.finish()?;
        }
    }

    if options.dead_code {
        let analysis = analyze_with(&current, &options.analysis);
        let dead = dead::find_dead(&current, &analysis);
        if !dead.is_empty() {
            let mut rw = Rewriter::new(&current);
            for &addr in &dead {
                rw.delete(addr);
            }
            report.dead_deleted = dead.len();
            current = rw.finish()?;
        }
    }

    report.instructions_after = current.total_instructions();
    Ok((current, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spike_isa::Reg;
    use spike_program::ProgramBuilder;
    use spike_sim::{run, Outcome};

    /// Observable behaviour: the output stream. Step counts are expected
    /// to differ (that is the point of optimizing).
    fn behaviour(p: &Program) -> Vec<i64> {
        match run(p, 5_000_000) {
            Outcome::Halted { output, .. } => output,
            other => panic!("program did not halt: {other:?}"),
        }
    }

    #[test]
    fn figure1a_dead_result() {
        let mut b = ProgramBuilder::new();
        b.routine("main").call("f").halt();
        b.routine("f")
            .lda(Reg::T0, Reg::ZERO, 1)
            .copy(Reg::T0, Reg::V0) // nobody reads v0 on return
            .ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.dead_deleted, 2);
        assert_eq!(behaviour(&p), behaviour(&q));
    }

    #[test]
    fn figure1b_dead_argument() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::A0, Reg::ZERO, 5)
            .lda(Reg::A1, Reg::ZERO, 6) // f never reads a1
            .call("f")
            .put_int()
            .halt();
        b.routine("f").copy(Reg::A0, Reg::V0).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.dead_deleted, 1);
        assert_eq!(behaviour(&q), vec![5]);
    }

    #[test]
    fn figure1c_spill_elimination() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 11)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").lda(Reg::int(6), Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.spill_pairs_removed, 1);
        assert_eq!(behaviour(&p), behaviour(&q));
        // The dead pass then kills quiet's pointless def too.
        assert!(q.total_instructions() <= p.total_instructions() - 2);
    }

    #[test]
    fn figure1d_reallocation_end_to_end() {
        let mut b = ProgramBuilder::new();
        b.routine("main").lda(Reg::A0, Reg::ZERO, 3).call("f").put_int().halt();
        b.routine("f")
            .lda(Reg::SP, Reg::SP, -16)
            .store(Reg::RA, Reg::SP, 8)
            .store(Reg::S0, Reg::SP, 0)
            .copy(Reg::A0, Reg::S0)
            .call("quiet")
            .copy(Reg::S0, Reg::V0)
            .load(Reg::S0, Reg::SP, 0)
            .load(Reg::RA, Reg::SP, 8)
            .lda(Reg::SP, Reg::SP, 16)
            .ret();
        b.routine("quiet").lda(Reg::T0, Reg::ZERO, 1).ret();
        let p = b.build().unwrap();
        let (q, report) = optimize(&p).unwrap();
        assert_eq!(report.registers_reallocated, 1);
        assert_eq!(report.save_restores_deleted, 2);
        assert_eq!(behaviour(&p), behaviour(&q));
        assert_eq!(behaviour(&q), vec![3]);
    }

    #[test]
    fn optimization_reduces_dynamic_instructions() {
        let mut b = ProgramBuilder::new();
        b.routine("main")
            .lda(Reg::T0, Reg::ZERO, 9)
            .store(Reg::T0, Reg::SP, -8)
            .call("quiet")
            .load(Reg::T0, Reg::SP, -8)
            .copy(Reg::T0, Reg::V0)
            .put_int()
            .halt();
        b.routine("quiet").ret();
        let p = b.build().unwrap();
        let (q, _) = optimize(&p).unwrap();
        let (Outcome::Halted { steps: s0, output: o0 }, Outcome::Halted { steps: s1, output: o1 }) =
            (run(&p, 1_000_000), run(&q, 1_000_000))
        else {
            panic!("both must halt");
        };
        assert_eq!(o0, o1);
        assert!(s1 < s0, "optimization should execute fewer instructions");
    }

    #[test]
    fn passes_can_be_disabled() {
        let mut b = ProgramBuilder::new();
        b.routine("main").def(Reg::T0).halt();
        let p = b.build().unwrap();
        let options = OptOptions { dead_code: false, ..OptOptions::default() };
        let (q, report) = optimize_with(&p, &options).unwrap();
        assert_eq!(report.dead_deleted, 0);
        assert_eq!(q, p);
    }

    #[test]
    fn generated_executables_keep_their_behaviour() {
        for seed in 0..25 {
            let p = spike_synth::generate_executable(seed, 5);
            let (q, report) = optimize(&p).unwrap();
            assert_eq!(behaviour(&p), behaviour(&q), "seed {seed} changed behaviour ({report:?})");
        }
    }

    #[test]
    fn optimized_profile_programs_stay_valid() {
        let profile = spike_synth::profile("li").unwrap();
        let p = spike_synth::generate(&profile, 30.0 / profile.routines as f64, 5);
        let (q, report) = optimize(&p).unwrap();
        assert!(report.instructions_after <= report.instructions_before);
        // The optimized program re-analyzes cleanly.
        let _ = spike_core::analyze(&q);
    }
}
